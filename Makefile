# Convenience targets for the repro library.

.PHONY: test chaos bench bench-snapshot bench-compare shapes experiments grid examples probe lint all

# Worker processes for the parallel experiment grid (make grid JOBS=8).
JOBS ?= 4

test:
	pytest tests/

chaos:           ## fault-injection + recovery suite against the shm backend
	pytest tests/faults tests/parallel/test_chaos.py

bench:
	pytest benchmarks/ --benchmark-only

bench-snapshot:  ## telemetry-backed grid snapshot -> BENCH_<n>.json
	REPRO_CACHE_DIR=.repro_cache python scripts/bench_snapshot.py

bench-compare:   ## fail if any cell regressed >10% vs the latest BENCH_<n>.json
	REPRO_CACHE_DIR=.repro_cache python scripts/bench_compare.py

shapes:          ## regenerate + assert all tables/figures (no timing)
	pytest benchmarks/ --benchmark-disable -s

experiments:     ## rebuild EXPERIMENTS.md from a fresh run
	REPRO_CACHE_DIR=.repro_cache python scripts/run_experiments.py

grid:            ## all paper artifacts over the parallel, resumable grid
	REPRO_CACHE_DIR=.repro_cache PYTHONPATH=src python -m repro experiments \
		--jobs $(JOBS) --resume --store .repro_cache/grid

examples:
	for f in examples/*.py; do echo "== $$f"; REPRO_CACHE_DIR=.repro_cache python $$f || exit 1; done

probe:           ## re-run the step-size calibration and bake it
	REPRO_CACHE_DIR=.repro_cache python scripts/probe_steps.py
	python scripts/bake_tuned.py

all: test shapes experiments
