# Convenience targets for the repro library.

.PHONY: test chaos chaos-grid chaos-ps chaos-ps-server bench bench-snapshot bench-compare grid-speedup serve-smoke shapes experiments grid examples probe lint all

# Worker processes for the parallel experiment grid (make grid JOBS=8).
JOBS ?= 4

test:            ## tier-1 suite, exactly as CI runs it
	PYTHONPATH=src python -m pytest -x -q -W error::RuntimeWarning

chaos:           ## fault-injection + recovery suite (shm + ps backends)
	pytest tests/faults tests/parallel/test_chaos.py tests/distributed/test_ps.py

chaos-grid:      ## degraded-mode grid run under injected cell faults
	rm -rf /tmp/chaos_grid && REPRO_CACHE_DIR=/tmp/chaos_grid/cache \
	PYTHONPATH=src python -m repro experiments \
		--artifacts table3 --tasks lr --datasets covtype w8a \
		--scale tiny --tolerance 0.05 --jobs 2 --keep-going \
		--inject-grid-fault cell-kill@1 \
		--inject-grid-fault cell-stall@2:600 \
		--inject-grid-fault cell-nan@4 \
		--cell-attempts 2 --cell-deadline 20 --retry-budget 4 \
		--store /tmp/chaos_grid/store \
		--manifest-out /tmp/chaos_grid/manifest.json
	PYTHONPATH=src python -c "import json; \
		m = json.load(open('/tmp/chaos_grid/manifest.json')); \
		kinds = sorted(f['failure']['kind'] for f in m['failures']); \
		assert kinds == ['crash', 'divergence', 'stall'], kinds; \
		print('chaos-grid: quarantined kinds', kinds)"

chaos-ps:        ## node-kill/node-stall drill against the parameter-server backend
	rm -rf /tmp/chaos_ps && mkdir -p /tmp/chaos_ps
	REPRO_CACHE_DIR=/tmp/chaos_ps/cache PYTHONPATH=src python -m repro train \
		--task lr --dataset w8a --scale tiny --epochs 4 \
		--backend ps --nodes 3 --max-staleness 16 --epoch-timeout 5 \
		--inject-fault node-kill@2 --inject-fault node-stall@3 \
		--max-restarts 3 \
		--manifest-out /tmp/chaos_ps/manifest.json
	PYTHONPATH=src python -c "import json; \
		m = json.load(open('/tmp/chaos_ps/manifest.json')); \
		c = m['counters']; \
		assert c.get('fault.injected', 0) >= 2, c; \
		assert c.get('fault.worker_restarts', 0) >= 1, c; \
		assert c.get('ps.reconnects', 0) >= 1, c; \
		assert c.get('ps.dead_workers_reaped', 0) >= 1, c; \
		assert c.get('ps.pushes', 0) > 0 and c.get('ps.pulls', 0) > 0, c; \
		assert c.get('ps.pull_rounds', 0) > 0, c; \
		assert c.get('ps.shard_cache_hits', 0) > 0, c; \
		assert c['ps.pull_rounds'] <= 1.1 * c['sgd.updates_applied'], c; \
		rec = m['results']['measured']['recovery']; \
		assert len(rec) >= 2, rec; \
		print('chaos-ps: recovered', [r['action'] for r in rec], \
			'| rounds/update %.3f, cache hits %d' \
			% (c['ps.pull_rounds'] / c['sgd.updates_applied'], \
			   c['ps.shard_cache_hits']))"
	@# A leaked server socket needs a live owner, so orphaned drill
	@# processes (forked workers keep the parent cmdline) cover both.
	@pgrep -f 'repro train.*backend p[s]' >/dev/null 2>&1 && \
		{ echo 'chaos-ps: leaked worker processes'; pgrep -af 'repro train.*backend p[s]'; exit 1; } || true

chaos-ps-server: ## SIGKILL the shard server mid-epoch; checkpoint-restore failover drill
	rm -rf /tmp/chaos_ps_server && mkdir -p /tmp/chaos_ps_server
	REPRO_CACHE_DIR=/tmp/chaos_ps_server/cache PYTHONPATH=src python -m repro train \
		--task lr --dataset w8a --scale tiny --epochs 4 \
		--backend ps --nodes 2 --max-staleness 16 --epoch-timeout 30 \
		--ps-checkpoint-dir /tmp/chaos_ps_server/ckpt --ps-checkpoint-every 50 \
		--inject-fault server-kill@2 \
		--max-restarts 2 \
		--manifest-out /tmp/chaos_ps_server/manifest.json
	PYTHONPATH=src python -c "import json, os; \
		m = json.load(open('/tmp/chaos_ps_server/manifest.json')); \
		c = m['counters']; \
		assert c.get('fault.injected', 0) >= 1, c; \
		assert c.get('ps.server_failovers', 0) >= 1, c; \
		assert c.get('ps.checkpoints_restored', 0) >= 1, c; \
		assert c.get('ps.checkpoints_written', 0) >= 1, c; \
		assert c.get('ps.reconnects_midrun', 0) >= 1, c; \
		assert c.get('fault.worker_restarts', 0) == 0, c; \
		rec = m['results']['measured']['recovery']; \
		fo = [r for r in rec if r['action'] == 'server_failover']; \
		assert len(fo) == 1, rec; \
		names = os.listdir('/tmp/chaos_ps_server/ckpt'); \
		assert any(n.endswith('.ckpt') for n in names), names; \
		assert not [n for n in names if not n.endswith('.ckpt')], names; \
		print('chaos-ps-server: failover healed in %.3fs |' \
			% fo[0]['time_to_repair_seconds'], \
			'restored %d, reconnects %d, checkpoints %d' \
			% (c['ps.checkpoints_restored'], c['ps.reconnects_midrun'], \
			   c['ps.checkpoints_written']))"
	@# Both the respawned server generation and the healed workers must
	@# be gone: a leaked process here is a failover that never tore down.
	@pgrep -f 'repro train.*backend p[s]' >/dev/null 2>&1 && \
		{ echo 'chaos-ps-server: leaked drill processes'; pgrep -af 'repro train.*backend p[s]'; exit 1; } || true

bench:
	pytest benchmarks/ --benchmark-only

bench-snapshot:  ## telemetry-backed grid snapshot -> BENCH_<n>.json
	REPRO_CACHE_DIR=.repro_cache python scripts/bench_snapshot.py

bench-compare:   ## fail if any cell regressed >10% vs the latest BENCH_<n>.json
	REPRO_CACHE_DIR=.repro_cache python scripts/bench_compare.py

grid-speedup:    ## parallel grid must beat serial >1.3x at JOBS (skips on <JOBS cpus)
	REPRO_CACHE_DIR=.repro_cache python scripts/grid_speedup.py --jobs $(JOBS) --floor 1.3

serve-smoke:     ## train -> serve -> score through hot-swaps -> manifest check
	REPRO_CACHE_DIR=.repro_cache python scripts/serve_smoke.py

shapes:          ## regenerate + assert all tables/figures (no timing)
	pytest benchmarks/ --benchmark-disable -s

experiments:     ## rebuild EXPERIMENTS.md from a fresh run
	REPRO_CACHE_DIR=.repro_cache python scripts/run_experiments.py

grid:            ## all paper artifacts over the parallel, resumable grid
	REPRO_CACHE_DIR=.repro_cache PYTHONPATH=src python -m repro experiments \
		--jobs $(JOBS) --resume --store .repro_cache/grid

examples:
	for f in examples/*.py; do echo "== $$f"; REPRO_CACHE_DIR=.repro_cache python $$f || exit 1; done

probe:           ## re-run the step-size calibration and bake it
	REPRO_CACHE_DIR=.repro_cache python scripts/probe_steps.py
	python scripts/bake_tuned.py

all: test shapes experiments
