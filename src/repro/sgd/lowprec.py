"""Low-precision model representations for asynchronous SGD (Buckwild).

The paper's future work ("we plan to consider low-precision formats in
data representation", Section VI) points at Buckwild [9] — Hogwild with
the model and updates held at reduced precision.  This module provides
the quantisation substrate and a quantised wrapper around the
asynchronous engine:

* :class:`Quantizer` implementations for float32, bfloat16 and
  fixed-point with stochastic rounding (the variant De Sa et al. show
  preserves convergence in expectation);
* :func:`run_quantized_epoch` — one asynchronous epoch in which the
  shared model is re-quantised after every round, emulating a model
  stored at the reduced width.

The statistical cost of precision is then measurable with the same
convergence protocol as every other configuration; the ablation
benchmark sweeps the width.
"""

from __future__ import annotations

import abc

import numpy as np

from ..asyncsim import AsyncSchedule
from ..asyncsim.engine import apply_updates
from ..models.base import Matrix, Model
from ..utils.errors import ConfigurationError, DivergenceError

__all__ = [
    "Quantizer",
    "Float32Quantizer",
    "BFloat16Quantizer",
    "FixedPointQuantizer",
    "make_quantizer",
    "run_quantized_epoch",
]


class Quantizer(abc.ABC):
    """Maps a float64 model vector onto a reduced representation."""

    #: Bits of the stored representation (reporting only).
    bits: int = 64

    @abc.abstractmethod
    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Return *values* rounded to the representable grid (float64)."""

    def name(self) -> str:
        """Human-readable identifier."""
        return type(self).__name__


class Float32Quantizer(Quantizer):
    """IEEE float32 storage (the common GPU single-precision mode)."""

    bits = 32

    def quantize(self, values: np.ndarray) -> np.ndarray:
        return values.astype(np.float32).astype(np.float64)


class BFloat16Quantizer(Quantizer):
    """bfloat16 storage: float32 with the bottom 16 mantissa bits cut.

    Implemented by masking the float32 bit pattern (round-to-nearest by
    adding half an ulp first), which is exactly the hardware behaviour.
    """

    bits = 16

    def quantize(self, values: np.ndarray) -> np.ndarray:
        as32 = values.astype(np.float32)
        bits = as32.view(np.uint32)
        # round to nearest even on the truncated mantissa
        rounded = (bits + 0x7FFF + ((bits >> 16) & 1)).astype(np.uint32)
        out = (rounded & np.uint32(0xFFFF0000)).view(np.float32)
        return out.astype(np.float64)


class FixedPointQuantizer(Quantizer):
    """Fixed-point grid with stochastic rounding (Buckwild's format).

    Values are clipped to ``[-clip, clip]`` and rounded to the nearest
    grid points with probability proportional to proximity, making the
    quantisation unbiased: ``E[Q(x)] = x`` inside the range — the
    property Buckwild's convergence analysis rests on.
    """

    def __init__(self, bits: int = 8, clip: float = 8.0, seed: int = 0) -> None:
        if bits < 2 or bits > 32:
            raise ConfigurationError(f"bits must be in [2, 32], got {bits}")
        if clip <= 0:
            raise ConfigurationError(f"clip must be positive, got {clip}")
        self.bits = int(bits)
        self.clip = float(clip)
        self._scale = (2 ** (bits - 1) - 1) / clip
        self._rng = np.random.default_rng(seed)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        scaled = np.clip(values, -self.clip, self.clip) * self._scale
        floor = np.floor(scaled)
        frac = scaled - floor
        up = self._rng.random(values.shape) < frac
        return (floor + up) / self._scale

    def name(self) -> str:
        return f"fixed{self.bits}"


def make_quantizer(kind: str, **kwargs) -> Quantizer:
    """Factory: ``"float32"`` | ``"bfloat16"`` | ``"fixed8"`` | ``"fixed4"``..."""
    if kind == "float32":
        return Float32Quantizer()
    if kind == "bfloat16":
        return BFloat16Quantizer()
    if kind.startswith("fixed"):
        try:
            bits = int(kind.removeprefix("fixed"))
        except ValueError:
            raise ConfigurationError(f"bad fixed-point spec {kind!r}") from None
        return FixedPointQuantizer(bits=bits, **kwargs)
    raise ConfigurationError(
        f"unknown quantizer {kind!r}; use float32 | bfloat16 | fixedN"
    )


def run_quantized_epoch(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    params: np.ndarray,
    step: float,
    schedule: AsyncSchedule,
    rng: np.random.Generator,
    quantizer: Quantizer,
) -> None:
    """One asynchronous epoch with the shared model stored quantised.

    Gradients are computed against the quantised model; after each
    round's updates land, the model is re-quantised — so *params*
    always holds representable values, exactly as a reduced-width
    shared array would.
    """
    if schedule.batch_size != 1:
        raise ConfigurationError("quantized epochs support batch_size == 1 only")
    n = X.shape[0]
    order = rng.permutation(n) if schedule.shuffle else np.arange(n)
    C = schedule.concurrency
    params[:] = quantizer.quantize(params)
    for start in range(0, n, C):
        rows = order[start : start + C]
        updates = model.example_updates(X, y, rows, params, step)
        apply_updates(params, updates)
        params[:] = quantizer.quantize(params)
    if not np.all(np.isfinite(params)):
        raise DivergenceError("parameters became non-finite during quantized epoch")
