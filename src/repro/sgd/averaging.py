"""Parallel SGD by model averaging (Zinkevich et al. [42]).

The paper's related work contrasts Hogwild with the other classic
parallelisation: give each worker a private model replica, run
independent SGD over a data partition, and periodically average the
replicas.  No shared-memory conflicts at all — the trade-off moves to
statistical efficiency (averaging loses the cross-partition coupling
Hogwild gets for free) and to a synchronisation barrier per averaging
round.  A detailed Hogwild-vs-averaging comparison is [30] (Qin & Rusu).

The runner below executes the algorithm exactly (deterministically —
the workers are simulated in turn; their mathematics is independent, so
simulation order is irrelevant), and the comparison benchmark measures
both families under the shared convergence protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.base import Matrix, Model
from ..utils.errors import ConfigurationError
from ..utils.rng import derive_rng
from .config import SGDConfig
from .convergence import LossCurve

__all__ = ["AveragingSchedule", "AveragingResult", "train_model_averaging"]


@dataclass(frozen=True)
class AveragingSchedule:
    """Replica count and averaging cadence.

    Attributes
    ----------
    workers:
        Independent model replicas (one data partition each).
    sync_every:
        Average the replicas after this many local epochs.  1 = the
        per-epoch averaging variant; a large value approaches one-shot
        averaging (the original Zinkevich scheme).
    """

    workers: int
    sync_every: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.sync_every < 1:
            raise ConfigurationError(f"sync_every must be >= 1, got {self.sync_every}")


@dataclass
class AveragingResult:
    """Outcome of a model-averaging run."""

    curve: LossCurve
    params: np.ndarray
    schedule: AveragingSchedule
    diverged: bool


def train_model_averaging(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    init_params: np.ndarray,
    config: SGDConfig,
    schedule: AveragingSchedule,
) -> AveragingResult:
    """Partitioned SGD with periodic replica averaging.

    Each epoch every replica performs one serial incremental pass over
    its partition; every ``sync_every`` epochs the replicas are averaged
    and re-broadcast.  The recorded loss curve evaluates the *averaged*
    model (between syncs: the average of the current replicas, which is
    what would be deployed).
    """
    n = X.shape[0]
    workers = min(schedule.workers, n)
    serial = getattr(model, "serial_sgd_epoch", None)
    if serial is None:
        raise ConfigurationError(
            f"{type(model).__name__} has no serial_sgd_epoch; model averaging "
            "supports the incremental linear models"
        )

    partitions = [np.arange(k, n, workers, dtype=np.int64) for k in range(workers)]
    replicas = [np.array(init_params, dtype=np.float64, copy=True) for _ in range(workers)]
    rngs = [
        derive_rng(config.seed, f"averaging/{workers}/{k}") for k in range(workers)
    ]

    curve = LossCurve()
    initial = model.loss(X, y, init_params)
    curve.record(0, initial)
    limit = config.divergence_factor * max(initial, 1e-12)
    diverged = False

    for epoch in range(1, config.max_epochs + 1):
        # Divergent runs overflow inside the serial pass, the replica
        # mean and the loss reduction shortly before the non-finite
        # checks below report them; suppress the transient warnings.
        with np.errstate(over="ignore"):
            for k in range(workers):
                order = partitions[k][rngs[k].permutation(partitions[k].shape[0])]
                serial(X, y, order, replicas[k], config.step_size)
            if epoch % schedule.sync_every == 0:
                mean = np.mean(replicas, axis=0)
                for k in range(workers):
                    replicas[k][:] = mean
            averaged = np.mean(replicas, axis=0)
        if not np.all(np.isfinite(averaged)):
            curve.record(epoch, float("inf"))
            diverged = True
            break
        if epoch % config.eval_every == 0 or epoch == config.max_epochs:
            with np.errstate(over="ignore"):
                loss = model.loss(X, y, averaged)
            if not np.isfinite(loss) or loss > limit:
                curve.record(epoch, float("inf"))
                diverged = True
                break
            curve.record(epoch, loss)
            if config.target_loss is not None and loss <= config.target_loss:
                break

    with np.errstate(over="ignore"):
        final = np.mean(replicas, axis=0)
    return AveragingResult(
        curve=curve, params=final, schedule=schedule, diverged=diverged
    )
