"""Step-size selection by the paper's grid protocol.

"The SGD step size is chosen by griding its range in powers of 10,
e.g., {1e-6, 1e-5, ..., 1e2}, and selecting the value that generates the
fastest time to convergence." (Section IV-A)

:func:`grid_search` runs :func:`repro.sgd.runner.train` once per grid
point and ranks by time-to-convergence at the requested tolerance.
Non-convergent points rank as infinity; ties break toward the smaller
step (more robust choice).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from ..utils.errors import ConfigurationError
from .config import STEP_GRID
from .runner import TrainResult, train

__all__ = ["GridPoint", "GridSearchResult", "grid_search"]


@dataclass(frozen=True)
class GridPoint:
    """One evaluated step size."""

    step_size: float
    time_to_convergence: float
    epochs: int | None
    diverged: bool


@dataclass
class GridSearchResult:
    """Ranked outcome of a step-size grid search."""

    task: str
    dataset: str
    architecture: str
    strategy: str
    tolerance: float
    points: list[GridPoint] = field(default_factory=list)

    @property
    def best(self) -> GridPoint:
        """The winning grid point (smallest time; ties -> smaller step)."""
        finite = [p for p in self.points if math.isfinite(p.time_to_convergence)]
        if not finite:
            raise ConfigurationError(
                f"no step size converged for {self.task}/{self.dataset}/"
                f"{self.architecture}/{self.strategy}"
            )
        return min(finite, key=lambda p: (p.time_to_convergence, p.step_size))

    @property
    def best_step_size(self) -> float:
        """Step size of the winning point."""
        return self.best.step_size

    @property
    def any_converged(self) -> bool:
        """Whether at least one grid point reached the tolerance."""
        return any(math.isfinite(p.time_to_convergence) for p in self.points)


def grid_search(
    task: str,
    dataset: str,
    architecture: str = "cpu-par",
    strategy: str = "asynchronous",
    tolerance: float = 0.01,
    grid: Sequence[float] = STEP_GRID,
    **train_kwargs,
) -> GridSearchResult:
    """Evaluate every step size in *grid* and rank by time to convergence.

    All remaining keyword arguments are forwarded to
    :func:`repro.sgd.runner.train` (scale, seed, max_epochs, models...).
    """
    if not grid:
        raise ConfigurationError("grid must not be empty")
    result = GridSearchResult(
        task=task,
        dataset=dataset,
        architecture=architecture,
        strategy=strategy,
        tolerance=tolerance,
    )
    for step in grid:
        run: TrainResult = train(
            task,
            dataset,
            architecture=architecture,
            strategy=strategy,
            step_size=step,
            early_stop_tolerance=tolerance,
            **train_kwargs,
        )
        result.points.append(
            GridPoint(
                step_size=step,
                time_to_convergence=run.time_to(tolerance),
                epochs=run.epochs_to(tolerance),
                diverged=run.diverged,
            )
        )
    return result
