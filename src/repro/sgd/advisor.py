"""Configuration advisor: the paper's practical guidance as an API.

The paper's stated purpose is to "provide a useful guide for applying
parallel SGD in practice and — more importantly — choosing the
appropriate computing architecture" (abstract).  This module turns that
guide into code at two levels:

* :func:`heuristic_advice` — the paper's Section IV-C rules applied to
  the data's statistics alone, without running anything: synchronous
  work belongs on the GPU, asynchronous on the CPU, dense
  low-dimensional data favours sequential asynchronous CPU, sparse data
  parallel asynchronous CPU, and the sync-vs-async choice follows the
  batch-vs-incremental trade-off (distance from the optimum, dataset
  size).
* :func:`measure_advice` — the empirical protocol: train every
  configuration (cached through an :class:`ExperimentContext`) and
  rank by time to convergence, optionally weighting by a
  dollars-per-hour cost model (the paper: "From a financial
  perspective, though, GPUs are likely the more cost-effective
  alternative").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..datasets.synthetic import Dataset
from ..utils.errors import ConfigurationError

__all__ = ["Advice", "RankedConfig", "heuristic_advice", "measure_advice", "HourlyCost"]


@dataclass(frozen=True)
class Advice:
    """A recommended configuration with its rationale."""

    strategy: str
    architecture: str
    rationale: str


@dataclass(frozen=True)
class HourlyCost:
    """Dollar-per-hour prices for the cost-effectiveness ranking.

    Defaults approximate 2019 cloud prices for the paper's parts:
    a 28-core dual-socket instance vs one K80 card.
    """

    cpu_machine: float = 1.30
    gpu_card: float = 0.90

    def rate(self, architecture: str) -> float:
        """Price of the device an architecture occupies."""
        if architecture == "gpu":
            # A GPU run still needs a (small share of a) host.
            return self.gpu_card + 0.1 * self.cpu_machine
        return self.cpu_machine


@dataclass(frozen=True)
class RankedConfig:
    """One measured configuration in the advisor's ranking."""

    strategy: str
    architecture: str
    time_to_convergence: float
    dollars_to_convergence: float


@dataclass
class MeasuredAdvice:
    """Outcome of the empirical advisor."""

    task: str
    dataset: str
    tolerance: float
    ranking: list[RankedConfig] = field(default_factory=list)

    @property
    def fastest(self) -> RankedConfig:
        """Best configuration by wall-clock time to convergence."""
        finite = [r for r in self.ranking if math.isfinite(r.time_to_convergence)]
        if not finite:
            raise ConfigurationError("no configuration converged")
        return min(finite, key=lambda r: r.time_to_convergence)

    @property
    def cheapest(self) -> RankedConfig:
        """Best configuration by dollars to convergence."""
        finite = [r for r in self.ranking if math.isfinite(r.dollars_to_convergence)]
        if not finite:
            raise ConfigurationError("no configuration converged")
        return min(finite, key=lambda r: r.dollars_to_convergence)


def heuristic_advice(dataset: Dataset, task: str = "lr") -> Advice:
    """The paper's Section IV-C decision rules, from data statistics only.

    Rules encoded:

    1. deep nets (mlp) — synchronous on GPU ("For MLP, the speedup is
       at least 4X in all the cases") unless you cannot tolerate batch
       semantics;
    2. dense, low-dimensional data — asynchronous *sequential* CPU
       ("on dense and low-dimensional data, the sequential CPU solution
       is faster");
    3. sparse data — asynchronous *parallel* CPU ("on sparse data,
       parallel CPU dominates");
    4. very high statistical ill-conditioning (huge N with tiny nnz) —
       synchronous GPU remains competitive; flagged in the rationale
       since the paper finds the sync-vs-async winner task-dependent.
    """
    if task == "mlp":
        return Advice(
            strategy="synchronous",
            architecture="gpu",
            rationale=(
                "Deep nets: synchronous GPU wins hardware efficiency by >=4x "
                "(Table II); asynchronous Hogbatch only pays off on many CPU "
                "cores and still loses per-iteration to batched GPU kernels."
            ),
        )
    density = dataset.density
    if density > 0.25 or dataset.n_features <= 256:
        return Advice(
            strategy="asynchronous",
            architecture="cpu-seq",
            rationale=(
                f"Dense ({density:.1%}), low-dimensional "
                f"(d={dataset.n_features}) data: concurrent Hogwild updates "
                "collide on every model cache line, so a single CPU thread "
                "converges fastest (Table III, covtype)."
            ),
        )
    return Advice(
        strategy="asynchronous",
        architecture="cpu-par",
        rationale=(
            f"Sparse data ({density:.3%} non-zero, d={dataset.n_features}): "
            "Hogwild conflicts are rare, parallel CPU gains ~3-6x per "
            "iteration and asynchronous CPU beats the GPU in time to "
            "convergence on every sparse dataset (Table III).  Compare "
            "against synchronous GPU if batch semantics are acceptable — "
            "the paper finds that contest task- and dataset-dependent."
        ),
    )


def measure_advice(
    task: str,
    dataset: str,
    ctx=None,
    cost: HourlyCost | None = None,
) -> MeasuredAdvice:
    """Empirical protocol: rank every configuration by measured time.

    Uses (and fills) an :class:`~repro.experiments.common
    .ExperimentContext` run cache, so calling this after the table
    drivers costs nothing extra.
    """
    from ..experiments.common import ExperimentContext

    ctx = ctx or ExperimentContext()
    cost = cost or HourlyCost()
    out = MeasuredAdvice(task=task, dataset=dataset, tolerance=ctx.tolerance)
    for strategy in ("synchronous", "asynchronous"):
        for architecture in ("cpu-seq", "cpu-par", "gpu"):
            run = ctx.run(task, dataset, architecture, strategy)
            ttc = run.time_to(ctx.tolerance)
            dollars = ttc / 3600.0 * cost.rate(architecture)
            out.ranking.append(
                RankedConfig(
                    strategy=strategy,
                    architecture=architecture,
                    time_to_convergence=ttc,
                    dollars_to_convergence=dollars,
                )
            )
    out.ranking.sort(key=lambda r: r.time_to_convergence)
    return out
