"""Configuration objects for the SGD runners.

The names follow the paper's hyper-parameter inventory (Algorithm 1):
step size alpha, batch size B, number of epochs t, plus the convergence
tolerances of the evaluation protocol (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.errors import ConfigurationError
from ..utils.rng import DEFAULT_SEED

__all__ = ["SGDConfig", "TOLERANCES", "STEP_GRID"]

#: Convergence tolerances of the paper's protocol: within 10%, 5%, 2%
#: and 1% of the optimal loss.
TOLERANCES: tuple[float, ...] = (0.10, 0.05, 0.02, 0.01)

#: The paper's step-size grid: "griding its range in powers of 10,
#: e.g., {1e-6, 1e-5, ..., 1e2}" (Section IV-A).  We extend the top of
#: the range by one decade: our synthetic rows are L2-normalised, which
#: shrinks full-batch mean gradients relative to the paper's raw
#: features, so the batch-GD family's best steps land around 1e2-1e3.
STEP_GRID: tuple[float, ...] = tuple(10.0**e for e in range(-6, 4))


@dataclass(frozen=True)
class SGDConfig:
    """Hyper-parameters of one training run.

    Attributes
    ----------
    step_size:
        Constant learning rate alpha.
    max_epochs:
        Upper bound on optimisation epochs (the paper runs "at least 10
        iterations" and to convergence; we bound the loop).
    batch_size:
        Mini-batch size for batched runners; ignored by the pure
        incremental/batch variants.
    seed:
        Seed for shuffles (model initialisation is supplied externally
        so all configurations share it, per the paper's methodology).
    target_loss:
        Early-stop threshold: stop once the epoch loss reaches it.
        ``None`` runs all epochs.
    eval_every:
        Record the loss every this many epochs (1 = the paper's
        protocol; loss evaluation is never counted in iteration time).
    divergence_factor:
        Abort when the loss exceeds ``divergence_factor * initial_loss``
        (runaway step sizes are reported as non-convergent rather than
        looping to max_epochs).
    """

    step_size: float
    max_epochs: int = 200
    batch_size: int = 512
    seed: int = DEFAULT_SEED
    target_loss: float | None = None
    eval_every: int = 1
    divergence_factor: float = 100.0

    def __post_init__(self) -> None:
        if not self.step_size > 0:
            raise ConfigurationError(f"step_size must be > 0, got {self.step_size}")
        if self.max_epochs < 1:
            raise ConfigurationError(f"max_epochs must be >= 1, got {self.max_epochs}")
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.eval_every < 1:
            raise ConfigurationError(f"eval_every must be >= 1, got {self.eval_every}")
        if self.divergence_factor <= 1:
            raise ConfigurationError("divergence_factor must exceed 1")
