"""SGD core: synchronous/asynchronous runners, convergence, grid search."""

from .asynchronous import AsyncResult, train_asynchronous
from .averaging import AveragingResult, AveragingSchedule, train_model_averaging
from .config import STEP_GRID, TOLERANCES, SGDConfig
from .convergence import LossCurve, tolerance_threshold
from .gridsearch import GridPoint, GridSearchResult, grid_search
from .lowprec import (
    BFloat16Quantizer,
    FixedPointQuantizer,
    Float32Quantizer,
    Quantizer,
    make_quantizer,
    run_quantized_epoch,
)
from .reference import clear_reference_cache, reference_loss
from .serialize import load_results, result_from_dict, result_to_dict, save_results
from .runner import (
    ARCHITECTURES,
    BACKENDS,
    DEFAULT_STEP_SIZES,
    STRATEGIES,
    TrainResult,
    default_step_size,
    full_scale_factor,
    train,
    working_set_bytes,
)
from .synchronous import SyncResult, train_minibatch_synchronous, train_synchronous

__all__ = [
    "SGDConfig",
    "TOLERANCES",
    "STEP_GRID",
    "LossCurve",
    "tolerance_threshold",
    "SyncResult",
    "train_synchronous",
    "train_minibatch_synchronous",
    "AsyncResult",
    "train_asynchronous",
    "AveragingSchedule",
    "AveragingResult",
    "train_model_averaging",
    "reference_loss",
    "clear_reference_cache",
    "TrainResult",
    "train",
    "default_step_size",
    "DEFAULT_STEP_SIZES",
    "ARCHITECTURES",
    "STRATEGIES",
    "BACKENDS",
    "full_scale_factor",
    "working_set_bytes",
    "grid_search",
    "GridPoint",
    "GridSearchResult",
    "Quantizer",
    "Float32Quantizer",
    "BFloat16Quantizer",
    "FixedPointQuantizer",
    "make_quantizer",
    "run_quantized_epoch",
    "save_results",
    "load_results",
    "result_to_dict",
    "result_from_dict",
]
