"""The top-level training facade: one call per paper configuration.

:func:`train` reproduces one cell of the paper's exploratory space
(Fig. 1 x Fig. 2): pick a task (lr / svm / mlp), a dataset, a computing
architecture (cpu-seq / cpu-par / gpu) and an update strategy
(synchronous / asynchronous), and receive a :class:`TrainResult` whose

* **statistical efficiency** (loss curve, epochs to tolerance) was
  *measured* by running the real numerical optimisation — through the
  asynchrony simulator for Hogwild/Hogbatch configurations;
* **hardware efficiency** (time per iteration) was produced by the
  analytical machine models at the paper's full dataset scale;
* **time to convergence** is their product, the paper's third axis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..asyncsim import AsyncSchedule
from ..datasets import PAPER_PROFILES, load, load_mlp
from ..datasets.synthetic import Dataset
from ..faults import FaultPlan, RecoveryPolicy
from ..hardware import AsyncWorkload, CpuModel, GpuModel
from ..linalg.trace import Trace
from ..models import Model, make_model
from ..telemetry import keys
from ..telemetry.session import AnyTelemetry, ensure_telemetry
from ..utils.errors import ConfigurationError
from ..utils.rng import DEFAULT_SEED, derive_rng
from ..utils.units import FLOAT64_BYTES, INT32_BYTES
from .config import TOLERANCES, SGDConfig
from .convergence import LossCurve, tolerance_threshold
from .asynchronous import train_asynchronous
from .reference import reference_loss
from .synchronous import train_synchronous

__all__ = [
    "ARCHITECTURES",
    "STRATEGIES",
    "BACKENDS",
    "TrainResult",
    "train",
    "default_step_size",
    "DEFAULT_STEP_SIZES",
]

ARCHITECTURES: tuple[str, ...] = ("cpu-seq", "cpu-par", "gpu")
STRATEGIES: tuple[str, ...] = ("synchronous", "asynchronous")

#: Execution backends for asynchronous lr/svm configurations:
#: ``"simulated"`` runs the deterministic asynchrony simulator and prices
#: hardware time with the analytical machine models; ``"shm"`` runs real
#: lock-free worker processes over a shared-memory model and *measures*
#: wall-clock time on the host; ``"ps"`` runs worker processes against a
#: sharded parameter server over local TCP (:mod:`repro.distributed`)
#: and measures the distributed asynchronous regime.
BACKENDS: tuple[str, ...] = ("simulated", "shm", "ps")

#: Step sizes selected by the grid-search protocol (Section IV-A) at the
#: default benchmark scale; :func:`repro.sgd.gridsearch.grid_search`
#: regenerates them.  Keys: (task, strategy).  Values may be refined per
#: dataset via the nested dict.
DEFAULT_STEP_SIZES: dict[tuple[str, str], float] = {
    ("lr", "synchronous"): 10.0,
    ("svm", "synchronous"): 1.0,
    ("mlp", "synchronous"): 1.0,
    ("lr", "asynchronous"): 0.1,
    ("svm", "asynchronous"): 0.01,
    ("mlp", "asynchronous"): 0.1,
}


def default_step_size(task: str, strategy: str) -> float:
    """The tuned default step size for a (task, strategy) pair."""
    try:
        return DEFAULT_STEP_SIZES[(task, strategy)]
    except KeyError:
        raise ConfigurationError(
            f"no default step size for task={task!r}, strategy={strategy!r}"
        ) from None


@dataclass
class TrainResult:
    """Everything the paper reports about one configuration."""

    task: str
    dataset: str
    architecture: str
    strategy: str
    step_size: float
    curve: LossCurve
    #: Modelled seconds per optimisation epoch at paper scale.
    time_per_iter: float
    optimal_loss: float
    diverged: bool
    #: The epoch trace (synchronous runs only) for further analysis.
    epoch_trace: Trace | None = field(default=None, repr=False)
    #: Realised dataset statistics (rows/features/nnz of the data the
    #: optimisation actually ran on) — recorded into run manifests.
    dataset_stats: dict | None = field(default=None, repr=False)
    #: Execution backend that produced the curve ("simulated", "shm"
    #: or "ps").
    backend: str = "simulated"
    #: Final parameter vector of the run — the loadable model artifact
    #: the serving layer scores with (:mod:`repro.serving`); round-trips
    #: through :mod:`repro.sgd.serialize`.
    params: np.ndarray | None = field(default=None, repr=False)
    #: Measured execution record (shm/ps backends only): worker count,
    #: wall-clock seconds and event counters.  For the simulated
    #: backend this is ``None`` and ``time_per_iter`` is modelled.
    measured: dict | None = field(default=None, repr=False)

    @property
    def initial_loss(self) -> float:
        """Loss of the shared initial model."""
        return self.curve.initial_loss

    def threshold(self, tolerance: float) -> float:
        """Absolute loss target for the given tolerance."""
        return tolerance_threshold(self.optimal_loss, tolerance, self.initial_loss)

    def epochs_to(self, tolerance: float) -> int | None:
        """Statistical efficiency: passes to reach the tolerance."""
        return self.curve.epochs_to(self.threshold(tolerance))

    def time_to(self, tolerance: float) -> float:
        """Time to convergence (sec); ``inf`` when never reached."""
        epochs = self.epochs_to(tolerance)
        if epochs is None:
            return math.inf
        return epochs * self.time_per_iter

    def loss_vs_time(self) -> tuple[np.ndarray, np.ndarray]:
        """(seconds, loss) arrays — the axes of the paper's Fig. 7."""
        return self.curve.time_axis(self.time_per_iter), np.asarray(
            self.curve.losses, dtype=np.float64
        )

    def summary(self) -> dict[str, float | str | None]:
        """Flat record used by the experiment tables."""
        out: dict[str, float | str | None] = {
            "task": self.task,
            "dataset": self.dataset,
            "architecture": self.architecture,
            "strategy": self.strategy,
            "step_size": self.step_size,
            "time_per_iter_ms": self.time_per_iter * 1e3,
            "optimal_loss": self.optimal_loss,
            "final_loss": self.curve.final_loss,
        }
        for tol in TOLERANCES:
            pct = int(round(tol * 100))
            out[f"epochs_to_{pct}pct"] = self.epochs_to(tol)
            out[f"time_to_{pct}pct_s"] = self.time_to(tol)
        return out


# ---------------------------------------------------------------------------


def _full_profile(dataset: Dataset):
    name = dataset.profile.name.removesuffix("-mlp")
    return PAPER_PROFILES.get(name, dataset.profile)


def _apply_representation(dataset: Dataset, representation: str) -> Dataset:
    """Convert the feature matrix to the requested storage format."""
    if representation == "auto":
        return dataset
    from dataclasses import replace as dc_replace

    if representation == "dense" and dataset.is_sparse:
        return Dataset(
            name=dataset.name,
            X=dataset.to_dense(),
            y=dataset.y,
            profile=dc_replace(dataset.profile, dense=True),
        )
    if representation == "sparse" and not dataset.is_sparse:
        return Dataset(
            name=dataset.name,
            X=dataset.as_csr(),
            y=dataset.y,
            profile=dc_replace(dataset.profile, dense=False),
        )
    return dataset


def _effective_full_profile(dataset: Dataset, representation: str = "auto"):
    """Paper-scale profile with the representation override applied."""
    from dataclasses import replace as dc_replace

    full = _full_profile(dataset)
    if representation == "dense" and not full.dense:
        return dc_replace(full, dense=True)
    if representation == "sparse" and full.dense:
        return dc_replace(full, dense=False)
    return full


def full_scale_factor(
    dataset: Dataset, task: str, representation: str = "auto"
) -> float:
    """Trace extrapolation factor from the realised data to paper scale.

    Example-driven kernel costs scale with the stored cells actually
    touched: dense representations by the cell-count ratio, sparse ones
    by the nnz ratio; the MLP pipeline keeps its grouped width, so only
    the row count scales.
    """
    full = _effective_full_profile(dataset, representation)
    if task == "mlp":
        return full.n_examples / dataset.n_examples
    if not dataset.is_sparse:
        cells = dataset.n_examples * dataset.n_features
        return (full.n_examples * full.n_features) / max(1, cells)
    realised_nnz = max(1, dataset.nnz)
    return (full.n_examples * full.nnz_avg) / realised_nnz


def working_set_bytes(
    dataset: Dataset, model: Model, task: str, representation: str = "auto"
) -> float:
    """Epoch working set at paper scale (dataset + model)."""
    full = _effective_full_profile(dataset, representation)
    model_bytes = model.n_params * FLOAT64_BYTES
    if task == "mlp":
        # MLP data is feature-grouped and dense at the grouped width.
        return full.n_examples * dataset.n_features * FLOAT64_BYTES + model_bytes
    if full.dense:
        return full.dense_bytes + model_bytes
    return (
        full.n_examples * full.nnz_avg * (FLOAT64_BYTES + INT32_BYTES)
        + (full.n_examples + 1) * 8
        + model_bytes
    )


def _async_schedule(
    task: str,
    architecture: str,
    n_examples: int,
    n_examples_full: int,
    cpu: CpuModel,
    gpu: GpuModel,
    batch_size: int,
) -> AsyncSchedule:
    if task in ("lr", "svm"):
        if architecture == "cpu-seq":
            return AsyncSchedule(concurrency=1, batch_size=1)
        if architecture == "cpu-par":
            return AsyncSchedule(
                concurrency=min(cpu.spec.max_threads, max(2, n_examples)), batch_size=1
            )
        # GPU Hogwild: every resident thread reads the same model
        # generation, and warps retire in a pipeline — a warp's
        # gradients are computed against the state from when it was
        # scheduled, with the resident-thread window still in flight.
        # The pipelined schedule (32-lane blocks, lag = window/32)
        # models that delay *without* the aligned-round model's
        # implicit averaging.  Two quantities both matter for
        # statistical efficiency: the in-flight *fraction* of an epoch
        # (preserved by scaling the 6656-thread window with the dataset
        # ratio) and the *absolute* number of in-flight updates (which
        # sets the conflict pressure a stale read faces).  On scaled
        # data the two cannot both equal the paper's values; we scale
        # by the ratio but floor the window at 512 updates — within an
        # order of magnitude of the device's — capped at half an epoch
        # so the schedule never degenerates to batch GD.
        resident = gpu.spec.concurrent_threads
        window = int(round(resident * n_examples / max(n_examples_full, 1)))
        window = min(max(512, window), resident, max(2, n_examples // 2))
        return AsyncSchedule(
            concurrency=window, batch_size=1, pipeline_block=gpu.spec.warp_size
        )
    # MLP: asynchronous SGD is mini-batch (cpu-seq) / Hogbatch (Section
    # IV-B; B = 512 in the paper).
    if architecture == "cpu-seq":
        return AsyncSchedule(concurrency=1, batch_size=batch_size)
    if architecture == "cpu-par":
        # 56 threads each own a batch; the in-flight fraction of an
        # epoch is 56 / (N/B).  Scaled-down data has far fewer batches
        # per epoch, so the concurrency is scaled by the same ratio to
        # preserve that fraction (floor 2 keeps it genuinely async).
        batches_full = max(1, n_examples_full // batch_size)
        batches_here = max(1, n_examples // batch_size)
        frac = min(1.0, cpu.spec.max_threads / batches_full)
        return AsyncSchedule(
            concurrency=max(2, int(round(frac * batches_here))),
            batch_size=batch_size,
        )
    # "the GPU implementation can be regarded as Hogbatch with very low
    # concurrency" — one kernel in flight, the next batch's host-side
    # setup overlaps: concurrency 2.
    return AsyncSchedule(concurrency=2, batch_size=batch_size)


def train(
    task: str,
    dataset: str | Dataset,
    architecture: str = "cpu-par",
    strategy: str = "asynchronous",
    scale: str = "small",
    step_size: float | None = None,
    max_epochs: int | None = None,
    batch_size: int | None = None,
    seed: int | None = None,
    cpu_model: CpuModel | None = None,
    gpu_model: GpuModel | None = None,
    early_stop_tolerance: float | None = 0.01,
    representation: str = "auto",
    backend: str = "simulated",
    threads: int | None = None,
    track_conflicts: bool = True,
    nodes: int | None = None,
    shards: int | None = None,
    max_staleness: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int | None = None,
    checkpoint_seconds: float | None = None,
    server_process: bool = False,
    epoch_timeout: float | None = None,
    fault_plan: FaultPlan | None = None,
    max_restarts: int = 0,
    snapshot_out: str | None = None,
    telemetry: AnyTelemetry | None = None,
) -> TrainResult:
    """Train one paper configuration and report all three performance axes.

    Parameters
    ----------
    task:
        ``"lr"``, ``"svm"`` or ``"mlp"``.
    dataset:
        A paper dataset name (generated at *scale*) or a prebuilt
        :class:`~repro.datasets.synthetic.Dataset` (MLP callers must
        pass the feature-grouped variant).
    architecture:
        ``"cpu-seq"``, ``"cpu-par"`` or ``"gpu"``.
    strategy:
        ``"synchronous"`` (blocking batch gradient descent) or
        ``"asynchronous"`` (Hogwild for lr/svm, mini-batch/Hogbatch for
        mlp).
    step_size:
        Learning rate; defaults to the tuned value for (task, strategy).
    max_epochs:
        Epoch budget; defaults to 400 synchronous / 150 asynchronous.
    batch_size:
        Mini-batch rows per update.  ``None`` (the default) resolves
        per backend: 512 for the simulated MLP Hogbatch (the paper's
        B) and 1 (pure Hogwild) for the shm backend.  With
        ``backend="shm"`` an explicit value > 1 runs *measured*
        Hogbatch: one vectorised lock-free work item per batch.
    early_stop_tolerance:
        Stop once the loss is within this tolerance of the optimum
        (``None`` disables; the curve then runs to max_epochs).
    representation:
        The paper's third exploratory axis, exposed as a free choice:
        ``"auto"`` keeps the dataset's natural format (CSR for the
        sparse profiles, dense for covtype); ``"dense"`` densifies a
        sparse dataset; ``"sparse"`` compresses a dense one.  This
        opens the light circles of the paper's Fig. 1 — e.g. Hogwild
        over a *dense* representation of rcv1, where every update
        writes all d coordinates and the coherence storm appears on an
        otherwise sparse problem.  lr/svm only (the MLP pipeline is
        dense by construction).
    backend:
        ``"simulated"`` (default) runs the deterministic asynchrony
        simulator and prices time with the analytical hardware models;
        ``"shm"`` runs real lock-free worker processes over a
        shared-memory model (:func:`repro.parallel.train_shm`) and
        reports *measured* wall-clock time per epoch in
        ``time_per_iter`` plus a ``measured`` record; ``"ps"`` runs
        worker processes against a sharded parameter server over local
        TCP (:func:`repro.distributed.train_ps`) — the multi-node
        asynchronous regime, likewise measured.  Both measured
        backends apply to asynchronous lr/svm configurations.
    threads:
        Worker processes for the shm backend (default: up to 4,
        bounded by the host's cores).  Only meaningful with
        ``backend="shm"``.
    track_conflicts:
        shm backend: measure racy coordinate overwrites
        (``async.update_conflicts``); ``False`` gives the leanest
        possible hot loop.  shm only.
    nodes:
        Worker processes for the ps backend (default: up to 4, bounded
        by the host's cores).  ps only.
    shards:
        Parameter shards on the ps backend's server (default: derived
        from the model size, at most 8).  ps only.
    max_staleness:
        ps backend: bounded-staleness window in work items — a worker
        more than this far ahead of the slowest live worker blocks on
        pull.  ``None`` (the default) is the unbounded fast-async
        regime; ``0`` is lock-step.  ps only.
    checkpoint_dir:
        ps backend: directory for the server's versioned shard
        checkpoints.  Enables epoch-boundary checkpointing and — with
        server faults or ``server_process`` — crash-restart failover.
        ps only.
    checkpoint_every:
        ps backend: background-checkpoint trigger in pushes since the
        last write (requires ``checkpoint_dir``).  ps only.
    checkpoint_seconds:
        ps backend: background-checkpoint trigger in seconds since the
        last write (requires ``checkpoint_dir``).  ps only.
    server_process:
        ps backend: run the shard server in its own supervised process
        (the failover-capable topology); forced on automatically when
        the fault plan carries server-level kinds.  ps only.
    epoch_timeout:
        Measured backends: seconds the parent waits for an epoch
        barrier before declaring the run dead (default 120).
    fault_plan:
        Seeded faults to inject into the measured backends' workers
        (chaos testing); see :class:`repro.faults.FaultPlan` — the
        shm backend takes the worker-level kinds, the ps backend the
        node-level kinds (``node-kill`` / ``node-stall``).
    max_restarts:
        Recovery budget for measured-backend worker failures: dead
        workers are recovered by re-partitioning their examples over
        the survivors (stalls by a full respawn, NaN-poisoned
        snapshots by scrubbing), up to this many times, with
        exponential backoff on the epoch timeout.  ``0`` (the
        default) fails fast.
    snapshot_out:
        Measured backends: publish a consistent model snapshot at
        every epoch boundary into a shared-memory segment and write
        its JSON descriptor to this path, so a live scoring service
        (``python -m repro serve --snapshot PATH``) can attach and
        hot-swap while training runs (see :mod:`repro.serving` and
        docs/SERVING.md).  The segment is unlinked when training ends;
        attached readers keep the final model.
    telemetry:
        A :class:`repro.telemetry.Telemetry` to receive spans (dataset
        load, reference solve, optimisation, hardware costing),
        counters (gradient evaluations, updates applied, stale reads,
        modelled bytes/flops) and simulated-time gauges.  ``None`` (the
        default) disables observability at zero cost; results are
        bit-identical either way.
    """
    if task not in ("lr", "svm", "mlp"):
        raise ConfigurationError(f"unknown task {task!r}")
    if architecture not in ARCHITECTURES:
        raise ConfigurationError(
            f"unknown architecture {architecture!r}; available: {ARCHITECTURES}"
        )
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; available: {STRATEGIES}"
        )
    if representation not in ("auto", "dense", "sparse"):
        raise ConfigurationError(
            f"unknown representation {representation!r}; "
            "use 'auto', 'dense' or 'sparse'"
        )
    if representation != "auto" and task == "mlp":
        raise ConfigurationError(
            "representation overrides apply to lr/svm; the MLP pipeline is "
            "dense by construction (feature grouping densifies the data)"
        )
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; available: {BACKENDS}"
        )
    if max_restarts < 0:
        raise ConfigurationError(f"max_restarts must be >= 0, got {max_restarts}")
    if backend in ("shm", "ps"):
        if strategy != "asynchronous" or task == "mlp":
            raise ConfigurationError(
                f"the {backend} backend runs asynchronous lr/svm "
                "configurations; use backend='simulated' for synchronous "
                "or MLP runs"
            )
    else:
        measured_only = {
            "epoch_timeout": epoch_timeout is not None,
            "fault_plan": fault_plan is not None,
            "max_restarts": max_restarts != 0,
            "snapshot_out": snapshot_out is not None,
        }
        offending = [name for name, set_ in measured_only.items() if set_]
        if offending:
            raise ConfigurationError(
                f"{', '.join(offending)} configure the measured backends; "
                "pass backend='shm' or backend='ps' (the simulated "
                "backend's concurrency and failure model come from the "
                "architecture's machine model)"
            )
    if backend != "shm":
        shm_only = {
            "threads": threads is not None,
            "track_conflicts": track_conflicts is not True,
        }
        offending = [name for name, set_ in shm_only.items() if set_]
        if offending:
            raise ConfigurationError(
                f"{', '.join(offending)} configure the shm backend; "
                "pass backend='shm'"
            )
    if backend != "ps":
        ps_only = {
            "nodes": nodes is not None,
            "shards": shards is not None,
            "max_staleness": max_staleness is not None,
            "checkpoint_dir": checkpoint_dir is not None,
            "checkpoint_every": checkpoint_every is not None,
            "checkpoint_seconds": checkpoint_seconds is not None,
            "server_process": server_process is not False,
        }
        offending = [name for name, set_ in ps_only.items() if set_]
        if offending:
            raise ConfigurationError(
                f"{', '.join(offending)} configure the ps backend; "
                "pass backend='ps'"
            )
    if batch_size is None:
        # Per-backend default: the simulated MLP Hogbatch uses the
        # paper's B = 512; the measured backends default to pure
        # Hogwild / per-example push-pull (one row per work item).
        batch_size = 1 if backend in ("shm", "ps") else 512
    tel = ensure_telemetry(telemetry)
    cpu = cpu_model or CpuModel()
    gpu = gpu_model or GpuModel()

    with tel.span(
        "train",
        task=task,
        architecture=architecture,
        strategy=strategy,
        scale=scale,
    ) as root:
        with tel.span("dataset.load", scale=scale):
            if isinstance(dataset, Dataset):
                ds = dataset
                ds_name = ds.profile.name.removesuffix("-mlp")
            else:
                ds_name = dataset
                ds = (
                    load_mlp(dataset, scale, seed)
                    if task == "mlp"
                    else load(dataset, scale, seed)
                )
            ds = _apply_representation(ds, representation)
        root.set_attribute("dataset", ds_name)
        stats = _dataset_stats(ds, ds_name, representation)

        model = make_model(task, ds)
        init = model.init_params(derive_rng(seed, f"init/{task}/{ds_name}"))
        # `seed if ... else`, not `seed or`: seed=0 is a real seed and
        # must not collide with the default seed's cached optimum.
        ref_seed = seed if seed is not None else DEFAULT_SEED
        ref_key = f"{task}/{ds_name}/{ds.n_examples}x{ds.n_features}/seed{ref_seed}"
        with tel.span("reference.solve", key=ref_key):
            optimal = reference_loss(model, ds.X, ds.y, init, key=ref_key)

        if step_size is None:
            step_size = default_step_size(task, strategy)
        if max_epochs is None:
            max_epochs = 400 if strategy == "synchronous" else 150

        target = None
        if early_stop_tolerance is not None:
            # Divergence-prone configurations overflow inside the loss
            # already at the initial model; handled here like the
            # runners handle it, not leaked as a RuntimeWarning.
            with np.errstate(over="ignore"):
                initial = model.loss(ds.X, ds.y, init)
            target = tolerance_threshold(optimal, early_stop_tolerance, initial)

        config = SGDConfig(
            step_size=step_size,
            max_epochs=max_epochs,
            batch_size=batch_size,
            seed=seed if seed is not None else DEFAULT_SEED,
            target_loss=target,
        )

        if strategy == "synchronous":
            res = train_synchronous(model, ds.X, ds.y, init, config, tel)
            factor = full_scale_factor(ds, task, representation)
            trace = res.epoch_trace.scaled(factor)
            ws = working_set_bytes(ds, model, task, representation)
            with tel.span("hardware.cost", architecture=architecture) as costing:
                if architecture == "cpu-seq":
                    tpi = cpu.sync_epoch_time(trace, 1, ws, tel)
                elif architecture == "cpu-par":
                    tpi = cpu.sync_epoch_time(trace, cpu.spec.max_threads, ws, tel)
                else:
                    tpi = gpu.sync_epoch_time(trace, tel)
                costing.add_sim_time(tpi)
            _record_sim_time(tel, root, tpi, res.curve)
            return TrainResult(
                task=task,
                dataset=ds_name,
                architecture=architecture,
                strategy=strategy,
                step_size=step_size,
                curve=res.curve,
                time_per_iter=tpi,
                optimal_loss=optimal,
                diverged=res.curve.diverged,
                epoch_trace=trace,
                dataset_stats=stats,
                params=res.params,
            )

        if backend == "shm":
            from ..parallel.shm import ShmSchedule, default_shm_workers, train_shm

            workers = threads if threads is not None else default_shm_workers()
            schedule_kwargs: dict = {
                "workers": workers,
                "batch_size": batch_size,
                "track_conflicts": track_conflicts,
            }
            if epoch_timeout is not None:
                schedule_kwargs["epoch_timeout"] = epoch_timeout
            schedule = ShmSchedule(**schedule_kwargs)
            recovery = (
                RecoveryPolicy(max_restarts=max_restarts) if max_restarts else None
            )
            publisher = None
            if snapshot_out is not None:
                from ..serving import SnapshotPublisher

                publisher = SnapshotPublisher.create(
                    model.n_params,
                    descriptor=snapshot_out,
                    meta={
                        "task": task,
                        "dataset": ds_name,
                        "n_features": int(ds.n_features),
                        "step_size": float(step_size),
                        "scale": scale,
                    },
                )
            try:
                shm_res = train_shm(
                    model,
                    ds.X,
                    ds.y,
                    init,
                    config,
                    schedule,
                    tel,
                    fault_plan=fault_plan,
                    recovery=recovery,
                    snapshot=publisher,
                )
            finally:
                if publisher is not None:
                    publisher.close()
            measured = {
                "workers": shm_res.workers,
                "workers_final": shm_res.workers_final,
                "batch_size": shm_res.batch_size,
                "track_conflicts": schedule.track_conflicts,
                "epoch_timeout": schedule.epoch_timeout,
                "epochs_run": shm_res.epochs_run,
                "wall_seconds_per_epoch": shm_res.wall_seconds_per_epoch,
                "wall_seconds_total": shm_res.wall_seconds_total,
                "counters": dict(shm_res.counters),
                "restarts": shm_res.restarts,
                "repartitions": shm_res.repartitions,
                "degraded_epochs": shm_res.degraded_epochs,
                "recovery": list(shm_res.recovery),
                "fault_plan": fault_plan.describe() if fault_plan else None,
                "max_restarts": max_restarts,
            }
            root.set_attribute("backend", "shm")
            root.set_attribute("workers", shm_res.workers)
            return TrainResult(
                task=task,
                dataset=ds_name,
                architecture=architecture,
                strategy=strategy,
                step_size=step_size,
                curve=shm_res.curve,
                # Measured, not modelled: real seconds per epoch on the
                # host, with loss evaluation excluded.
                time_per_iter=shm_res.wall_seconds_per_epoch,
                optimal_loss=optimal,
                diverged=shm_res.diverged,
                dataset_stats=stats,
                backend="shm",
                measured=measured,
                params=shm_res.params,
            )

        if backend == "ps":
            from ..distributed import PsSchedule, default_ps_nodes, train_ps

            n_nodes = nodes if nodes is not None else default_ps_nodes()
            schedule_kwargs = {
                "nodes": n_nodes,
                "shards": shards,
                "max_staleness": max_staleness,
                "batch_size": batch_size,
                "checkpoint_dir": checkpoint_dir,
                "checkpoint_every": checkpoint_every,
                "checkpoint_seconds": checkpoint_seconds,
                "server_process": server_process,
            }
            if epoch_timeout is not None:
                schedule_kwargs["epoch_timeout"] = epoch_timeout
            ps_schedule = PsSchedule(**schedule_kwargs)
            recovery = (
                RecoveryPolicy(max_restarts=max_restarts) if max_restarts else None
            )
            publisher = None
            if snapshot_out is not None:
                from ..serving import SnapshotPublisher

                publisher = SnapshotPublisher.create(
                    model.n_params,
                    descriptor=snapshot_out,
                    meta={
                        "task": task,
                        "dataset": ds_name,
                        "n_features": int(ds.n_features),
                        "step_size": float(step_size),
                        "scale": scale,
                    },
                )
            try:
                ps_res = train_ps(
                    model,
                    ds.X,
                    ds.y,
                    init,
                    config,
                    ps_schedule,
                    tel,
                    fault_plan=fault_plan,
                    recovery=recovery,
                    snapshot=publisher,
                )
            finally:
                if publisher is not None:
                    publisher.close()
            measured = {
                "workers": ps_res.nodes,
                "workers_final": ps_res.nodes_final,
                "nodes": ps_res.nodes,
                "nodes_final": ps_res.nodes_final,
                "shards": ps_res.shards,
                "max_staleness": ps_res.max_staleness,
                "batch_size": ps_res.batch_size,
                "epoch_timeout": ps_schedule.epoch_timeout,
                "epochs_run": ps_res.epochs_run,
                "wall_seconds_per_epoch": ps_res.wall_seconds_per_epoch,
                "wall_seconds_total": ps_res.wall_seconds_total,
                "counters": dict(ps_res.counters),
                "checkpoint_dir": ps_schedule.checkpoint_dir,
                "server_process": ps_schedule.server_process,
                "restarts": ps_res.restarts,
                "repartitions": ps_res.repartitions,
                "degraded_epochs": ps_res.degraded_epochs,
                "server_failovers": ps_res.server_failovers,
                "time_to_repair_seconds": ps_res.time_to_repair_seconds,
                "recovery": list(ps_res.recovery),
                "fault_plan": fault_plan.describe() if fault_plan else None,
                "max_restarts": max_restarts,
            }
            root.set_attribute("backend", "ps")
            root.set_attribute("nodes", ps_res.nodes)
            return TrainResult(
                task=task,
                dataset=ds_name,
                architecture=architecture,
                strategy=strategy,
                step_size=step_size,
                curve=ps_res.curve,
                # Measured, not modelled: real seconds per epoch on the
                # host, with loss evaluation excluded.
                time_per_iter=ps_res.wall_seconds_per_epoch,
                optimal_loss=optimal,
                diverged=ps_res.diverged,
                dataset_stats=stats,
                backend="ps",
                measured=measured,
                params=ps_res.params,
            )

        full = _effective_full_profile(ds, representation)
        schedule = _async_schedule(
            task, architecture, ds.n_examples, full.n_examples, cpu, gpu, batch_size
        )
        res = train_asynchronous(model, ds.X, ds.y, init, config, schedule, tel)
        if task == "mlp":
            workload = AsyncWorkload.for_batched(ds, model, batch_size, profile=full)
        else:
            workload = AsyncWorkload.for_linear(ds, model, profile=full)
        with tel.span("hardware.cost", architecture=architecture) as costing:
            if architecture == "cpu-seq":
                tpi = cpu.async_epoch_time(workload, 1, tel)
            elif architecture == "cpu-par":
                tpi = cpu.async_epoch_time(workload, cpu.spec.max_threads, tel)
            else:
                tpi = gpu.async_epoch_time(workload, tel)
            costing.add_sim_time(tpi)
        _record_sim_time(tel, root, tpi, res.curve)
        return TrainResult(
            task=task,
            dataset=ds_name,
            architecture=architecture,
            strategy=strategy,
            step_size=step_size,
            curve=res.curve,
            time_per_iter=tpi,
            optimal_loss=optimal,
            diverged=res.diverged,
            dataset_stats=stats,
            params=res.params,
        )


def _dataset_stats(ds: Dataset, name: str, representation: str) -> dict:
    """Realised dataset statistics recorded into manifests."""
    return {
        "name": name,
        "profile": ds.profile.name,
        "n_examples": int(ds.n_examples),
        "n_features": int(ds.n_features),
        "sparse": bool(ds.is_sparse),
        "nnz": int(ds.nnz)
        if ds.is_sparse
        else int(ds.n_examples) * int(ds.n_features),
        "representation": representation,
    }


def _record_sim_time(tel: AnyTelemetry, root_span, time_per_iter: float, curve: LossCurve) -> None:
    """Publish the simulated-time gauges and attribute them to the run."""
    epochs = curve.epochs[-1] if curve.epochs else 0
    tel.set_gauge(keys.SIM_SECONDS_PER_EPOCH, time_per_iter)
    tel.set_gauge(keys.SIM_SECONDS_TOTAL, epochs * time_per_iter)
    root_span.add_sim_time(epochs * time_per_iter)
