"""Reference (optimal) losses for the convergence protocol.

The paper obtains the optimal loss "by running all configurations for a
full day and choosing the lowest" (Section IV-A) — i.e. the reference
is the best loss its own SGD family can reach with a generous budget,
*not* the mathematical infimum.  That distinction matters: on
high-dimensional near-separable data the infimum can be (near) zero and
no constant-step configuration would ever get "within 1%" of it.

We reproduce the protocol with a bounded budget: the reference for a
(model, dataset) pair is the best loss observed across

1. serial incremental SGD (Algorithm 3) at several constant steps —
   the asynchronous family's sequential anchor;
2. full-batch gradient descent (Algorithm 2) at several constant
   steps — the synchronous family's anchor;
3. a decaying-step (1/sqrt t) serial polish continued from the best
   constant-step iterate — standing in for the long tail of a full-day
   run.

Results are cached in-process and optionally on disk (set
``REPRO_CACHE_DIR``); the experiment harness reruns the same keys
constantly.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import numpy as np

from ..asyncsim import AsyncSchedule
from ..asyncsim.engine import run_async_epoch
from ..models.base import Matrix, Model
from ..models.mlp import MLP
from ..utils.errors import DivergenceError
from ..utils.rng import derive_rng

__all__ = ["reference_loss", "clear_reference_cache"]

_CACHE: dict[str, float] = {}

#: Constant steps probed by the incremental-SGD family.
_SGD_STEPS = (0.3, 1.0, 3.0)
#: Constant steps probed by the batch-GD family (its mean gradients are
#: ~N times smaller per update, hence the larger values).
_BGD_STEPS = (10.0, 100.0, 1000.0)
_SGD_EPOCHS = 150
_BGD_EPOCHS = 800
_POLISH_EPOCHS = 80


def _disk_cache_path() -> Path | None:
    root = os.environ.get("REPRO_CACHE_DIR")
    if root is None:
        return None
    return Path(root) / "reference_losses.json"


def _load_disk_cache() -> dict[str, float]:
    path = _disk_cache_path()
    if path is None or not path.exists():
        return {}
    try:
        return {str(k): float(v) for k, v in json.loads(path.read_text()).items()}
    except (ValueError, OSError):
        return {}


def _store_disk_cache(cache: dict[str, float]) -> None:
    path = _disk_cache_path()
    if path is None:
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(cache, indent=1, sort_keys=True))


def clear_reference_cache() -> None:
    """Drop the in-process reference-loss cache (tests)."""
    _CACHE.clear()


def reference_loss(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    init_params: np.ndarray,
    key: str | None = None,
) -> float:
    """Best loss achieved by the budgeted configuration sweep.

    Parameters
    ----------
    key:
        Cache key (e.g. ``"lr/w8a/3000x300/seed0"``); ``None`` bypasses
        caching.
    """
    if key is not None:
        if key in _CACHE:
            return _CACHE[key]
        disk = _load_disk_cache()
        if key in disk:
            _CACHE[key] = disk[key]
            return disk[key]

    value = _protocol_reference(model, X, y, init_params)
    if key is not None:
        _CACHE[key] = value
        disk = _load_disk_cache()
        disk[key] = value
        _store_disk_cache(disk)
    return value


def _protocol_reference(
    model: Model, X: Matrix, y: np.ndarray, w0: np.ndarray
) -> float:
    best = model.loss(X, y, w0)
    best_w = np.array(w0, copy=True)
    batch = 1 if not isinstance(model, MLP) else 256
    schedule = AsyncSchedule(concurrency=1, batch_size=batch)

    # Family 1: constant-step serial incremental / mini-batch SGD.
    for step in _SGD_STEPS:
        w = np.array(w0, copy=True)
        rng = derive_rng(0, f"reference/sgd/{step}")
        for _epoch in range(_SGD_EPOCHS):
            try:
                run_async_epoch(model, X, y, w, step, schedule, rng)
            except DivergenceError:
                break
            loss = model.loss(X, y, w)
            if not math.isfinite(loss):
                break
            if loss < best:
                best, best_w = loss, w.copy()

    # Family 2: constant-step full-batch gradient descent.
    for step in _BGD_STEPS:
        w = np.array(w0, copy=True)
        stale = 0
        prev = math.inf
        for _epoch in range(_BGD_EPOCHS):
            grad = model.full_grad(X, y, w)
            w -= step * grad
            if not np.all(np.isfinite(w)):
                break
            loss = model.loss(X, y, w)
            if not math.isfinite(loss):
                break
            if loss < best:
                best, best_w = loss, w.copy()
            # Early exit when the run has plateaued well above the best.
            stale = stale + 1 if loss >= prev - 1e-12 else 0
            if stale > 50 and loss > best * 1.5 + 1e-9:
                break
            prev = loss

    # Family 3: decaying-step polish from the best iterate found.
    w = best_w
    rng = derive_rng(0, "reference/polish")
    for t in range(1, _POLISH_EPOCHS + 1):
        try:
            run_async_epoch(model, X, y, w, 1.0 / math.sqrt(t + 3), schedule, rng)
        except DivergenceError:
            break
        loss = model.loss(X, y, w)
        if not math.isfinite(loss):
            break
        best = min(best, loss)
    return float(best)
