"""Reference (optimal) losses for the convergence protocol.

The paper obtains the optimal loss "by running all configurations for a
full day and choosing the lowest" (Section IV-A) — i.e. the reference
is the best loss its own SGD family can reach with a generous budget,
*not* the mathematical infimum.  That distinction matters: on
high-dimensional near-separable data the infimum can be (near) zero and
no constant-step configuration would ever get "within 1%" of it.

We reproduce the protocol with a bounded budget: the reference for a
(model, dataset) pair is the best loss observed across

1. serial incremental SGD (Algorithm 3) at several constant steps —
   the asynchronous family's sequential anchor;
2. full-batch gradient descent (Algorithm 2) at several constant
   steps — the synchronous family's anchor;
3. a decaying-step (1/sqrt t) serial polish continued from the best
   constant-step iterate — standing in for the long tail of a full-day
   run.

The constant-step members are mutually independent, so the sweep can
fan them out over worker processes (``jobs`` argument, or the
``REPRO_REFERENCE_JOBS`` environment variable); the members' loss
trajectories are then *folded in the serial program order*, so the
parallel sweep is bit-identical to the serial one.

Results are cached in-process and optionally on disk (set
``REPRO_CACHE_DIR``); the experiment harness reruns the same keys
constantly.  Disk writes are atomic (temp file + ``os.replace``) and
merge-on-write, so concurrent grid workers cannot lose each other's
entries.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path

import numpy as np

from ..asyncsim import AsyncSchedule
from ..asyncsim.engine import run_async_epoch
from ..models.base import Matrix, Model
from ..models.mlp import MLP
from ..utils.errors import DivergenceError
from ..utils.rng import derive_rng

__all__ = [
    "reference_loss",
    "clear_reference_cache",
    "cached_reference",
    "seed_reference_cache",
]

_CACHE: dict[str, float] = {}

#: Constant steps probed by the incremental-SGD family.
_SGD_STEPS = (0.3, 1.0, 3.0)
#: Constant steps probed by the batch-GD family (its mean gradients are
#: ~N times smaller per update, hence the larger values).
_BGD_STEPS = (10.0, 100.0, 1000.0)
_SGD_EPOCHS = 150
_BGD_EPOCHS = 800
_POLISH_EPOCHS = 80

#: Epochs of non-improving loss before a batch-GD member may consider
#: the plateau exit (shared by the member's local bound and the fold).
_BGD_STALE_LIMIT = 50


def _disk_cache_path() -> Path | None:
    root = os.environ.get("REPRO_CACHE_DIR")
    if root is None:
        return None
    return Path(root) / "reference_losses.json"


def _load_disk_cache() -> dict[str, float]:
    path = _disk_cache_path()
    if path is None or not path.exists():
        return {}
    try:
        return {str(k): float(v) for k, v in json.loads(path.read_text()).items()}
    except (ValueError, OSError):
        return {}


def _store_disk_cache(entries: dict[str, float]) -> None:
    """Merge *entries* into the on-disk cache, atomically.

    Concurrent writers (experiment-grid workers solving different keys)
    each re-read the current file, merge their own entries on top and
    publish with ``os.replace`` — a crashed writer leaves the previous
    file intact, and two racing writers can only ever publish a merged
    superset of their own entries, never a truncated or interleaved
    file.  (A writer may still miss an entry committed between its read
    and its replace; the loser's key is simply recomputed or re-merged
    on its next write, which is acceptable for a cache of deterministic
    values.)
    """
    path = _disk_cache_path()
    if path is None or not entries:
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    merged = _load_disk_cache()
    merged.update(entries)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(merged, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def clear_reference_cache() -> None:
    """Drop the in-process reference-loss cache (tests)."""
    _CACHE.clear()


def cached_reference(key: str) -> float | None:
    """The cached optimum for *key*, or None if never solved.

    Checks the in-process cache, then the on-disk cache; never runs the
    solver.  The grid executor uses this to dedupe reference solves
    across cells before fanning work out to workers.
    """
    if key in _CACHE:
        return _CACHE[key]
    disk = _load_disk_cache()
    if key in disk:
        _CACHE[key] = disk[key]
        return disk[key]
    return None


def seed_reference_cache(entries: dict[str, float]) -> None:
    """Pre-populate the in-process cache (grid workers, resumed runs)."""
    _CACHE.update(entries)


def _default_jobs() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_REFERENCE_JOBS", "1")))
    except ValueError:
        return 1


def reference_loss(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    init_params: np.ndarray,
    key: str | None = None,
    jobs: int | None = None,
) -> float:
    """Best loss achieved by the budgeted configuration sweep.

    Parameters
    ----------
    key:
        Cache key (e.g. ``"lr/w8a/3000x300/seed0"``); ``None`` bypasses
        caching.
    jobs:
        Worker processes for the constant-step member sweep.  ``None``
        reads ``REPRO_REFERENCE_JOBS`` (default 1 = serial).  The
        result is bit-identical for every jobs value: members compute
        the same trajectories either way and are folded in the serial
        program order.
    """
    if key is not None:
        if key in _CACHE:
            return _CACHE[key]
        disk = _load_disk_cache()
        if key in disk:
            _CACHE[key] = disk[key]
            return disk[key]

    value = _protocol_reference(
        model, X, y, init_params, jobs=_default_jobs() if jobs is None else jobs
    )
    if key is not None:
        _CACHE[key] = value
        _store_disk_cache({key: value})
    return value


# --- constant-step family members ------------------------------------------
#
# Each member is a self-contained deterministic run (its RNG stream and
# its control flow depend only on its own arguments), which is what
# makes the sweep safe to fan out over processes.  The only coupling in
# the original serial protocol is the batch-GD plateau exit, which
# compared against the *global* best-so-far; `_fold_members` replays
# exactly that serial reduction over the recorded trajectories, so the
# final (best, best_w) is bit-identical to the historical interleaved
# loop for any jobs count.


def _reference_schedule(model: Model) -> AsyncSchedule:
    batch = 1 if not isinstance(model, MLP) else 256
    return AsyncSchedule(concurrency=1, batch_size=batch)


def _sgd_member(
    model: Model, X: Matrix, y: np.ndarray, w0: np.ndarray, step: float
) -> tuple[float, np.ndarray | None]:
    """One constant-step serial SGD run: (own best loss, iterate at it).

    The returned iterate is the one at the *first* attainment of the
    run's minimum (strict-< improvements only), matching what the
    serial protocol would have kept had this run's minimum become the
    global best.
    """
    schedule = _reference_schedule(model)
    w = np.array(w0, copy=True)
    rng = derive_rng(0, f"reference/sgd/{step}")
    best = math.inf
    best_w: np.ndarray | None = None
    for _epoch in range(_SGD_EPOCHS):
        try:
            run_async_epoch(model, X, y, w, step, schedule, rng)
        except DivergenceError:
            break
        loss = model.loss(X, y, w)
        if not math.isfinite(loss):
            break
        if loss < best:
            best, best_w = loss, w.copy()
    return best, best_w


def _bgd_member(
    model: Model, X: Matrix, y: np.ndarray, w0: np.ndarray, step: float
) -> tuple[list[float], int, np.ndarray | None]:
    """One constant-step batch-GD run: (losses, own-min epoch, iterate).

    The member applies the plateau exit against its *own* running best
    — a strictly weaker condition than the serial protocol's
    global-best exit (its own best is never below the global best), so
    the recorded trajectory always covers the prefix the serial
    protocol would have observed; `_fold_members` re-applies the exact
    global condition over these losses.
    """
    w = np.array(w0, copy=True)
    losses: list[float] = []
    best = math.inf
    best_w: np.ndarray | None = None
    best_epoch = -1
    stale = 0
    prev = math.inf
    for epoch in range(_BGD_EPOCHS):
        grad = model.full_grad(X, y, w)
        w -= step * grad
        if not np.all(np.isfinite(w)):
            break
        loss = model.loss(X, y, w)
        if not math.isfinite(loss):
            break
        losses.append(loss)
        if loss < best:
            best, best_w, best_epoch = loss, w.copy(), epoch
        # Early exit when the run has plateaued well above the best.
        stale = stale + 1 if loss >= prev - 1e-12 else 0
        if stale > _BGD_STALE_LIMIT and loss > best * 1.5 + 1e-9:
            break
        prev = loss
    return losses, best_epoch, best_w


def _bgd_iterate_at(
    model: Model, X: Matrix, y: np.ndarray, w0: np.ndarray, step: float, epoch: int
) -> np.ndarray:
    """Deterministically recompute a batch-GD member's iterate at *epoch*."""
    w = np.array(w0, copy=True)
    for _ in range(epoch + 1):
        w -= step * model.full_grad(X, y, w)
    return w


def _run_members(model, X, y, w0, jobs: int):
    """Compute all constant-step members, serially or in a process pool."""
    if jobs > 1:
        try:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            if multiprocessing.current_process().daemon:
                raise RuntimeError("daemonic process cannot fan out")
            n_members = len(_SGD_STEPS) + len(_BGD_STEPS)
            with ProcessPoolExecutor(max_workers=min(jobs, n_members)) as pool:
                sgd_futs = [
                    pool.submit(_sgd_member, model, X, y, w0, step)
                    for step in _SGD_STEPS
                ]
                bgd_futs = [
                    pool.submit(_bgd_member, model, X, y, w0, step)
                    for step in _BGD_STEPS
                ]
                return (
                    [f.result() for f in sgd_futs],
                    [f.result() for f in bgd_futs],
                )
        except (OSError, RuntimeError):
            pass  # no fork/spawn available (or nested pool): fall back
    return (
        [_sgd_member(model, X, y, w0, step) for step in _SGD_STEPS],
        [_bgd_member(model, X, y, w0, step) for step in _BGD_STEPS],
    )


def _fold_members(
    initial_loss: float,
    sgd_results: list[tuple[float, np.ndarray | None]],
    bgd_results: list[tuple[list[float], int, np.ndarray | None]],
) -> tuple[float, tuple | None]:
    """Reduce member trajectories in the serial program order.

    Returns ``(best, winner)`` where *winner* identifies which member
    (and, for batch GD, which epoch) produced the global best —
    ``None`` when no member improved on the initial loss.  The batch-GD
    walk re-applies the historical plateau exit against the evolving
    global best, truncating each trajectory exactly where the serial
    interleaved loop would have stopped observing it.
    """
    best = initial_loss
    winner: tuple | None = None
    for i, (member_best, _w) in enumerate(sgd_results):
        if member_best < best:
            best = member_best
            winner = ("sgd", i)
    for i, (losses, _own_epoch, _w) in enumerate(bgd_results):
        stale = 0
        prev = math.inf
        for epoch, loss in enumerate(losses):
            if loss < best:
                best = loss
                winner = ("bgd", i, epoch)
            stale = stale + 1 if loss >= prev - 1e-12 else 0
            if stale > _BGD_STALE_LIMIT and loss > best * 1.5 + 1e-9:
                break
            prev = loss
    return best, winner


def _protocol_reference(
    model: Model, X: Matrix, y: np.ndarray, w0: np.ndarray, jobs: int = 1
) -> float:
    best = model.loss(X, y, w0)

    # Families 1 and 2: independent constant-step members, reduced in
    # serial order.
    sgd_results, bgd_results = _run_members(model, X, y, w0, jobs)
    best, winner = _fold_members(best, sgd_results, bgd_results)

    if winner is None:
        best_w = np.array(w0, copy=True)
    elif winner[0] == "sgd":
        member_w = sgd_results[winner[1]][1]
        assert member_w is not None
        best_w = member_w
    else:
        _losses, own_epoch, own_w = bgd_results[winner[1]]
        if winner[2] == own_epoch and own_w is not None:
            best_w = own_w
        else:
            # The global best lands before the member's own minimum
            # (the serial protocol stopped observing this run earlier);
            # recompute that iterate deterministically.
            best_w = _bgd_iterate_at(
                model, X, y, w0, _BGD_STEPS[winner[1]], winner[2]
            )

    # Family 3: decaying-step polish from the best iterate found.
    schedule = _reference_schedule(model)
    w = best_w
    rng = derive_rng(0, "reference/polish")
    for t in range(1, _POLISH_EPOCHS + 1):
        try:
            run_async_epoch(model, X, y, w, 1.0 / math.sqrt(t + 3), schedule, rng)
        except DivergenceError:
            break
        loss = model.loss(X, y, w)
        if not math.isfinite(loss):
            break
        best = min(best, loss)
    return float(best)
