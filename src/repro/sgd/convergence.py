"""Loss curves and the paper's convergence-measurement protocol.

Statistical efficiency is "the number of passes over the data until a
certain value of the loss function is achieved, e.g., within 1% of the
minimum" (Section I); the evaluation measures the thresholds 10%, 5%,
2% and 1% against the optimal loss (Section IV-A).  :class:`LossCurve`
stores the per-epoch losses of a run and answers the threshold queries;
:func:`tolerance_threshold` converts a tolerance into an absolute loss
target given the reference optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..utils.errors import ConfigurationError

__all__ = ["LossCurve", "tolerance_threshold"]


def tolerance_threshold(
    optimal_loss: float, tolerance: float, initial_loss: float | None = None
) -> float:
    """Absolute loss target for "within *tolerance* of the optimum".

    Defined on the optimality **gap**: a run converged to tolerance t
    when it closed all but a t-fraction of the distance from the shared
    initial loss to the optimum,

        threshold = optimal + t * (initial - optimal).

    For the paper's real datasets (noisy, optimum well above zero) this
    is practically indistinguishable from the relative band
    ``optimal * (1 + t)``; for near-separable synthetic data (optimum
    ~ 0, where a relative band degenerates to "reach exactly 0") it
    stays well-defined.  When the initial loss is unknown the relative
    definition is used.
    """
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be > 0, got {tolerance}")
    if optimal_loss < -1e-9:
        raise ConfigurationError(
            f"optimal_loss must be non-negative for the paper's losses, got {optimal_loss}"
        )
    if initial_loss is not None and initial_loss > optimal_loss:
        return optimal_loss + tolerance * (initial_loss - optimal_loss)
    return optimal_loss * (1.0 + tolerance)


@dataclass
class LossCurve:
    """Losses of one run: ``losses[k]`` is the loss after ``epochs[k]`` passes.

    Index 0 always holds the initial loss (epoch 0).  A run that
    diverged stores ``math.inf`` as its final entry.
    """

    epochs: list[int] = field(default_factory=lambda: [])
    losses: list[float] = field(default_factory=lambda: [])

    def record(self, epoch: int, loss: float) -> None:
        """Append one measurement (epochs must be strictly increasing)."""
        if self.epochs and epoch <= self.epochs[-1]:
            raise ConfigurationError(
                f"epochs must increase: got {epoch} after {self.epochs[-1]}"
            )
        self.epochs.append(int(epoch))
        self.losses.append(float(loss))

    @property
    def initial_loss(self) -> float:
        """Loss before any update."""
        if not self.losses:
            raise ConfigurationError("empty curve")
        return self.losses[0]

    @property
    def final_loss(self) -> float:
        """Loss after the last recorded epoch."""
        if not self.losses:
            raise ConfigurationError("empty curve")
        return self.losses[-1]

    @property
    def best_loss(self) -> float:
        """Minimum loss observed along the run."""
        finite = [v for v in self.losses if math.isfinite(v)]
        return min(finite) if finite else math.inf

    @property
    def diverged(self) -> bool:
        """True when the run ended in a non-finite loss."""
        return not math.isfinite(self.final_loss)

    def epochs_to(self, threshold: float) -> int | None:
        """First epoch count at which the loss reached *threshold*.

        Returns ``None`` when the run never got there — the paper's
        infinity entries in Table III.
        """
        for e, v in zip(self.epochs, self.losses):
            if math.isfinite(v) and v <= threshold:
                return e
        return None

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(epochs, losses) as NumPy arrays for plotting/analysis."""
        return np.asarray(self.epochs, dtype=np.int64), np.asarray(
            self.losses, dtype=np.float64
        )

    def time_axis(self, time_per_iter: float) -> np.ndarray:
        """Wall-clock axis: epoch counts times the modelled epoch time."""
        if time_per_iter < 0:
            raise ConfigurationError("time_per_iter must be non-negative")
        return np.asarray(self.epochs, dtype=np.float64) * time_per_iter

    def __len__(self) -> int:
        return len(self.epochs)
