"""Synchronous SGD (Algorithm 2: Batch SGD Optimization Epoch).

One synchronous epoch is a fixed sequence of *blocking* linear-algebra
primitives — gradient computation followed by a model update — with
parallelism confined inside each primitive (Section III-A).  Because
the kernel sequence is identical whichever backend executes it, the
statistical efficiency of synchronous SGD is architecture-independent
(the paper's Table II reports a single epoch count per dataset/task);
we therefore run the numerical optimisation once and cost the recorded
epoch trace separately per backend.

A mini-batch variant (1 < B < N) is provided for library completeness;
the paper's synchronous configurations are full batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg import axpy, recording, trace_paused
from ..linalg.trace import Trace
from ..models.base import Matrix, Model
from ..telemetry import keys
from ..telemetry.session import AnyTelemetry, ensure_telemetry
from ..utils.rng import derive_rng
from .config import SGDConfig
from .convergence import LossCurve

__all__ = ["SyncResult", "train_synchronous", "train_minibatch_synchronous"]


@dataclass
class SyncResult:
    """Outcome of a synchronous training run.

    Attributes
    ----------
    curve:
        Per-epoch loss curve (epoch 0 = initial loss).
    params:
        Final parameter vector (the last finite iterate).
    epoch_trace:
        Operation trace of one optimisation epoch, ready for the
        hardware models (loss evaluations excluded per the paper's
        methodology).
    """

    curve: LossCurve
    params: np.ndarray
    epoch_trace: Trace


def train_synchronous(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    init_params: np.ndarray,
    config: SGDConfig,
    telemetry: AnyTelemetry | None = None,
) -> SyncResult:
    """Full-batch gradient descent to the configured stop condition.

    The epoch trace is recorded on the first epoch only — every epoch
    executes the identical kernel sequence, so one recording suffices
    and later epochs skip the bookkeeping.  *telemetry* (optional)
    receives a span covering the optimisation and per-epoch counters:
    a full-batch epoch is N gradient evaluations and one model update.
    """
    tel = ensure_telemetry(telemetry)
    params = np.array(init_params, dtype=np.float64, copy=True)
    n = X.shape[0]
    curve = LossCurve()
    with trace_paused():
        initial = model.loss(X, y, params)
    tel.count(keys.LOSS_EVALS)
    curve.record(0, initial)
    limit = config.divergence_factor * max(initial, 1e-12)

    epoch_trace = Trace()
    with tel.span("sync.optimize", n_examples=n, step_size=config.step_size):
        for epoch in range(1, config.max_epochs + 1):
            if epoch == 1:
                with recording() as epoch_trace:
                    _sync_step(model, X, y, params, config.step_size)
            else:
                _sync_step(model, X, y, params, config.step_size)
            tel.count(keys.EPOCHS)
            tel.count(keys.GRAD_EVALS, n)
            tel.count(keys.UPDATES_APPLIED)
            if not np.all(np.isfinite(params)):
                curve.record(epoch, float("inf"))
                break
            if epoch % config.eval_every == 0 or epoch == config.max_epochs:
                with trace_paused():
                    loss = model.loss(X, y, params)
                tel.count(keys.LOSS_EVALS)
                curve.record(epoch, loss)
                if not np.isfinite(loss) or loss > limit:
                    curve.losses[-1] = float("inf")
                    break
                if config.target_loss is not None and loss <= config.target_loss:
                    break
    return SyncResult(curve=curve, params=params, epoch_trace=epoch_trace)


def _sync_step(model: Model, X: Matrix, y: np.ndarray, params: np.ndarray, step: float) -> None:
    grad = model.full_grad(X, y, params)
    # In-place model update through the primitive API so the trace
    # carries it; the update is model-sized, not example-sized.
    params[:] = axpy(
        -step,
        grad,
        params,
        name="model_update",
        cost_scales=False,
        parallelism_scales=False,
    )


def train_minibatch_synchronous(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    init_params: np.ndarray,
    config: SGDConfig,
) -> SyncResult:
    """Synchronous mini-batch SGD (1 < B < N).

    Each epoch shuffles the examples and performs ``ceil(N/B)`` blocking
    gradient+update rounds.  The epoch trace is recorded on the first
    epoch; it contains every round's kernels.
    """
    params = np.array(init_params, dtype=np.float64, copy=True)
    n = X.shape[0]
    rng = derive_rng(config.seed, "sync_minibatch")
    curve = LossCurve()
    with trace_paused():
        initial = model.loss(X, y, params)
    curve.record(0, initial)
    limit = config.divergence_factor * max(initial, 1e-12)

    epoch_trace = Trace()
    for epoch in range(1, config.max_epochs + 1):
        order = rng.permutation(n)
        batches = [
            order[i : i + config.batch_size] for i in range(0, n, config.batch_size)
        ]

        def run_epoch() -> None:
            for rows in batches:
                grad = model.minibatch_grad(X, y, rows, params)
                params[:] = axpy(
                    -config.step_size,
                    grad,
                    params,
                    name="model_update",
                    cost_scales=False,
                    parallelism_scales=False,
                )

        if epoch == 1:
            with recording() as epoch_trace:
                run_epoch()
        else:
            run_epoch()
        if not np.all(np.isfinite(params)):
            curve.record(epoch, float("inf"))
            break
        if epoch % config.eval_every == 0 or epoch == config.max_epochs:
            with trace_paused():
                loss = model.loss(X, y, params)
            curve.record(epoch, loss)
            if not np.isfinite(loss) or loss > limit:
                curve.losses[-1] = float("inf")
                break
            if config.target_loss is not None and loss <= config.target_loss:
                break
    return SyncResult(curve=curve, params=params, epoch_trace=epoch_trace)
