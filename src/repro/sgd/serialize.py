"""Serialization of training results to/from JSON.

Experiment pipelines want to run configurations once and analyse the
curves later (the paper's own methodology averages over >= 10 runs and
post-processes loss-vs-time series).  This module round-trips
:class:`~repro.sgd.runner.TrainResult` — including the loss curve and
the per-tolerance convergence summary — through plain JSON, with
infinities and the optional epoch trace handled explicitly.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import TextIO

import numpy as np

from ..linalg.trace import OpKind, OpRecord, Trace
from ..utils.errors import ConfigurationError
from .convergence import LossCurve
from .runner import TrainResult

__all__ = ["result_to_dict", "result_from_dict", "save_results", "load_results"]

_FORMAT_VERSION = 1

#: OpRecord fields serialised for the optional epoch trace (everything
#: the hardware models cost from; ``kind`` is stored as its str value).
_OP_FIELDS = (
    "name",
    "kind",
    "flops",
    "bytes_read",
    "bytes_written",
    "parallel_tasks",
    "result_size",
    "irregular",
    "dispersion",
    "cost_scales",
    "parallelism_scales",
)


def _trace_to_list(trace: Trace) -> list[dict]:
    return [
        {f: (op.kind.value if f == "kind" else getattr(op, f)) for f in _OP_FIELDS}
        for op in trace
    ]


def _trace_from_list(ops: list[dict]) -> Trace:
    trace = Trace()
    for raw in ops:
        kwargs = {f: raw[f] for f in _OP_FIELDS if f in raw}
        kwargs["kind"] = OpKind(kwargs["kind"])
        trace.add(OpRecord(**kwargs))
    return trace


def _encode_float(v: float):
    if math.isinf(v):
        return "inf" if v > 0 else "-inf"
    if math.isnan(v):
        return "nan"
    return v


def _decode_float(v) -> float:
    if isinstance(v, str):
        return float(v)
    return float(v)


def result_to_dict(
    result: TrainResult, *, include_trace: bool = False, include_params: bool = True
) -> dict:
    """Flatten a result into JSON-safe primitives.

    By default the epoch trace is not serialised (it is an analysis
    intermediate; re-run the configuration to regenerate it).  Pass
    ``include_trace=True`` to keep it — the experiment-grid result
    store needs it so a resumed synchronous base run can still be
    re-costed for the other architectures.

    The final parameter vector *is* serialised by default (when the
    result carries one): it makes the document a loadable model
    artifact for ``repro serve --model <file>`` /
    :meth:`repro.serving.ScoringEngine.from_artifact`.  Pass
    ``include_params=False`` for curve-only documents.
    """
    payload = {
        "version": _FORMAT_VERSION,
        "task": result.task,
        "dataset": result.dataset,
        "architecture": result.architecture,
        "strategy": result.strategy,
        "step_size": result.step_size,
        "time_per_iter": result.time_per_iter,
        "optimal_loss": result.optimal_loss,
        "diverged": result.diverged,
        "backend": result.backend,
        "curve": {
            "epochs": list(result.curve.epochs),
            "losses": [_encode_float(v) for v in result.curve.losses],
        },
    }
    if result.dataset_stats is not None:
        payload["dataset_stats"] = dict(result.dataset_stats)
    if include_trace and result.epoch_trace is not None:
        payload["epoch_trace"] = _trace_to_list(result.epoch_trace)
    if include_params and result.params is not None:
        # The final model: what `repro serve --model <file>` loads.
        # Non-finite coordinates (diverged runs) encode explicitly.
        payload["params"] = [_encode_float(float(v)) for v in result.params]
    return payload


def result_from_dict(payload: dict) -> TrainResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    if not isinstance(payload, dict) or "curve" not in payload:
        raise ConfigurationError("not a serialized TrainResult")
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported result format version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    curve = LossCurve()
    for epoch, loss in zip(payload["curve"]["epochs"], payload["curve"]["losses"]):
        curve.record(int(epoch), _decode_float(loss))
    trace = payload.get("epoch_trace")
    stats = payload.get("dataset_stats")
    params = payload.get("params")
    return TrainResult(
        task=str(payload["task"]),
        dataset=str(payload["dataset"]),
        architecture=str(payload["architecture"]),
        strategy=str(payload["strategy"]),
        step_size=float(payload["step_size"]),
        curve=curve,
        time_per_iter=float(payload["time_per_iter"]),
        optimal_loss=float(payload["optimal_loss"]),
        diverged=bool(payload["diverged"]),
        epoch_trace=_trace_from_list(trace) if trace is not None else None,
        dataset_stats=dict(stats) if stats is not None else None,
        backend=str(payload.get("backend", "simulated")),
        params=(
            np.asarray([_decode_float(v) for v in params], dtype=np.float64)
            if params is not None
            else None
        ),
    )


def save_results(results, path: str | Path | TextIO) -> None:
    """Write one or many results as a JSON document."""
    if isinstance(results, TrainResult):
        results = [results]
    doc = {
        "version": _FORMAT_VERSION,
        "results": [result_to_dict(r) for r in results],
    }
    if hasattr(path, "write"):
        json.dump(doc, path, indent=1)  # type: ignore[arg-type]
        return
    Path(path).write_text(json.dumps(doc, indent=1), encoding="utf-8")


def load_results(path: str | Path | TextIO) -> list[TrainResult]:
    """Read results written by :func:`save_results`."""
    if hasattr(path, "read"):
        doc = json.load(path)  # type: ignore[arg-type]
    else:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or "results" not in doc:
        raise ConfigurationError("not a repro results document")
    return [result_from_dict(p) for p in doc["results"]]
