"""Asynchronous SGD runners: Hogwild (B=1) and Hogbatch (B=512).

The numerical optimisation runs through the deterministic asynchrony
simulator (:mod:`repro.asyncsim`), so the recorded loss curve *is* the
statistical efficiency of the configuration — including the degradation
caused by stale reads at high concurrency and the outright divergence
the paper marks as infinity in Table III.

Configuration-to-concurrency mapping (see :mod:`repro.sgd.runner`):

* ``cpu-seq``  — concurrency 1 (exact Algorithm 3 / serial mini-batch);
* ``cpu-par``  — concurrency = the machine's hardware threads (56);
* ``gpu``      — Hogwild: the device's resident thread count (thousands;
  capped at the dataset size); Hogbatch: ~1 concurrent batch kernel
  ("there is only one kernel performing on the GPU at any given time
  instant", Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..asyncsim import AsyncSchedule, run_async_epoch
from ..linalg import trace_paused
from ..models.base import Matrix, Model
from ..telemetry import keys
from ..telemetry.session import AnyTelemetry, ensure_telemetry
from ..utils.errors import DivergenceError
from ..utils.rng import derive_rng
from .config import SGDConfig
from .convergence import LossCurve

__all__ = ["AsyncResult", "train_asynchronous"]


@dataclass
class AsyncResult:
    """Outcome of an asynchronous training run."""

    curve: LossCurve
    params: np.ndarray
    schedule: AsyncSchedule
    #: True when the optimisation blew up (non-finite iterates/loss).
    diverged: bool


def train_asynchronous(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    init_params: np.ndarray,
    config: SGDConfig,
    schedule: AsyncSchedule,
    telemetry: AnyTelemetry | None = None,
) -> AsyncResult:
    """Run asynchronous SGD under the given interleaving schedule.

    A :class:`~repro.utils.errors.DivergenceError` from the engine and
    runaway losses are both recorded as divergence (infinite final
    loss) rather than raised, matching how the paper reports
    non-convergent configurations.  *telemetry* (optional) receives a
    span covering the optimisation; the per-epoch event totals
    (gradients, updates, rounds, stale reads) are counted inside the
    asynchrony engine.
    """
    tel = ensure_telemetry(telemetry)
    params = np.array(init_params, dtype=np.float64, copy=True)
    rng = derive_rng(config.seed, f"async/c{schedule.concurrency}/b{schedule.batch_size}")
    curve = LossCurve()
    with trace_paused():
        initial = model.loss(X, y, params)
    tel.count(keys.LOSS_EVALS)
    curve.record(0, initial)
    limit = config.divergence_factor * max(initial, 1e-12)

    diverged = False
    with tel.span(
        "async.optimize",
        concurrency=schedule.concurrency,
        batch_size=schedule.batch_size,
        step_size=config.step_size,
    ) as opt_span:
        for epoch in range(1, config.max_epochs + 1):
            try:
                run_async_epoch(
                    model, X, y, params, config.step_size, schedule, rng, tel
                )
            except DivergenceError:
                tel.count(keys.EPOCHS)
                curve.record(epoch, float("inf"))
                diverged = True
                break
            tel.count(keys.EPOCHS)
            if epoch % config.eval_every == 0 or epoch == config.max_epochs:
                # Near-divergent parameters overflow inside the loss
                # reduction; the non-finite result is handled right
                # below, so the RuntimeWarning is pure noise.
                with trace_paused(), np.errstate(over="ignore"):
                    loss = model.loss(X, y, params)
                tel.count(keys.LOSS_EVALS)
                if not np.isfinite(loss) or loss > limit:
                    curve.record(epoch, float("inf"))
                    diverged = True
                    break
                curve.record(epoch, loss)
                if config.target_loss is not None and loss <= config.target_loss:
                    break
        opt_span.set_attribute("diverged", diverged)
    return AsyncResult(curve=curve, params=params, schedule=schedule, diverged=diverged)
