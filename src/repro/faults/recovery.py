"""Recovery policies: what the parent does when a worker fails.

The HOGWILD! line of work argues lock-free SGD is robust to
interference; this module extends that robustness from *races* to
*failures*.  A :class:`RecoveryPolicy` bounds how hard the
shared-memory parent tries to keep a run alive:

* a worker **death** is recovered by rebuilding the pool — either
  re-partitioning the dead worker's examples over the survivors
  (``mode="repartition"``, the default: capacity degrades, coverage
  does not) or respawning at full strength (``mode="respawn"``);
* a barrier **timeout** (a stalled worker — no corpse to identify) is
  always recovered by a full respawn;
* a **non-finite model snapshot** (poisoned gradients) is scrubbed:
  the bad coordinates are restored from the last finite snapshot and
  the epoch is recorded as degraded.

Every recovery action — respawn, repartition, or NaN scrub — consumes
one unit of the shared ``max_restarts`` budget, and each rebuild
multiplies the epoch timeout by ``backoff`` (a slow machine that
caused one timeout gets more headroom, not a retry storm).  When the
budget is exhausted the next failure raises
:class:`~repro.utils.errors.WorkerError` exactly as an un-recovered
run would, with all processes joined and both shared segments
unlinked.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.errors import ConfigurationError

__all__ = ["RECOVERY_MODES", "RecoveryPolicy"]

#: How a dead worker's partition is handled on rebuild.
RECOVERY_MODES: tuple[str, ...] = ("repartition", "respawn")


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounded-retry recovery for the shared-memory backend.

    Attributes
    ----------
    max_restarts:
        Total recovery budget (respawns + repartitions + NaN scrubs).
        ``0`` disables recovery — identical to passing no policy.
    backoff:
        Epoch-timeout multiplier applied at every pool rebuild
        (exponential backoff; ``1.0`` keeps the timeout constant).
    mode:
        ``"repartition"`` shrinks the pool by the dead worker and
        round-robins its examples over the survivors; ``"respawn"``
        rebuilds at the original worker count.
    scrub_nans:
        Restore non-finite model coordinates from the last finite
        snapshot instead of declaring divergence (consumes budget).
    """

    max_restarts: int = 1
    backoff: float = 2.0
    mode: str = "repartition"
    scrub_nans: bool = True

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1.0, got {self.backoff}")
        if self.mode not in RECOVERY_MODES:
            raise ConfigurationError(
                f"unknown recovery mode {self.mode!r}; available: {RECOVERY_MODES}"
            )
