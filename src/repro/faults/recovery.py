"""Recovery policies: what the parent does when a worker fails.

The HOGWILD! line of work argues lock-free SGD is robust to
interference; this module extends that robustness from *races* to
*failures*.  A :class:`RecoveryPolicy` bounds how hard the
shared-memory parent tries to keep a run alive:

* a worker **death** is recovered by rebuilding the pool — either
  re-partitioning the dead worker's examples over the survivors
  (``mode="repartition"``, the default: capacity degrades, coverage
  does not) or respawning at full strength (``mode="respawn"``);
* a barrier **timeout** (a stalled worker — no corpse to identify) is
  always recovered by a full respawn;
* a **non-finite model snapshot** (poisoned gradients) is scrubbed:
  the bad coordinates are restored from the last finite snapshot and
  the epoch is recorded as degraded.

Every recovery action — respawn, repartition, or NaN scrub — consumes
one unit of the shared ``max_restarts`` budget, and each rebuild
multiplies the epoch timeout by ``backoff`` (a slow machine that
caused one timeout gets more headroom, not a retry storm).  When the
budget is exhausted the next failure raises
:class:`~repro.utils.errors.WorkerError` exactly as an un-recovered
run would, with all processes joined and both shared segments
unlinked.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.errors import ConfigurationError

__all__ = ["RECOVERY_MODES", "RecoveryPolicy", "CellRetryPolicy"]

#: How a dead worker's partition is handled on rebuild.
RECOVERY_MODES: tuple[str, ...] = ("repartition", "respawn")


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounded-retry recovery for the shared-memory backend.

    Attributes
    ----------
    max_restarts:
        Total recovery budget (respawns + repartitions + NaN scrubs;
        in the parameter-server backend, server failovers draw from
        this same budget — a run that restarts its server once has one
        fewer worker rebuild left).
        ``0`` disables recovery — identical to passing no policy.
    backoff:
        Epoch-timeout multiplier applied at every pool rebuild
        (exponential backoff; ``1.0`` keeps the timeout constant).
    mode:
        ``"repartition"`` shrinks the pool by the dead worker and
        round-robins its examples over the survivors; ``"respawn"``
        rebuilds at the original worker count.
    scrub_nans:
        Restore non-finite model coordinates from the last finite
        snapshot instead of declaring divergence (consumes budget).
    """

    max_restarts: int = 1
    backoff: float = 2.0
    mode: str = "repartition"
    scrub_nans: bool = True

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1.0, got {self.backoff}")
        if self.mode not in RECOVERY_MODES:
            raise ConfigurationError(
                f"unknown recovery mode {self.mode!r}; available: {RECOVERY_MODES}"
            )


@dataclass(frozen=True)
class CellRetryPolicy:
    """Bounded-retry recovery for the experiment-grid executor.

    The grid-level sibling of :class:`RecoveryPolicy`: the same
    philosophy — a shared recovery budget, exponential backoff, keep
    making progress — applied to whole grid cells instead of shm
    workers.  Used by :class:`repro.experiments.executor.GridExecutor`
    in keep-going mode; see docs/RESILIENCE.md.

    Attributes
    ----------
    max_attempts:
        Executions one cell may consume, including the first
        (``1`` disables retries for the cell).
    max_restarts:
        Shared grid-wide retry budget: every re-submission — crash,
        stall, worker exception or divergence backoff — consumes one
        unit, exactly like :class:`RecoveryPolicy.max_restarts`.  When
        it runs out, further failures quarantine immediately.
    backoff:
        Re-submission delay multiplier (exponential backoff over the
        cell's retry count; ``1.0`` keeps the delay constant).
    base_delay:
        Delay (seconds) before the first re-submission of a cell.
    deadline:
        Wall-clock budget (seconds) for one attempt of one cell;
        ``None`` disables the deadline.
    heartbeat_timeout:
        Maximum silence (seconds) from a worker's heartbeat before the
        watchdog declares it wedged and kills it; ``None`` disables
        heartbeat monitoring.
    divergence_retries:
        Step-size-backoff retries granted to a cell whose result came
        back with non-finite losses (the divergence sentinel).
    step_backoff:
        Step-size multiplier applied on each divergence retry.
    """

    max_attempts: int = 3
    max_restarts: int = 8
    backoff: float = 2.0
    base_delay: float = 0.05
    deadline: float | None = None
    heartbeat_timeout: float | None = 60.0
    divergence_retries: int = 1
    step_backoff: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1.0, got {self.backoff}")
        if self.base_delay < 0:
            raise ConfigurationError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(f"deadline must be positive, got {self.deadline}")
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ConfigurationError(
                f"heartbeat_timeout must be positive, got {self.heartbeat_timeout}"
            )
        if self.divergence_retries < 0:
            raise ConfigurationError(
                f"divergence_retries must be >= 0, got {self.divergence_retries}"
            )
        if not 0 < self.step_backoff < 1:
            raise ConfigurationError(
                f"step_backoff must be in (0, 1), got {self.step_backoff}"
            )

    @property
    def watchdog_window(self) -> float | None:
        """The tightest stall-detection bound this policy guarantees."""
        bounds = [b for b in (self.deadline, self.heartbeat_timeout) if b is not None]
        return min(bounds) if bounds else None

    def retry_delay(self, retries_so_far: int) -> float:
        """Backoff delay before the ``retries_so_far + 1``-th retry."""
        return self.base_delay * self.backoff**retries_so_far
