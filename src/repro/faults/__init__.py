"""Deterministic fault injection and recovery for the measured backend.

``repro.faults`` makes failure a *scenario the system measures and
survives* instead of a crash: :class:`FaultPlan` schedules seeded,
reproducible faults (worker kills, stalls, late barrier arrivals, NaN
poisoning) into a :func:`repro.parallel.train_shm` run, and
:class:`RecoveryPolicy` bounds how the parent recovers — repartition
onto survivors or respawn, with exponential timeout backoff and a
shared retry budget.  Recovery actions surface as ``fault.*``
telemetry counters and a per-run recovery trajectory in the manifest
(see ``docs/BACKENDS.md`` and ``docs/OBSERVABILITY.md``).

The same machinery extends one layer up: grid-level fault kinds
(``cell-kill`` / ``cell-stall`` / ``cell-nan``) chaos-test the
experiment-grid executor, and :class:`CellRetryPolicy` bounds how hard
the grid retries a failing cell before quarantining it
(see ``docs/RESILIENCE.md``) — and one layer out: node-level kinds
(``node-kill`` / ``node-stall``) target whole worker processes of the
distributed parameter-server backend (see ``docs/DISTRIBUTED.md``),
server-level kinds (``server-kill`` / ``server-stall``) target the
shard server itself, and wire-level kinds (``conn-drop`` /
``frame-delay`` / ``frame-corrupt``) target one worker's connection
through the seeded lossy-wire wrapper.
"""

from .plan import (
    ALL_FAULT_KINDS,
    FAULT_KINDS,
    GRID_FAULT_KINDS,
    NODE_FAULT_KINDS,
    SERVER_FAULT_KINDS,
    WIRE_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)
from .recovery import RECOVERY_MODES, CellRetryPolicy, RecoveryPolicy

__all__ = [
    "FAULT_KINDS",
    "GRID_FAULT_KINDS",
    "NODE_FAULT_KINDS",
    "SERVER_FAULT_KINDS",
    "WIRE_FAULT_KINDS",
    "ALL_FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "RECOVERY_MODES",
    "RecoveryPolicy",
    "CellRetryPolicy",
]
