"""Deterministic fault injection and recovery for the measured backend.

``repro.faults`` makes failure a *scenario the system measures and
survives* instead of a crash: :class:`FaultPlan` schedules seeded,
reproducible faults (worker kills, stalls, late barrier arrivals, NaN
poisoning) into a :func:`repro.parallel.train_shm` run, and
:class:`RecoveryPolicy` bounds how the parent recovers — repartition
onto survivors or respawn, with exponential timeout backoff and a
shared retry budget.  Recovery actions surface as ``fault.*``
telemetry counters and a per-run recovery trajectory in the manifest
(see ``docs/BACKENDS.md`` and ``docs/OBSERVABILITY.md``).
"""

from .plan import FAULT_KINDS, FaultPlan, FaultSpec
from .recovery import RECOVERY_MODES, RecoveryPolicy

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "RECOVERY_MODES",
    "RecoveryPolicy",
]
