"""Deterministic fault plans for the measured shared-memory backend.

A :class:`FaultPlan` describes *what goes wrong and when* in a
``train_shm`` run: a worker killed at epoch k, a worker stalled past
the parent's watchdog window, a late barrier arrival, or a gradient
window poisoned with NaNs.  Plans are data, not behaviour — the
shared-memory workers interpret the resolved specs — and they are
seeded through :func:`repro.utils.rng.derive_rng`, so a chaos run is as
reproducible as a healthy one: the same ``(plan, seed, workers)``
triple always injects the same faults into the same workers.

The four fault kinds map to the failure modes a lock-free
data-partitioned SGD deployment actually sees:

``kill``
    The worker process exits abruptly mid-epoch (``os._exit``), halfway
    through its partition pass — partial updates are already committed,
    exactly like a real crash.
``stall``
    The worker stops responding for longer than the parent's epoch
    timeout (default: ``3 x epoch_timeout``), modelling a straggler
    wedged in an NFS read or a page-fault storm.
``delay``
    The worker arrives late (default 50 ms) at the epoch-end barrier
    but *within* the watchdog window — a healthy run must absorb this
    without any recovery action.
``nan``
    The worker scribbles NaNs over the coordinate window of its first
    work item — a poisoned gradient, the numeric failure HOGWILD!-style
    systems must contain.

One layer up, the *grid-level* kinds target whole experiment-grid jobs
instead of shm workers (see :mod:`repro.experiments.executor` and
docs/RESILIENCE.md).  For these, ``epoch`` is the 1-based *job index*
in the grid's submission order and ``worker`` bounds how many attempts
the fault fires on (``cell-kill@3:w1`` kills job 3's first attempt
only, so a retry heals it; with no ``wK`` the fault fires on every
attempt and the cell ends up quarantined):

``cell-kill``
    The worker process assigned the cell dies abruptly before
    training.
``cell-stall``
    The worker wedges (sleeps ``seconds``) before its heartbeat ever
    starts, so the grid watchdog must detect and kill it.
``cell-nan``
    The cell's result comes back with non-finite losses, exercising
    the executor's divergence sentinel and step-size backoff.

A third family targets the distributed parameter-server backend
(:mod:`repro.distributed`), where workers are separate processes
speaking the binary wire protocol instead of sharing a segment:

``node-kill``
    The worker process exits abruptly (``os._exit``) halfway through
    its epoch pass — committed pushes stay applied on the server,
    exactly like a real node crash; the server reaps the dead
    connection and the parent's recovery policy rebuilds the pool.
``node-stall``
    The worker wedges mid-epoch for longer than the parent's epoch
    timeout (default ``3 x epoch_timeout``), so the parent watchdog
    must declare the epoch dead and respawn.

Two further families complete the parameter-server failure model.
*Server-level* kinds target the shard server itself (no ``worker``
token — there is exactly one server; they require the server to run
in its own process with checkpointing configured, see
docs/RESILIENCE.md):

``server-kill``
    The server process SIGKILLs itself halfway through epoch
    ``epoch``'s pushes — the crash the checkpoint/failover machinery
    exists for.  The parent detects the dead control socket, respawns
    the server from the newest valid checkpoint on a fresh port, and
    the workers reconnect and replay.
``server-stall``
    Every server handler wedges for ``seconds`` (default ``3 x
    epoch_timeout``) starting mid-epoch, so the parent's liveness
    probe must time out and drive the same crash-restart failover —
    a wedged server and a dead server heal identically.

*Wire-level* kinds target one worker's connection (``worker``/``epoch``
semantics match the node kinds; resolved by
:meth:`FaultPlan.resolve_wire` and injected through the seeded
:class:`~repro.distributed.lossy.FaultyWire` socket wrapper):

``conn-drop``
    The worker's connection closes right before a frame leaves; the
    worker heals it alone — reconnect, rewind to the server's resume
    clock, replay the in-flight item (``ps.reconnects_midrun``), no
    recovery budget consumed.
``frame-delay``
    One frame is sent ``seconds`` late (default 50 ms) — latency the
    run must absorb with no recovery action.
``frame-corrupt``
    One seeded payload byte of a frame is flipped; the receiver's
    CRC32 rejects the frame (``ps.frames_rejected``) and drops the
    connection — the corrupted push is never applied, and the worker
    heals like a drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..utils.errors import ConfigurationError
from ..utils.rng import derive_rng

__all__ = [
    "FAULT_KINDS",
    "GRID_FAULT_KINDS",
    "NODE_FAULT_KINDS",
    "SERVER_FAULT_KINDS",
    "WIRE_FAULT_KINDS",
    "ALL_FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
]

#: The injectable shared-memory failure modes, in documentation order.
FAULT_KINDS: tuple[str, ...] = ("kill", "stall", "delay", "nan")

#: Grid-level failure modes interpreted by the experiment-grid executor
#: (``epoch`` = 1-based job submission index, ``worker`` = number of
#: attempts the fault fires on, ``None`` = every attempt).
GRID_FAULT_KINDS: tuple[str, ...] = ("cell-kill", "cell-stall", "cell-nan")

#: Failure modes of the distributed parameter-server backend, targeting
#: whole worker nodes (``epoch``/``worker`` semantics match the shm
#: kinds; resolved by :meth:`FaultPlan.resolve_nodes`).
NODE_FAULT_KINDS: tuple[str, ...] = ("node-kill", "node-stall")

#: Failure modes of the shard server itself (one server per run, so no
#: ``worker`` token; resolved by :meth:`FaultPlan.resolve_server` and
#: requiring the server-process + checkpointing failover machinery).
SERVER_FAULT_KINDS: tuple[str, ...] = ("server-kill", "server-stall")

#: Wire-level failure modes injected into one worker's connection by
#: the seeded :class:`~repro.distributed.lossy.FaultyWire` wrapper
#: (resolved by :meth:`FaultPlan.resolve_wire`).
WIRE_FAULT_KINDS: tuple[str, ...] = ("conn-drop", "frame-delay", "frame-corrupt")

#: Every kind a :class:`FaultSpec` accepts.
ALL_FAULT_KINDS: tuple[str, ...] = (
    FAULT_KINDS
    + GRID_FAULT_KINDS
    + NODE_FAULT_KINDS
    + SERVER_FAULT_KINDS
    + WIRE_FAULT_KINDS
)

#: Barrier-arrival delay (seconds) when a ``delay`` spec omits its own.
DEFAULT_DELAY_SECONDS = 0.05

#: A ``stall`` with no explicit duration sleeps this multiple of the
#: epoch timeout — guaranteed to outlive the parent's barrier wait.
STALL_TIMEOUT_FACTOR = 3.0


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    epoch:
        1-based optimisation epoch at which the fault fires.
    worker:
        Target worker id, or ``None`` to let the plan's seeded RNG pick
        one at resolution time.
    seconds:
        Stall/delay duration; ``None`` selects the kind's default
        (:data:`STALL_TIMEOUT_FACTOR` x timeout for stalls,
        :data:`DEFAULT_DELAY_SECONDS` for delays).  Ignored by
        ``kill`` and ``nan``.
    """

    kind: str
    epoch: int
    worker: int | None = None
    seconds: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; available: {ALL_FAULT_KINDS}"
            )
        if self.epoch < 1:
            raise ConfigurationError(f"fault epoch must be >= 1, got {self.epoch}")
        if self.worker is not None and self.worker < 0:
            raise ConfigurationError(f"fault worker must be >= 0, got {self.worker}")
        if self.seconds is not None and self.seconds <= 0:
            raise ConfigurationError(
                f"fault seconds must be positive, got {self.seconds}"
            )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI grammar ``kind@epoch[:wK][:seconds]``.

        Examples: ``kill@3`` (seeded worker choice), ``stall@2:w1``,
        ``delay@1:w0:0.25``, ``nan@4:1.5`` (a token starting with ``w``
        is a worker id; a bare number is a duration).
        """
        head, sep, rest = text.strip().partition("@")
        if not sep or not head:
            raise ConfigurationError(
                f"fault spec {text!r} must look like 'kind@epoch[:wK][:seconds]'"
            )
        fields = rest.split(":")
        try:
            epoch = int(fields[0])
        except ValueError:
            raise ConfigurationError(
                f"fault spec {text!r} has a non-integer epoch {fields[0]!r}"
            ) from None
        worker: int | None = None
        seconds: float | None = None
        for token in fields[1:]:
            token = token.strip()
            if not token:
                continue
            if token[0] in ("w", "W"):
                try:
                    worker = int(token[1:])
                except ValueError:
                    raise ConfigurationError(
                        f"fault spec {text!r} has a bad worker token {token!r}"
                    ) from None
            else:
                try:
                    seconds = float(token)
                except ValueError:
                    raise ConfigurationError(
                        f"fault spec {text!r} has a bad duration token {token!r}"
                    ) from None
        return cls(kind=head.lower(), epoch=epoch, worker=worker, seconds=seconds)

    def describe(self) -> dict[str, Any]:
        """Plain-dict form for manifests."""
        return {
            "kind": self.kind,
            "epoch": self.epoch,
            "worker": self.worker,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of faults to inject into one shm run.

    Attributes
    ----------
    specs:
        The planned faults.
    seed:
        Seed for the worker-choice stream of specs with
        ``worker=None``; ``None`` defers to the run's own seed, so a
        plan shared across configurations stays aligned with each run.
    """

    specs: tuple[FaultSpec, ...]
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def parse(cls, texts: Iterable[str], seed: int | None = None) -> "FaultPlan":
        """Build a plan from CLI spec strings (see :meth:`FaultSpec.parse`)."""
        return cls(specs=tuple(FaultSpec.parse(t) for t in texts), seed=seed)

    @classmethod
    def single(
        cls,
        kind: str,
        epoch: int,
        worker: int | None = None,
        seconds: float | None = None,
        seed: int | None = None,
    ) -> "FaultPlan":
        """Convenience: a plan with exactly one fault."""
        return cls(
            specs=(FaultSpec(kind=kind, epoch=epoch, worker=worker, seconds=seconds),),
            seed=seed,
        )

    def resolve(
        self, workers: int, *, run_seed: int, epoch_timeout: float
    ) -> dict[int, list[dict[str, Any]]]:
        """Pin every spec to a concrete worker and duration.

        Returns a mapping ``worker_id -> [{kind, epoch, seconds}, ...]``
        ready to ship to worker processes.  Worker choices for
        ``worker=None`` specs draw from ``derive_rng(seed, ...)`` in
        spec order, so resolution is a pure function of
        ``(plan, run_seed, workers)``.  Grid-level specs
        (:data:`GRID_FAULT_KINDS`) and node-level specs
        (:data:`NODE_FAULT_KINDS`) are ignored here — they belong to
        :meth:`resolve_grid` and :meth:`resolve_nodes`.
        """
        rng = derive_rng(
            self.seed if self.seed is not None else run_seed, f"faults/{workers}"
        )
        assigned: dict[int, list[dict[str, Any]]] = {}
        for spec in self.specs:
            if spec.kind not in FAULT_KINDS:
                continue
            worker = spec.worker if spec.worker is not None else int(
                rng.integers(workers)
            )
            if worker >= workers:
                raise ConfigurationError(
                    f"fault targets worker {worker} but the run has only "
                    f"{workers} worker(s)"
                )
            seconds = spec.seconds
            if seconds is None:
                seconds = (
                    epoch_timeout * STALL_TIMEOUT_FACTOR
                    if spec.kind == "stall"
                    else DEFAULT_DELAY_SECONDS
                )
            assigned.setdefault(worker, []).append(
                {"kind": spec.kind, "epoch": spec.epoch, "seconds": float(seconds)}
            )
        return assigned

    def resolve_nodes(
        self, nodes: int, *, run_seed: int, epoch_timeout: float
    ) -> dict[int, list[dict[str, Any]]]:
        """Pin node-level specs to concrete parameter-server workers.

        The mirror of :meth:`resolve` for the distributed backend:
        returns ``worker_id -> [{kind, epoch, seconds}, ...]`` with
        kinds drawn from :data:`NODE_FAULT_KINDS`.  Worker choices for
        ``worker=None`` specs use their own derivation stream
        (``faults/ps/<nodes>``), so a plan mixing shm and node kinds
        resolves each family independently and deterministically.
        A ``node-stall`` with no explicit duration sleeps
        :data:`STALL_TIMEOUT_FACTOR` x *epoch_timeout* — guaranteed to
        outlive the parent's epoch wait.
        """
        rng = derive_rng(
            self.seed if self.seed is not None else run_seed, f"faults/ps/{nodes}"
        )
        assigned: dict[int, list[dict[str, Any]]] = {}
        for spec in self.specs:
            if spec.kind not in NODE_FAULT_KINDS:
                continue
            worker = spec.worker if spec.worker is not None else int(
                rng.integers(nodes)
            )
            if worker >= nodes:
                raise ConfigurationError(
                    f"fault targets node {worker} but the run has only "
                    f"{nodes} node(s)"
                )
            seconds = spec.seconds
            if seconds is None:
                seconds = (
                    epoch_timeout * STALL_TIMEOUT_FACTOR
                    if spec.kind == "node-stall"
                    else 0.0
                )
            assigned.setdefault(worker, []).append(
                {"kind": spec.kind, "epoch": spec.epoch, "seconds": float(seconds)}
            )
        return assigned

    def resolve_wire(
        self, nodes: int, *, run_seed: int, epoch_timeout: float
    ) -> dict[int, list[dict[str, Any]]]:
        """Pin wire-level specs to concrete parameter-server workers.

        Same shape as :meth:`resolve_nodes` but for
        :data:`WIRE_FAULT_KINDS`, with its own derivation stream
        (``faults/wire/<nodes>``) so mixing node and wire kinds in one
        plan resolves each family independently.  A ``frame-delay``
        with no explicit duration uses :data:`DEFAULT_DELAY_SECONDS`;
        drops and corruptions are instantaneous.
        """
        rng = derive_rng(
            self.seed if self.seed is not None else run_seed,
            f"faults/wire/{nodes}",
        )
        assigned: dict[int, list[dict[str, Any]]] = {}
        for spec in self.specs:
            if spec.kind not in WIRE_FAULT_KINDS:
                continue
            worker = spec.worker if spec.worker is not None else int(
                rng.integers(nodes)
            )
            if worker >= nodes:
                raise ConfigurationError(
                    f"fault targets node {worker} but the run has only "
                    f"{nodes} node(s)"
                )
            seconds = spec.seconds
            if seconds is None:
                seconds = (
                    DEFAULT_DELAY_SECONDS if spec.kind == "frame-delay" else 0.0
                )
            assigned.setdefault(worker, []).append(
                {"kind": spec.kind, "epoch": spec.epoch, "seconds": float(seconds)}
            )
        return assigned

    def resolve_server(
        self, *, epoch_timeout: float
    ) -> list[dict[str, Any]]:
        """Pin server-level specs to concrete firing parameters.

        Returns ``[{kind, epoch, seconds}, ...]`` ready to ship to the
        shard-server process.  There is exactly one server, so no
        worker choice (and no RNG stream) is involved; a
        ``server-stall`` with no explicit duration wedges for
        :data:`STALL_TIMEOUT_FACTOR` x *epoch_timeout* — guaranteed to
        outlive the parent's liveness probe.
        """
        resolved: list[dict[str, Any]] = []
        for spec in self.specs:
            if spec.kind not in SERVER_FAULT_KINDS:
                continue
            seconds = spec.seconds
            if seconds is None:
                seconds = (
                    epoch_timeout * STALL_TIMEOUT_FACTOR
                    if spec.kind == "server-stall"
                    else 0.0
                )
            resolved.append(
                {"kind": spec.kind, "epoch": spec.epoch, "seconds": float(seconds)}
            )
        return resolved

    def resolve_grid(self, jobs: int) -> dict[int, dict[str, Any]]:
        """Pin grid-level specs to job indices for the grid executor.

        Returns a mapping ``job_index (1-based, submission order) ->
        {kind, seconds, attempts}`` where ``attempts`` is the number of
        attempts the fault fires on (``None`` = every attempt, so the
        cell exhausts its retry budget and is quarantined).  Specs with
        shm kinds, and specs targeting an index beyond *jobs*, are
        ignored — a plan can be shared across grids of different sizes.
        The first spec targeting an index wins.
        """
        assigned: dict[int, dict[str, Any]] = {}
        for spec in self.specs:
            if spec.kind not in GRID_FAULT_KINDS:
                continue
            if spec.epoch > jobs or spec.epoch in assigned:
                continue
            assigned[spec.epoch] = {
                "kind": spec.kind,
                "seconds": spec.seconds,
                "attempts": spec.worker,
            }
        return assigned

    def describe(self) -> list[dict[str, Any]]:
        """Plain-list form for manifests (one dict per spec)."""
        return [spec.describe() for spec in self.specs]
