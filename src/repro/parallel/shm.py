"""Shared-memory Hogwild/Hogbatch backend: measured, not simulated.

The asynchrony simulator (:mod:`repro.asyncsim`) answers the paper's
*statistical* questions deterministically; :func:`repro.parallel.hogwild_train`
demonstrates raw lock-free convergence.  This module is the production
backend between them: the model lives in one
:mod:`multiprocessing.shared_memory` buffer, N worker processes stream
vectorised mini-batch updates into it with **no locks**, and the run is
instrumented — per-epoch wall clock, measured stale reads and racy
coordinate conflicts — through the same telemetry keys the simulator
and the analytical hardware models emit, so measured numbers land next
to modelled ones in manifests and ``BENCH_<n>.json``.

Execution model
---------------
Examples are partitioned round-robin across workers (the paper's
data-partitioning strategy).  Epochs are barrier-aligned: the parent
releases all workers into an epoch, each worker makes one lock-free
pass over its shuffled partition (work items of ``batch_size`` rows:
1 = Hogwild, >1 = Hogbatch), and the parent times the epoch between
barriers, then evaluates the loss while the workers wait — loss
evaluation is excluded from iteration time, matching the paper's
protocol (Section IV-A).

Within an epoch nothing synchronises.  A worker's update is a single
``np.add.at`` scatter (sparse) or row-wise adds (dense) against the
shared vector; concurrent updates race exactly as OpenMP Hogwild races
on the paper's machine.  Two quantities of that race are *measured*:

* **stale reads** — examples whose gradient window overlapped another
  worker's committed update (detected from the other workers' update
  counters before/after the gradient computation);
* **update conflicts** — model coordinates whose value changed between
  the item's gradient read and its write (detected by re-reading the
  item's coordinate footprint just before the scatter).

Worker death mid-epoch is detected by a liveness watchdog that breaks
the epoch barrier; the parent then terminates the remaining workers,
releases the shared buffer and raises
:class:`~repro.utils.errors.WorkerError` — no leaked processes or
shared-memory segments.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..models.base import Matrix, Model
from ..sgd.config import SGDConfig
from ..sgd.convergence import LossCurve
from ..telemetry import keys
from ..telemetry.session import AnyTelemetry, ensure_telemetry
from ..utils.errors import ConfigurationError, WorkerError
from ..utils.rng import DEFAULT_SEED, derive_rng

__all__ = ["ShmSchedule", "ShmTrainResult", "train_shm", "default_shm_workers"]

# Per-worker counter slots in the shared counters block.
_SLOT_UPDATES = 0  # examples applied to the shared model
_SLOT_ITEMS = 1  # work items (scatter rounds) completed
_SLOT_STALE = 2  # examples computed against a raced snapshot
_SLOT_CONFLICTS = 3  # coordinates overwritten between read and write
_N_SLOTS = 4

_CTL_STOP = 0  # parent -> workers: exit at the next epoch barrier
_N_CTL = 1


def default_shm_workers() -> int:
    """Worker count used when the caller does not pick one."""
    return min(4, os.cpu_count() or 1)


@dataclass(frozen=True)
class ShmSchedule:
    """Execution shape of one shared-memory run.

    Attributes
    ----------
    workers:
        Worker processes sharing the model buffer (clamped to the
        example count).
    batch_size:
        Rows per lock-free work item: 1 = Hogwild, >1 = Hogbatch.
    track_conflicts:
        Measure racy coordinate overwrites (one extra gather + compare
        per item).  Disable for the leanest possible hot loop.
    epoch_timeout:
        Seconds the parent waits for an epoch barrier before declaring
        the run dead.
    """

    workers: int
    batch_size: int = 1
    track_conflicts: bool = True
    epoch_timeout: float = 120.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.epoch_timeout <= 0:
            raise ConfigurationError(
                f"epoch_timeout must be positive, got {self.epoch_timeout}"
            )


@dataclass
class ShmTrainResult:
    """Outcome of a measured shared-memory run."""

    curve: LossCurve
    params: np.ndarray
    workers: int
    batch_size: int
    epochs_run: int
    diverged: bool
    #: Measured seconds per optimisation epoch (loss evals excluded).
    wall_seconds_per_epoch: float
    #: Measured optimisation seconds across all epochs.
    wall_seconds_total: float
    #: Aggregated event totals, keyed by the telemetry vocabulary.
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def updates_applied(self) -> float:
        """Examples applied to the shared model across all workers."""
        return self.counters.get(keys.UPDATES_APPLIED, 0.0)


def _worker_loop(
    shm_name: str,
    counters_name: str,
    model: Model,
    X: Matrix,
    y: np.ndarray,
    part: np.ndarray,
    n_params: int,
    n_workers: int,
    worker_id: int,
    step: float,
    max_epochs: int,
    batch_size: int,
    track_conflicts: bool,
    seed: int,
    start_barrier,
    end_barrier,
    timeout: float,
) -> None:
    """One worker: barrier-aligned epochs of lock-free partition passes."""
    shm = shared_memory.SharedMemory(name=shm_name)
    cshm = shared_memory.SharedMemory(name=counters_name)
    try:
        w = np.ndarray((n_params,), dtype=np.float64, buffer=shm.buf)
        blk = np.ndarray(
            (n_workers, _N_SLOTS), dtype=np.int64, buffer=cshm.buf, offset=_N_CTL * 8
        )
        ctl = np.ndarray((_N_CTL,), dtype=np.int64, buffer=cshm.buf)
        mine = blk[worker_id]
        others = [blk[k] for k in range(n_workers) if k != worker_id]
        rng = derive_rng(seed, f"shm/{n_workers}/{worker_id}")
        sparse = hasattr(X, "gather_rows_arrays")
        Xd = None if sparse else np.asarray(X, dtype=np.float64)

        for _ in range(max_epochs):
            start_barrier.wait(timeout)
            if ctl[_CTL_STOP]:
                break
            order = part[rng.permutation(part.shape[0])]
            for lo in range(0, order.shape[0], batch_size):
                rows = order[lo : lo + batch_size]
                before = sum(int(o[_SLOT_UPDATES]) for o in others)
                if sparse:
                    indptr, indices, data, _ = X.gather_rows_arrays(rows)
                    gathered = w[indices]  # lock-free model read
                    counts = np.diff(indptr)
                    margins = np.zeros(rows.shape[0], dtype=np.float64)
                    if indices.size:
                        prod = data * gathered
                        nonempty = counts > 0
                        margins[nonempty] = np.add.reduceat(
                            prod, indptr[:-1][nonempty]
                        )
                    coef = y[rows] * model._dmargin_fn(y[rows] * margins)
                    values = (-step * np.repeat(coef, counts)) * data
                    if track_conflicts and indices.size:
                        mine[_SLOT_CONFLICTS] += int(
                            np.count_nonzero(w[indices] != gathered)
                        )
                    np.add.at(w, indices, values)  # lock-free scatter
                else:
                    Xb = Xd[rows]
                    snapshot = w.copy() if track_conflicts else w
                    margins = Xb @ snapshot
                    coef = y[rows] * model._dmargin_fn(y[rows] * margins)
                    deltas = (-step * coef)[:, None] * Xb
                    if track_conflicts:
                        mine[_SLOT_CONFLICTS] += int(
                            np.count_nonzero(w != snapshot)
                        )
                    for delta in deltas:  # per-word-atomic adds, in order
                        w += delta
                after = sum(int(o[_SLOT_UPDATES]) for o in others)
                if after != before:
                    mine[_SLOT_STALE] += rows.shape[0]
                mine[_SLOT_UPDATES] += rows.shape[0]
                mine[_SLOT_ITEMS] += 1
            end_barrier.wait(timeout)
    finally:
        shm.close()
        cshm.close()


def _await_barrier(barrier, procs, timeout: float, phase: str) -> None:
    """Wait at *barrier* with a liveness watchdog over the workers.

    A worker that exits before reaching the barrier would otherwise
    stall the parent for the full timeout; the watchdog notices within
    ~100 ms and breaks the barrier, turning the stall into a prompt
    :class:`WorkerError`.
    """
    stop = threading.Event()

    def _watch() -> None:
        while not stop.wait(0.1):
            if any(p.exitcode is not None for p in procs):
                barrier.abort()
                return

    watchdog = threading.Thread(target=_watch, daemon=True)
    watchdog.start()
    try:
        barrier.wait(timeout)
    except threading.BrokenBarrierError:
        dead = [(p.name, p.exitcode) for p in procs if p.exitcode is not None]
        raise WorkerError(
            f"shared-memory worker(s) died at the {phase} barrier: "
            f"{dead or 'barrier timeout'}"
        ) from None
    finally:
        stop.set()
        watchdog.join()


def train_shm(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    init_params: np.ndarray,
    config: SGDConfig,
    schedule: ShmSchedule,
    telemetry: AnyTelemetry | None = None,
) -> ShmTrainResult:
    """Train on the host's cores through the shared-memory backend.

    The recorded loss curve is *measured* statistical efficiency (one
    loss evaluation per epoch, on a snapshot of the racing model) and
    the wall-clock gauges are measured hardware efficiency, making this
    the native analogue of the paper's per-epoch measurement loop.

    Raises
    ------
    ConfigurationError
        For models without the vectorised link-derivative machinery
        (the MLP's Hogbatch runs through the simulator).
    WorkerError
        When a worker dies or stops responding mid-run; workers and
        shared buffers are torn down before raising.
    """
    if not hasattr(model, "_dmargin_fn"):
        raise ConfigurationError(
            f"{type(model).__name__} is not supported by the shared-memory "
            "backend; it drives the margin-based linear models (lr/svm)"
        )
    if getattr(model, "l2", 0.0):
        raise ConfigurationError(
            "the shared-memory backend implements the paper's unregularised "
            "objectives (l2=0)"
        )
    tel = ensure_telemetry(telemetry)
    n = X.shape[0]
    workers = min(schedule.workers, n)
    seed = config.seed if config.seed is not None else DEFAULT_SEED

    init_params = np.asarray(init_params, dtype=np.float64)
    with np.errstate(over="ignore"):
        initial = float(model.loss(X, y, init_params))
    tel.count(keys.LOSS_EVALS)
    curve = LossCurve()
    curve.record(0, initial)
    limit = config.divergence_factor * max(initial, 1e-12)

    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    start_barrier = ctx.Barrier(workers + 1)
    end_barrier = ctx.Barrier(workers + 1)
    shm = shared_memory.SharedMemory(create=True, size=init_params.nbytes)
    cshm = shared_memory.SharedMemory(
        create=True, size=(_N_CTL + workers * _N_SLOTS) * 8
    )
    procs: list = []
    diverged = False
    epochs_run = 0
    epoch_walls: list[float] = []
    try:
        shared = np.ndarray(init_params.shape, dtype=np.float64, buffer=shm.buf)
        shared[:] = init_params
        ctl = np.ndarray((_N_CTL,), dtype=np.int64, buffer=cshm.buf)
        ctl[:] = 0
        counters = np.ndarray(
            (workers, _N_SLOTS), dtype=np.int64, buffer=cshm.buf, offset=_N_CTL * 8
        )
        counters[:] = 0

        partitions = [np.arange(k, n, workers, dtype=np.int64) for k in range(workers)]
        procs = [
            ctx.Process(
                target=_worker_loop,
                name=f"shm-worker-{k}",
                args=(
                    shm.name,
                    cshm.name,
                    model,
                    X,
                    y,
                    partitions[k],
                    init_params.shape[0],
                    workers,
                    k,
                    config.step_size,
                    config.max_epochs,
                    schedule.batch_size,
                    schedule.track_conflicts,
                    seed,
                    start_barrier,
                    end_barrier,
                    schedule.epoch_timeout,
                ),
            )
            for k in range(workers)
        ]
        for p in procs:
            p.start()

        with tel.span(
            "shm.optimize",
            workers=workers,
            batch_size=schedule.batch_size,
            step_size=config.step_size,
        ) as opt_span:
            for epoch in range(1, config.max_epochs + 1):
                t0 = time.perf_counter()
                _await_barrier(
                    start_barrier, procs, schedule.epoch_timeout, "epoch-start"
                )
                _await_barrier(
                    end_barrier, procs, schedule.epoch_timeout, "epoch-end"
                )
                epoch_walls.append(time.perf_counter() - t0)
                epochs_run = epoch
                tel.count(keys.EPOCHS)
                # Workers idle at the next start barrier while the loss
                # is evaluated on a snapshot — excluded from epoch time.
                params_now = shared.copy()
                stop = epoch == config.max_epochs
                if not np.all(np.isfinite(params_now)):
                    curve.record(epoch, float("inf"))
                    diverged = True
                    stop = True
                else:
                    with np.errstate(over="ignore"):
                        loss = float(model.loss(X, y, params_now))
                    tel.count(keys.LOSS_EVALS)
                    if not np.isfinite(loss) or loss > limit:
                        curve.record(epoch, float("inf"))
                        diverged = True
                        stop = True
                    else:
                        curve.record(epoch, loss)
                        if (
                            config.target_loss is not None
                            and loss <= config.target_loss
                        ):
                            stop = True
                if stop:
                    if epoch < config.max_epochs:
                        ctl[_CTL_STOP] = 1
                        _await_barrier(
                            start_barrier, procs, schedule.epoch_timeout, "shutdown"
                        )
                    break
            opt_span.set_attribute("diverged", diverged)

        deadline = time.perf_counter() + schedule.epoch_timeout
        for p in procs:
            p.join(max(0.1, deadline - time.perf_counter()))
        hung = [p for p in procs if p.is_alive()]
        if hung:  # pragma: no cover - defensive
            raise WorkerError(f"{len(hung)} shared-memory worker(s) failed to exit")
        params = shared.copy()
        totals = counters.sum(axis=0)
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join()
        shm.close()
        shm.unlink()
        cshm.close()
        cshm.unlink()

    wall_total = float(sum(epoch_walls))
    wall_per_epoch = wall_total / max(1, len(epoch_walls))
    counter_totals = {
        keys.UPDATES_APPLIED: float(totals[_SLOT_UPDATES]),
        keys.GRAD_EVALS: float(totals[_SLOT_UPDATES]),
        keys.ASYNC_ROUNDS: float(totals[_SLOT_ITEMS]),
        keys.STALE_READS: float(totals[_SLOT_STALE]),
        keys.UPDATE_CONFLICTS: float(totals[_SLOT_CONFLICTS]),
    }
    for key, value in counter_totals.items():
        tel.count(key, value)
    tel.set_gauge(keys.WALL_SECONDS_PER_EPOCH, wall_per_epoch)
    tel.set_gauge(keys.WALL_SECONDS_TOTAL, wall_total)

    return ShmTrainResult(
        curve=curve,
        params=params,
        workers=workers,
        batch_size=schedule.batch_size,
        epochs_run=epochs_run,
        diverged=diverged,
        wall_seconds_per_epoch=wall_per_epoch,
        wall_seconds_total=wall_total,
        counters=counter_totals,
    )
