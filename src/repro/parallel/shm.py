"""Shared-memory Hogwild/Hogbatch backend: measured, not simulated.

The asynchrony simulator (:mod:`repro.asyncsim`) answers the paper's
*statistical* questions deterministically; :func:`repro.parallel.hogwild_train`
demonstrates raw lock-free convergence.  This module is the production
backend between them: the model lives in one
:mod:`multiprocessing.shared_memory` buffer, N worker processes stream
vectorised mini-batch updates into it with **no locks**, and the run is
instrumented — per-epoch wall clock, measured stale reads and racy
coordinate conflicts — through the same telemetry keys the simulator
and the analytical hardware models emit, so measured numbers land next
to modelled ones in manifests and ``BENCH_<n>.json``.

Execution model
---------------
Examples are partitioned round-robin across workers (the paper's
data-partitioning strategy).  Epochs are barrier-aligned: the parent
releases all workers into an epoch, each worker makes one lock-free
pass over its shuffled partition (work items of ``batch_size`` rows:
1 = Hogwild, >1 = Hogbatch), and the parent times the epoch between
barriers, then evaluates the loss while the workers wait — loss
evaluation is excluded from iteration time, matching the paper's
protocol (Section IV-A).

Workers wait at the barriers *untimed*: liveness is the parent's job
(its waits carry ``epoch_timeout`` plus a ~100 ms liveness watchdog),
so a slow parent-side loss evaluation can never break the barrier
inside a healthy worker.

Within an epoch nothing synchronises.  A worker's update is a single
``np.add.at`` scatter (sparse) or row-wise adds (dense) against the
shared vector; concurrent updates race exactly as OpenMP Hogwild races
on the paper's machine.  Two quantities of that race are *measured*:

* **stale reads** — examples whose gradient window overlapped another
  worker's committed update (detected from the other workers' update
  counters before/after the gradient computation);
* **update conflicts** — model coordinates whose value changed between
  the item's gradient read and its write (detected by re-reading the
  item's coordinate footprint just before the scatter).

Faults and recovery
-------------------
A :class:`repro.faults.FaultPlan` injects seeded, reproducible faults
(worker kills, stalls past the watchdog window, late barrier arrivals,
NaN-poisoned gradient windows) into the workers, and a
:class:`repro.faults.RecoveryPolicy` bounds how the parent survives
them: dead workers are recovered by re-partitioning their examples
over the survivors (or respawning the pool), barrier timeouts by a
full respawn with exponential backoff on the epoch timeout, and
non-finite model snapshots by scrubbing the poisoned coordinates from
the last finite snapshot.  Every action consumes the policy's shared
retry budget and is recorded — ``fault.*`` telemetry counters plus a
per-run recovery trajectory on the result.  Without a policy (the
default) behaviour is unchanged: the parent terminates the remaining
workers, releases the shared buffers and raises
:class:`~repro.utils.errors.WorkerError` — no leaked processes or
shared-memory segments on any path.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from ..faults import FaultPlan, RecoveryPolicy
from ..models.base import Matrix, Model
from ..sgd.config import SGDConfig
from ..sgd.convergence import LossCurve
from ..telemetry import keys
from ..telemetry.session import AnyTelemetry, ensure_telemetry
from ..utils.errors import ConfigurationError, WorkerError
from ..utils.rng import DEFAULT_SEED, derive_rng

__all__ = ["ShmSchedule", "ShmTrainResult", "train_shm", "default_shm_workers"]

# Per-worker counter slots in the shared counters block.
_SLOT_UPDATES = 0  # examples applied to the shared model
_SLOT_ITEMS = 1  # work items (scatter rounds) completed
_SLOT_STALE = 2  # examples computed against a raced snapshot
_SLOT_CONFLICTS = 3  # coordinates overwritten between read and write
_SLOT_FAULTS = 4  # planned faults actually injected by this worker
_N_SLOTS = 5

_CTL_STOP = 0  # parent -> workers: exit at the next epoch barrier
_N_CTL = 1

#: Exit code of a worker killed by an injected ``kill`` fault.
_FAULT_EXITCODE = 23


def default_shm_workers() -> int:
    """Worker count used when the caller does not pick one."""
    return min(4, os.cpu_count() or 1)


@dataclass(frozen=True)
class ShmSchedule:
    """Execution shape of one shared-memory run.

    Attributes
    ----------
    workers:
        Worker processes sharing the model buffer (clamped to the
        example count).
    batch_size:
        Rows per lock-free work item: 1 = Hogwild, >1 = Hogbatch.
    track_conflicts:
        Measure racy coordinate overwrites (one extra gather + compare
        per item).  Disable for the leanest possible hot loop.
    epoch_timeout:
        Seconds the parent waits for an epoch barrier before declaring
        the run dead.  Workers themselves wait untimed — only the
        parent enforces liveness.
    """

    workers: int
    batch_size: int = 1
    track_conflicts: bool = True
    epoch_timeout: float = 120.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.epoch_timeout <= 0:
            raise ConfigurationError(
                f"epoch_timeout must be positive, got {self.epoch_timeout}"
            )


@dataclass
class ShmTrainResult:
    """Outcome of a measured shared-memory run."""

    curve: LossCurve
    params: np.ndarray
    workers: int
    batch_size: int
    epochs_run: int
    diverged: bool
    #: Measured seconds per optimisation epoch (loss evals excluded).
    wall_seconds_per_epoch: float
    #: Measured optimisation seconds across all epochs.
    wall_seconds_total: float
    #: Aggregated event totals, keyed by the telemetry vocabulary.
    counters: dict[str, float] = field(default_factory=dict)
    #: Workers still in the pool at the end (== ``workers`` unless a
    #: repartition recovery shrank it).
    workers_final: int = 0
    #: Full-pool respawn recoveries performed.
    restarts: int = 0
    #: Repartition recoveries performed (pool shrank by one each time).
    repartitions: int = 0
    #: Epochs executed degraded: fewer workers than requested, or on a
    #: NaN-scrubbed snapshot.
    degraded_epochs: int = 0
    #: Chronological recovery trajectory — one dict per recovery action
    #: (respawn / repartition / nan_scrub / ...), recorded into run
    #: manifests.
    recovery: list[dict] = field(default_factory=list)

    @property
    def updates_applied(self) -> float:
        """Examples applied to the shared model across all workers."""
        return self.counters.get(keys.UPDATES_APPLIED, 0.0)

    @property
    def faults_injected(self) -> float:
        """Planned faults the workers actually injected."""
        return self.counters.get(keys.FAULT_INJECTED, 0.0)


def _worker_loop(
    shm_name: str,
    counters_name: str,
    model: Model,
    X: Matrix,
    y: np.ndarray,
    part: np.ndarray,
    n_params: int,
    n_workers: int,
    worker_id: int,
    step: float,
    max_epochs: int,
    batch_size: int,
    track_conflicts: bool,
    seed: int,
    start_barrier,
    end_barrier,
    timeout: float,
    faults: tuple = (),
    epoch_offset: int = 0,
) -> None:
    """One worker: barrier-aligned epochs of lock-free partition passes.

    Barrier waits are untimed — the parent owns liveness.  A broken
    barrier means the parent is tearing the pool down (another worker
    died, or the run timed out); the worker exits quietly.  *faults*
    is this worker's resolved slice of the run's fault plan; *timeout*
    is kept only as the parent's watchdog window (stall durations are
    resolved against it).
    """
    shm = shared_memory.SharedMemory(name=shm_name)
    cshm = shared_memory.SharedMemory(name=counters_name)
    try:
        w = np.ndarray((n_params,), dtype=np.float64, buffer=shm.buf)
        blk = np.ndarray(
            (n_workers, _N_SLOTS), dtype=np.int64, buffer=cshm.buf, offset=_N_CTL * 8
        )
        ctl = np.ndarray((_N_CTL,), dtype=np.int64, buffer=cshm.buf)
        mine = blk[worker_id]
        others = [blk[k] for k in range(n_workers) if k != worker_id]
        rng = derive_rng(seed, f"shm/{n_workers}/{worker_id}")
        sparse = hasattr(X, "gather_rows_arrays")
        Xd = None if sparse else np.asarray(X, dtype=np.float64)

        for local_epoch in range(max_epochs):
            try:
                start_barrier.wait()
            except threading.BrokenBarrierError:
                return
            if ctl[_CTL_STOP]:
                break
            kill_item = None
            sleep_seconds = 0.0
            poison_nans = False
            if faults:
                epoch = epoch_offset + local_epoch + 1
                for spec in faults:
                    if spec["epoch"] != epoch:
                        continue
                    if spec["kind"] == "kill":
                        # Die halfway through the pass: partial updates
                        # are already committed, like a real crash.
                        kill_item = -(-part.shape[0] // batch_size) // 2
                    elif spec["kind"] in ("stall", "delay"):
                        sleep_seconds += spec["seconds"]
                        mine[_SLOT_FAULTS] += 1
                    else:  # nan
                        poison_nans = True
            order = part[rng.permutation(part.shape[0])]
            for item, lo in enumerate(range(0, order.shape[0], batch_size)):
                if item == kill_item:
                    mine[_SLOT_FAULTS] += 1
                    os._exit(_FAULT_EXITCODE)
                rows = order[lo : lo + batch_size]
                before = sum(int(o[_SLOT_UPDATES]) for o in others)
                if sparse:
                    indptr, indices, data, _ = X.gather_rows_arrays(rows)
                    gathered = w[indices]  # lock-free model read
                    counts = np.diff(indptr)
                    margins = np.zeros(rows.shape[0], dtype=np.float64)
                    if indices.size:
                        prod = data * gathered
                        nonempty = counts > 0
                        margins[nonempty] = np.add.reduceat(
                            prod, indptr[:-1][nonempty]
                        )
                    coef = y[rows] * model._dmargin_fn(y[rows] * margins)
                    values = (-step * np.repeat(coef, counts)) * data
                    if track_conflicts and indices.size:
                        mine[_SLOT_CONFLICTS] += int(
                            np.count_nonzero(w[indices] != gathered)
                        )
                    np.add.at(w, indices, values)  # lock-free scatter
                    if poison_nans and item == 0:
                        mine[_SLOT_FAULTS] += 1
                        w[indices] = np.nan  # poisoned gradient window
                else:
                    Xb = Xd[rows]
                    snapshot = w.copy() if track_conflicts else w
                    margins = Xb @ snapshot
                    coef = y[rows] * model._dmargin_fn(y[rows] * margins)
                    deltas = (-step * coef)[:, None] * Xb
                    if track_conflicts:
                        mine[_SLOT_CONFLICTS] += int(
                            np.count_nonzero(w != snapshot)
                        )
                    for delta in deltas:  # per-word-atomic adds, in order
                        w += delta
                    if poison_nans and item == 0:
                        mine[_SLOT_FAULTS] += 1
                        w[:] = np.nan  # dense window = the whole model
                after = sum(int(o[_SLOT_UPDATES]) for o in others)
                if after != before:
                    mine[_SLOT_STALE] += rows.shape[0]
                mine[_SLOT_UPDATES] += rows.shape[0]
                mine[_SLOT_ITEMS] += 1
            if sleep_seconds:
                time.sleep(sleep_seconds)
            try:
                end_barrier.wait()
            except threading.BrokenBarrierError:
                return
    finally:
        shm.close()
        cshm.close()


def _await_barrier(
    barrier, procs, timeout: float, phase: str, epoch: int | None = None
) -> None:
    """Wait at *barrier* with a liveness watchdog over the workers.

    A worker that exits before reaching the barrier would otherwise
    stall the parent for the full timeout; the watchdog notices within
    ~100 ms and breaks the barrier, turning the stall into a prompt
    :class:`WorkerError`.  The raised error is structured: it carries
    the first dead worker's id and exit code (or ``worker_id=None``
    for a pure timeout — a stalled worker leaves no corpse), the epoch
    and the phase, which is what the recovery policy dispatches on.
    """
    stop = threading.Event()
    # Deaths the watchdog saw *before* aborting the barrier.  Blame is
    # taken from here, not re-read after the break: aborting releases
    # the healthy workers too, and they exit 0 — re-reading exit codes
    # would pin a stall timeout on an innocent survivor.
    observed: list[tuple[int, int]] = []

    def _watch() -> None:
        while not stop.wait(0.1):
            dead = [
                (k, p.exitcode) for k, p in enumerate(procs) if p.exitcode is not None
            ]
            if dead:
                observed.extend(dead)
                barrier.abort()
                return

    watchdog = threading.Thread(target=_watch, daemon=True)
    watchdog.start()
    try:
        barrier.wait(timeout)
    except threading.BrokenBarrierError:
        dead = list(observed)
        if dead:
            detail = ", ".join(f"worker {k} exitcode {c}" for k, c in dead)
            raise WorkerError(
                f"shared-memory worker(s) died at the {phase} barrier: {detail}",
                worker_id=dead[0][0],
                epoch=epoch,
                phase=phase,
                exitcode=dead[0][1],
            ) from None
        raise WorkerError(
            f"shared-memory run timed out after {timeout:.1f}s at the "
            f"{phase} barrier",
            epoch=epoch,
            phase=phase,
        ) from None
    finally:
        stop.set()
        watchdog.join()


def _teardown_pool(procs, barriers, grace: float = 2.0) -> None:
    """Abort the pool's barriers and reap every worker process.

    Healthy workers blocked at a barrier see the abort as a broken
    barrier and exit on their own; anything still alive after *grace*
    seconds (stalled, or mid-pass on a large partition) is terminated.
    On return every process is joined.
    """
    for b in barriers:
        try:
            b.abort()
        except (ValueError, OSError):  # pragma: no cover - defensive
            pass
    deadline = time.perf_counter() + grace
    for p in procs:
        p.join(max(0.05, deadline - time.perf_counter()))
    for p in procs:
        if p.is_alive():
            p.terminate()
            p.join()


def train_shm(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    init_params: np.ndarray,
    config: SGDConfig,
    schedule: ShmSchedule,
    telemetry: AnyTelemetry | None = None,
    fault_plan: FaultPlan | None = None,
    recovery: RecoveryPolicy | None = None,
    snapshot: Any | None = None,
) -> ShmTrainResult:
    """Train on the host's cores through the shared-memory backend.

    The recorded loss curve is *measured* statistical efficiency (one
    loss evaluation per epoch, on a snapshot of the racing model) and
    the wall-clock gauges are measured hardware efficiency, making this
    the native analogue of the paper's per-epoch measurement loop.

    Parameters
    ----------
    fault_plan:
        Seeded faults to inject into the workers (chaos testing); see
        :class:`repro.faults.FaultPlan`.  ``None`` injects nothing.
    recovery:
        Bounded recovery from worker failures; see
        :class:`repro.faults.RecoveryPolicy`.  ``None`` (the default)
        keeps the fail-fast behaviour: the first failure raises.
    snapshot:
        A :class:`repro.serving.SnapshotPublisher` (duck-typed: only
        ``publish(params, epoch=, loss=)`` is called) that receives a
        consistent copy of the model at every epoch boundary — the
        initial model as version 1, then one version per finite epoch.
        Publishes happen while the workers idle at a barrier, so the
        copied vector is race-free; the publisher's seqlock makes the
        hand-off to concurrent readers consistent.  ``None`` (the
        default) publishes nothing.

    Raises
    ------
    ConfigurationError
        For models without the vectorised link-derivative machinery
        (the MLP's Hogbatch runs through the simulator).
    WorkerError
        When a worker dies or stops responding and no recovery policy
        is set — or the policy's retry budget is exhausted; workers
        and shared buffers are torn down before raising.
    """
    if not hasattr(model, "_dmargin_fn"):
        raise ConfigurationError(
            f"{type(model).__name__} is not supported by the shared-memory "
            "backend; it drives the margin-based linear models (lr/svm)"
        )
    if getattr(model, "l2", 0.0):
        raise ConfigurationError(
            "the shared-memory backend implements the paper's unregularised "
            "objectives (l2=0)"
        )
    tel = ensure_telemetry(telemetry)
    n = X.shape[0]
    requested_workers = min(schedule.workers, n)
    seed = config.seed if config.seed is not None else DEFAULT_SEED
    budget = recovery.max_restarts if recovery is not None else 0
    assignments: dict[int, list[dict[str, Any]]] = (
        fault_plan.resolve(
            requested_workers, run_seed=seed, epoch_timeout=schedule.epoch_timeout
        )
        if fault_plan
        else {}
    )

    init_params = np.asarray(init_params, dtype=np.float64)
    with np.errstate(over="ignore"):
        initial = float(model.loss(X, y, init_params))
    tel.count(keys.LOSS_EVALS)
    curve = LossCurve()
    curve.record(0, initial)
    limit = config.divergence_factor * max(initial, 1e-12)

    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    shm = shared_memory.SharedMemory(create=True, size=init_params.nbytes)
    cshm = shared_memory.SharedMemory(
        create=True, size=(_N_CTL + requested_workers * _N_SLOTS) * 8
    )
    procs: list = []
    start_barrier = end_barrier = None
    diverged = False
    epochs_run = 0
    epoch_walls: list[float] = []
    active_workers = requested_workers
    timeout = schedule.epoch_timeout
    recoveries_used = 0
    restarts = 0
    repartitions = 0
    degraded_epochs = 0
    recovery_log: list[dict] = []

    def _spawn(next_epoch: int) -> None:
        """(Re)build the worker pool to run epochs ``next_epoch..max``."""
        nonlocal procs, start_barrier, end_barrier
        partitions = [
            np.arange(k, n, active_workers, dtype=np.int64)
            for k in range(active_workers)
        ]
        start_barrier = ctx.Barrier(active_workers + 1)
        end_barrier = ctx.Barrier(active_workers + 1)
        procs = [
            ctx.Process(
                target=_worker_loop,
                name=f"shm-worker-{k}",
                args=(
                    shm.name,
                    cshm.name,
                    model,
                    X,
                    y,
                    partitions[k],
                    init_params.shape[0],
                    active_workers,
                    k,
                    config.step_size,
                    config.max_epochs - (next_epoch - 1),
                    schedule.batch_size,
                    schedule.track_conflicts,
                    seed,
                    start_barrier,
                    end_barrier,
                    timeout,
                    tuple(assignments.get(k, ())),
                    next_epoch - 1,
                ),
            )
            for k in range(active_workers)
        ]
        for p in procs:
            p.start()

    try:
        shared = np.ndarray(init_params.shape, dtype=np.float64, buffer=shm.buf)
        shared[:] = init_params
        ctl = np.ndarray((_N_CTL,), dtype=np.int64, buffer=cshm.buf)
        ctl[:] = 0
        counters = np.ndarray(
            (requested_workers, _N_SLOTS),
            dtype=np.int64,
            buffer=cshm.buf,
            offset=_N_CTL * 8,
        )
        counters[:] = 0
        last_good = init_params.copy()
        if snapshot is not None:
            # Version 1: the initial model.  A scoring service attached
            # before the first epoch completes serves this instead of a
            # cold-start error.
            snapshot.publish(init_params, epoch=0, loss=initial)
        _spawn(1)

        with tel.span(
            "shm.optimize",
            workers=requested_workers,
            batch_size=schedule.batch_size,
            step_size=config.step_size,
        ) as opt_span:
            epoch = 1
            while epoch <= config.max_epochs:
                t0 = time.perf_counter()
                try:
                    _await_barrier(start_barrier, procs, timeout, "epoch-start", epoch)
                    _await_barrier(end_barrier, procs, timeout, "epoch-end", epoch)
                except WorkerError as err:
                    _teardown_pool(procs, (start_barrier, end_barrier))
                    if recovery is None or recoveries_used >= budget:
                        raise
                    recoveries_used += 1
                    timeout *= recovery.backoff
                    if (
                        err.worker_id is not None
                        and recovery.mode == "repartition"
                        and active_workers > 1
                    ):
                        # The dead worker's examples round-robin onto
                        # the survivors; capacity degrades, coverage
                        # does not.
                        active_workers -= 1
                        repartitions += 1
                        action = "repartition"
                    else:
                        restarts += 1
                        action = "respawn"
                    # Faults at or before the interrupted epoch had
                    # their chance; they must not re-fire on the
                    # rebuilt pool re-running this epoch.
                    assignments = {
                        k: [s for s in v if s["epoch"] > epoch]
                        for k, v in assignments.items()
                    }
                    recovery_log.append(
                        {
                            "action": action,
                            "epoch": epoch,
                            "workers": active_workers,
                            "epoch_timeout": timeout,
                            "cause": err.describe(),
                        }
                    )
                    _spawn(epoch)
                    continue
                epoch_walls.append(time.perf_counter() - t0)
                epochs_run = epoch
                tel.count(keys.EPOCHS)
                # Workers idle at the next start barrier while the loss
                # is evaluated on a snapshot — excluded from epoch time.
                degraded = active_workers < requested_workers
                params_now = shared.copy()
                stop = epoch == config.max_epochs
                finite = bool(np.all(np.isfinite(params_now)))
                if (
                    not finite
                    and recovery is not None
                    and recovery.scrub_nans
                    and recoveries_used < budget
                ):
                    # Poisoned coordinates are restored from the last
                    # finite snapshot; the workers are idle at the next
                    # start barrier, so the write-back cannot race.
                    recoveries_used += 1
                    bad = ~np.isfinite(params_now)
                    params_now[bad] = last_good[bad]
                    shared[:] = params_now
                    degraded = True
                    finite = True
                    recovery_log.append(
                        {
                            "action": "nan_scrub",
                            "epoch": epoch,
                            "coordinates": int(bad.sum()),
                        }
                    )
                if not finite:
                    curve.record(epoch, float("inf"))
                    diverged = True
                    stop = True
                else:
                    with np.errstate(over="ignore"):
                        loss = float(model.loss(X, y, params_now))
                    tel.count(keys.LOSS_EVALS)
                    if not np.isfinite(loss) or loss > limit:
                        curve.record(epoch, float("inf"))
                        diverged = True
                        stop = True
                    else:
                        curve.record(epoch, loss)
                        last_good = params_now
                        if snapshot is not None:
                            # The workers are idle at the next start
                            # barrier: params_now is a race-free copy.
                            snapshot.publish(params_now, epoch=epoch, loss=loss)
                        if (
                            config.target_loss is not None
                            and loss <= config.target_loss
                        ):
                            stop = True
                if degraded:
                    degraded_epochs += 1
                if stop:
                    if epoch < config.max_epochs:
                        ctl[_CTL_STOP] = 1
                        try:
                            _await_barrier(
                                start_barrier, procs, timeout, "shutdown", epoch
                            )
                        except WorkerError as err:
                            if recovery is None:
                                raise
                            # The run already has its result; the
                            # teardown below reaps the stragglers.
                            recovery_log.append(
                                {
                                    "action": "shutdown_failure_ignored",
                                    "epoch": epoch,
                                    "cause": err.describe(),
                                }
                            )
                    break
                epoch += 1
            opt_span.set_attribute("diverged", diverged)
            opt_span.set_attribute("recoveries", recoveries_used)

        deadline = time.perf_counter() + timeout
        for p in procs:
            p.join(max(0.1, deadline - time.perf_counter()))
        hung = [(k, p) for k, p in enumerate(procs) if p.is_alive()]
        if hung:
            if recovery is None:  # pragma: no cover - defensive
                raise WorkerError(
                    f"{len(hung)} shared-memory worker(s) failed to exit",
                    phase="join",
                )
            for _, p in hung:
                p.terminate()
                p.join()
            recovery_log.append(
                {
                    "action": "stragglers_terminated",
                    "epoch": epochs_run,
                    "workers": [k for k, _ in hung],
                }
            )
        params = shared.copy()
        totals = counters.sum(axis=0)
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join()
        shm.close()
        shm.unlink()
        cshm.close()
        cshm.unlink()

    wall_total = float(sum(epoch_walls))
    wall_per_epoch = wall_total / max(1, len(epoch_walls))
    counter_totals = {
        keys.UPDATES_APPLIED: float(totals[_SLOT_UPDATES]),
        keys.GRAD_EVALS: float(totals[_SLOT_UPDATES]),
        keys.ASYNC_ROUNDS: float(totals[_SLOT_ITEMS]),
        keys.STALE_READS: float(totals[_SLOT_STALE]),
        keys.UPDATE_CONFLICTS: float(totals[_SLOT_CONFLICTS]),
        keys.FAULT_INJECTED: float(totals[_SLOT_FAULTS]),
        keys.FAULT_WORKER_RESTARTS: float(restarts),
        keys.FAULT_REPARTITIONS: float(repartitions),
        keys.FAULT_DEGRADED_EPOCHS: float(degraded_epochs),
    }
    for key, value in counter_totals.items():
        tel.count(key, value)
    tel.set_gauge(keys.WALL_SECONDS_PER_EPOCH, wall_per_epoch)
    tel.set_gauge(keys.WALL_SECONDS_TOTAL, wall_total)

    return ShmTrainResult(
        curve=curve,
        params=params,
        workers=requested_workers,
        batch_size=schedule.batch_size,
        epochs_run=epochs_run,
        diverged=diverged,
        wall_seconds_per_epoch=wall_per_epoch,
        wall_seconds_total=wall_total,
        counters=counter_totals,
        workers_final=active_workers,
        restarts=restarts,
        repartitions=repartitions,
        degraded_epochs=degraded_epochs,
        recovery=recovery_log,
    )
