"""Real (non-simulated) parallel execution backends."""

from .hogwild import HogwildReport, hogwild_train
from .shm import ShmSchedule, ShmTrainResult, default_shm_workers, train_shm

__all__ = [
    "HogwildReport",
    "hogwild_train",
    "ShmSchedule",
    "ShmTrainResult",
    "default_shm_workers",
    "train_shm",
]
