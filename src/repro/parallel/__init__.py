"""Real (non-simulated) parallel execution backends."""

from .hogwild import HogwildReport, hogwild_train

__all__ = ["HogwildReport", "hogwild_train"]
