"""Real lock-free Hogwild over OS processes and shared memory.

Everything else in this library *simulates* asynchrony deterministically
(the round/pipeline schedules of :mod:`repro.asyncsim`).  This module is
the genuine article: worker processes share one model vector through
:mod:`multiprocessing.shared_memory` and update it with **no locks, no
synchronisation** — the exact algorithm the paper runs with OpenMP
threads (Section III-B).  Processes are used instead of threads because
CPython's GIL would serialise the per-example update loop.

On a many-core host this exhibits the true Hogwild behaviour (races,
stale reads, near-linear scaling on sparse data).  On the single-core
machines this reproduction targets it still executes correct lock-free
semantics via preemptive interleaving — which is what the functional
tests verify.  Results are inherently non-deterministic; the simulator
remains the tool for controlled statistical-efficiency measurements.

The paper's word-atomicity assumption holds here too: CPython writes
8-byte-aligned float64 slots, and NumPy scatter-adds read-modify-write
per element, so torn *values* do not occur — interleaved lost updates
(the Hogwild race) do, as intended.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..models.base import Matrix, Model
from ..utils.errors import ConfigurationError
from ..utils.rng import DEFAULT_SEED, derive_rng

__all__ = ["HogwildReport", "hogwild_train"]


@dataclass(frozen=True)
class HogwildReport:
    """Outcome of a real shared-memory Hogwild run."""

    params: np.ndarray
    wall_time: float
    workers: int
    epochs: int
    final_loss: float
    initial_loss: float

    @property
    def improved(self) -> bool:
        """Whether the lock-free run reduced the loss."""
        return (
            math.isfinite(self.final_loss) and self.final_loss < self.initial_loss
        )


def _worker(
    shm_name: str,
    n_params: int,
    model: Model,
    X: Matrix,
    y: np.ndarray,
    rows: np.ndarray,
    step: float,
    epochs: int,
    seed: int,
    worker_id: int,
) -> None:
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        w = np.ndarray((n_params,), dtype=np.float64, buffer=shm.buf)
        rng = derive_rng(seed, f"hogwild_proc/{worker_id}")
        for _ in range(epochs):
            order = rows[rng.permutation(rows.shape[0])]
            model.serial_sgd_epoch(X, y, order, w, step)
    finally:
        shm.close()


def hogwild_train(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    init_params: np.ndarray,
    step: float,
    epochs: int,
    workers: int | None = None,
    seed: int | None = None,
    timeout: float = 300.0,
) -> HogwildReport:
    """Train by genuine lock-free Hogwild across *workers* processes.

    Examples are partitioned round-robin across workers (the paper's
    data-partitioning strategy); each worker performs *epochs* passes
    over its partition, updating the shared model without any
    synchronisation.

    Parameters
    ----------
    model:
        A model providing ``serial_sgd_epoch`` (the linear models).
    timeout:
        Seconds to wait for workers before declaring failure.

    Raises
    ------
    ConfigurationError
        For invalid worker/epoch counts or a model without the serial
        fast path.
    """
    if not hasattr(model, "serial_sgd_epoch"):
        raise ConfigurationError(
            f"{type(model).__name__} has no serial_sgd_epoch; real Hogwild "
            "supports the incremental (B=1) linear models"
        )
    if epochs < 1:
        raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
    n = X.shape[0]
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    workers = min(workers, n)
    seed = DEFAULT_SEED if seed is None else seed

    init_params = np.asarray(init_params, dtype=np.float64)
    initial_loss = float(model.loss(X, y, init_params))

    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    shm = shared_memory.SharedMemory(create=True, size=init_params.nbytes)
    try:
        shared = np.ndarray(init_params.shape, dtype=np.float64, buffer=shm.buf)
        shared[:] = init_params

        partitions = [np.arange(k, n, workers, dtype=np.int64) for k in range(workers)]
        procs = [
            ctx.Process(
                target=_worker,
                args=(
                    shm.name,
                    init_params.shape[0],
                    model,
                    X,
                    y,
                    partitions[k],
                    step,
                    epochs,
                    seed,
                    k,
                ),
            )
            for k in range(workers)
        ]
        t0 = time.perf_counter()
        for p in procs:
            p.start()
        deadline = t0 + timeout
        for p in procs:
            p.join(max(0.1, deadline - time.perf_counter()))
        wall = time.perf_counter() - t0
        failed = [p for p in procs if p.exitcode != 0]
        for p in procs:
            if p.is_alive():  # pragma: no cover - timeout path
                p.terminate()
                p.join()
        if failed:
            raise ConfigurationError(
                f"{len(failed)} hogwild worker(s) failed "
                f"(exit codes {[p.exitcode for p in failed]})"
            )
        params = shared.copy()
    finally:
        shm.close()
        shm.unlink()

    return HogwildReport(
        params=params,
        wall_time=wall,
        workers=workers,
        epochs=epochs,
        final_loss=float(model.loss(X, y, params)),
        initial_loss=initial_loss,
    )
