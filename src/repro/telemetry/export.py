"""Trace exporters: Chrome-trace (chrome://tracing / Perfetto) and JSON.

The Chrome trace event format is the de-facto interchange for
span-style profiles; a file produced here loads directly into
Perfetto's UI.  Spans become complete (``"ph": "X"``) events with
microsecond timestamps; the final counter totals are appended as one
counter (``"ph": "C"``) event per metric so the totals are visible on
the same timeline.  The plain-JSON exporter dumps the raw records for
programmatic consumers.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from .session import Telemetry
from .spans import SpanRecord, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "spans_json",
    "write_spans_json",
]

#: Synthetic pid for all events — there is one process per run.
_PID = 1


def _span_event(record: SpanRecord) -> dict[str, Any]:
    args: dict[str, Any] = dict(record.attributes)
    if record.sim_seconds is not None:
        args["sim_seconds"] = record.sim_seconds
    return {
        "name": record.name,
        "ph": "X",
        "pid": _PID,
        "tid": record.thread_id,
        "ts": record.start_s * 1e6,
        "dur": record.duration_s * 1e6,
        "cat": "repro",
        "args": args,
    }


def chrome_trace(telemetry: Telemetry | Tracer) -> dict[str, Any]:
    """Build the Chrome-trace document for a run.

    Accepts either a full :class:`Telemetry` (spans + final counter
    totals) or a bare :class:`Tracer` (spans only).
    """
    tracer = telemetry.tracer if isinstance(telemetry, Telemetry) else telemetry
    records = tracer.records()
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    events.extend(_span_event(r) for r in records)
    if isinstance(telemetry, Telemetry):
        end_ts = max(
            (r.start_s + r.duration_s for r in records), default=0.0
        ) * 1e6
        for name, value in telemetry.counters().items():
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "pid": _PID,
                    "tid": 0,
                    "ts": end_ts,
                    "args": {"value": value},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    telemetry: Telemetry | Tracer, path: str | pathlib.Path
) -> pathlib.Path:
    """Write the Chrome-trace JSON file and return its path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(chrome_trace(telemetry), indent=2), encoding="utf-8")
    return path


def spans_json(tracer: Tracer) -> list[dict[str, Any]]:
    """Raw span records as JSON-ready dicts."""
    return [r.to_dict() for r in tracer.records()]


def write_spans_json(tracer: Tracer, path: str | pathlib.Path) -> pathlib.Path:
    """Write the raw span dump and return its path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(spans_json(tracer), indent=2), encoding="utf-8")
    return path
