"""Best-effort git metadata for run manifests.

A manifest should pin the exact code that produced a result, but the
library must keep working from tarballs, installed wheels, and
environments without a ``git`` binary — so every failure mode degrades
to ``None`` rather than raising.
"""

from __future__ import annotations

import pathlib
import subprocess

__all__ = ["current_git_sha", "repo_root"]


def repo_root(start: str | pathlib.Path | None = None) -> pathlib.Path | None:
    """The enclosing directory containing ``.git``, or ``None``."""
    path = pathlib.Path(start) if start is not None else pathlib.Path(__file__)
    for candidate in [path.resolve(), *path.resolve().parents]:
        if (candidate / ".git").exists():
            return candidate
    return None


def current_git_sha(start: str | pathlib.Path | None = None) -> str | None:
    """The current commit SHA of the enclosing repository, or ``None``."""
    root = repo_root(start)
    if root is None:
        return None
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    sha = out.stdout.strip()
    return sha or None
