"""Nested spans and the thread-safe tracer that collects them.

A span covers one region of the training stack — "optimize",
"epoch", "hardware.cost" — and records both *wall-clock* duration
(what the reproduction spends computing) and, optionally, an attributed
amount of *simulated time* (what the paper's machines would spend, as
priced by :mod:`repro.hardware`).  Keeping the two on the same record
is deliberate: the paper's whole argument is that wall-clock intuition
and modelled hardware time diverge, and a trace should show both.

Nesting is tracked per thread with a thread-local stack, so concurrent
sections (e.g. a future threaded experiment driver) interleave without
corrupting parent links; finished spans funnel into one lock-protected
collector on the owning :class:`Tracer`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["SpanRecord", "Span", "Tracer"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, immutable and export-ready.

    ``start_s`` is relative to the tracer's epoch (its construction
    time), so records from one tracer share a timeline.
    """

    name: str
    span_id: int
    parent_id: int | None
    thread_id: int
    start_s: float
    duration_s: float
    #: Simulated seconds attributed to this region (``None`` when the
    #: region performed no hardware-model pricing).
    sim_seconds: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (used by the generic exporter)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "sim_seconds": self.sim_seconds,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpanRecord":
        """Rebuild a record from :meth:`to_dict` output (worker import)."""
        return cls(
            name=str(data["name"]),
            span_id=int(data["span_id"]),
            parent_id=None if data.get("parent_id") is None else int(data["parent_id"]),
            thread_id=int(data.get("thread_id", 0)),
            start_s=float(data.get("start_s", 0.0)),
            duration_s=float(data.get("duration_s", 0.0)),
            sim_seconds=(
                None if data.get("sim_seconds") is None else float(data["sim_seconds"])
            ),
            attributes=dict(data.get("attributes") or {}),
        )


class Span:
    """A live (open) span; use as a context manager via :meth:`Tracer.span`.

    Mutations (:meth:`set_attribute`, :meth:`add_sim_time`) must happen
    before the ``with`` block exits; the record is frozen on exit.
    """

    __slots__ = (
        "_tracer",
        "name",
        "span_id",
        "parent_id",
        "_start",
        "_sim_seconds",
        "attributes",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        attributes: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self._start = 0.0
        self._sim_seconds: float | None = None
        self.attributes = attributes

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one key/value to the span."""
        self.attributes[key] = value

    def add_sim_time(self, seconds: float) -> None:
        """Attribute simulated (modelled) seconds to this region."""
        if self._sim_seconds is None:
            self._sim_seconds = 0.0
        self._sim_seconds += float(seconds)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._start = self._tracer._now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._tracer._now()
        self._tracer._pop(self)
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._collect(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                thread_id=threading.get_ident(),
                start_s=self._start,
                duration_s=max(0.0, end - self._start),
                sim_seconds=self._sim_seconds,
                attributes=self.attributes,
            )
        )


class Tracer:
    """Creates spans and collects their finished records, thread-safely."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._next_id = 0
        self._local = threading.local()

    # -- span lifecycle -------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a span; nests under the thread's innermost open span."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = self._stack()[-1].span_id if self._stack() else None
        return Span(self, name, span_id, parent, dict(attributes))

    def current_span(self) -> Span | None:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- collected data -------------------------------------------------------

    def records(self) -> list[SpanRecord]:
        """Snapshot of all finished spans (collection order)."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self.records())

    def import_records(
        self, records: list[SpanRecord], parent: Span | None = None
    ) -> None:
        """Graft finished spans from another tracer into this one.

        Span ids are remapped into this tracer's id space (internal
        parent links are preserved); records whose parent lies outside
        the imported batch are re-parented under *parent*, so a worker
        process's whole trace nests below the parent-side grid span.
        Timelines are not shifted — worker clocks start at their own
        epoch — which is fine for the Chrome exporter (each import
        keeps its own thread lane).
        """
        if not records:
            return
        with self._lock:
            base = self._next_id
            self._next_id += len(records)
        mapping = {r.span_id: base + i for i, r in enumerate(records)}
        anchor = parent.span_id if parent is not None else None
        for i, r in enumerate(records):
            self._collect(
                SpanRecord(
                    name=r.name,
                    span_id=base + i,
                    parent_id=mapping.get(r.parent_id, anchor),
                    thread_id=r.thread_id,
                    start_s=r.start_s,
                    duration_s=r.duration_s,
                    sim_seconds=r.sim_seconds,
                    attributes=dict(r.attributes),
                )
            )

    def total_sim_seconds(self) -> float:
        """Sum of simulated time attributed across all finished spans."""
        return sum(r.sim_seconds or 0.0 for r in self.records())

    # -- internals ------------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def _collect(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)
