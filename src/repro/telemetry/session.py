"""The `Telemetry` facade: one tracer + one metrics registry per run.

Instrumented code takes ``telemetry: Telemetry | NullTelemetry | None``
and normalises with :func:`ensure_telemetry`; everything downstream
then calls three methods — :meth:`Telemetry.span`,
:meth:`Telemetry.count`, :meth:`Telemetry.set_gauge` — without caring
whether observability is live.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Union

from .counters import MetricsRegistry
from .nulls import NULL_TELEMETRY, NullTelemetry
from .spans import Span, SpanRecord, Tracer

__all__ = ["Telemetry", "AnyTelemetry", "ensure_telemetry"]


class Telemetry:
    """Live observability for one run (or one experiment session)."""

    enabled: bool = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.tracer = Tracer(clock=clock)
        self.metrics = MetricsRegistry()

    # -- the three verbs instrumented code uses -------------------------------

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a (nested) span; use as a context manager."""
        return self.tracer.span(name, **attributes)

    def count(self, name: str, value: float = 1.0) -> None:
        """Add *value* to the counter *name*."""
        self.metrics.count(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge *name* to *value*."""
        self.metrics.set_gauge(name, value)

    # -- cross-process merge --------------------------------------------------

    def snapshot_for_merge(self) -> dict[str, Any]:
        """Serialise this telemetry's state for transport to a parent.

        Worker processes of the experiment-grid executor call this once
        per cell and ship the (JSON-safe, picklable) dict back; the
        parent folds it in with :meth:`merge_snapshot`.
        """
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "spans": [r.to_dict() for r in self.tracer.records()],
        }

    def merge_snapshot(self, snapshot: dict[str, Any], parent_span: Span | None = None) -> None:
        """Fold a worker's :meth:`snapshot_for_merge` into this telemetry.

        Counter totals add (order-independent, so parallel completion
        order cannot perturb them); gauges are set last-write-wins; the
        worker's spans are grafted under *parent_span* (or at top level)
        with their ids remapped into this tracer.
        """
        self.metrics.merge_counters(snapshot.get("counters") or {})
        self.metrics.merge_gauges(snapshot.get("gauges") or {})
        spans = [SpanRecord.from_dict(d) for d in snapshot.get("spans") or []]
        self.tracer.import_records(spans, parent=parent_span)

    # -- conveniences ---------------------------------------------------------

    def counters(self) -> dict[str, float]:
        """All counter totals."""
        return self.metrics.counter_values()

    def gauges(self) -> dict[str, float]:
        """All gauge values."""
        return self.metrics.gauge_values()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Telemetry(spans={len(self.tracer)}, "
            f"counters={len(self.counters())})"
        )


AnyTelemetry = Union[Telemetry, NullTelemetry]


def ensure_telemetry(telemetry: AnyTelemetry | None) -> AnyTelemetry:
    """Normalise an optional telemetry argument to a usable sink."""
    return NULL_TELEMETRY if telemetry is None else telemetry
