"""repro.telemetry — tracing, counters and run manifests.

A zero-dependency observability layer for the whole training stack:

* :class:`Tracer` / :class:`Span` — nested spans with wall-clock
  duration *and* simulated-time attribution, collected thread-safely
  and exportable as Chrome-trace JSON (:func:`write_chrome_trace`);
* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` —
  event totals the runners, the asynchrony engine and the hardware
  models increment (see :mod:`repro.telemetry.keys` for the
  vocabulary);
* :class:`RunManifest` / :func:`build_manifest` — a reproducible JSON
  snapshot of one run: config, dataset statistics, seed, git SHA and
  final metrics;
* :class:`NullTelemetry` / :data:`NULL_TELEMETRY` — the no-op default,
  so instrumentation costs nothing when disabled.

Typical use::

    from repro.telemetry import Telemetry, build_manifest, write_chrome_trace

    tel = Telemetry()
    result = repro.train("lr", "w8a", strategy="asynchronous", telemetry=tel)
    write_chrome_trace(tel, "trace.json")
    build_manifest(result, tel, scale="small").write("manifest.json")

See docs/OBSERVABILITY.md for the full story.
"""

from . import keys
from .counters import Counter, Gauge, MetricsRegistry
from .export import chrome_trace, spans_json, write_chrome_trace, write_spans_json
from .gitinfo import current_git_sha
from .manifest import (
    GRID_MANIFEST_SCHEMA,
    MANIFEST_SCHEMA,
    SERVE_MANIFEST_SCHEMA,
    RunManifest,
    build_grid_manifest,
    build_manifest,
    build_serve_manifest,
    load_manifest,
)
from .nulls import NULL_TELEMETRY, NullSpan, NullTelemetry
from .session import AnyTelemetry, Telemetry, ensure_telemetry
from .spans import Span, SpanRecord, Tracer

__all__ = [
    "keys",
    "Telemetry",
    "AnyTelemetry",
    "ensure_telemetry",
    "NullTelemetry",
    "NullSpan",
    "NULL_TELEMETRY",
    "Tracer",
    "Span",
    "SpanRecord",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "chrome_trace",
    "write_chrome_trace",
    "spans_json",
    "write_spans_json",
    "RunManifest",
    "MANIFEST_SCHEMA",
    "GRID_MANIFEST_SCHEMA",
    "SERVE_MANIFEST_SCHEMA",
    "build_manifest",
    "build_grid_manifest",
    "build_serve_manifest",
    "load_manifest",
    "current_git_sha",
]
