"""Canonical metric names shared by every instrumented layer.

Counters and gauges are keyed by dotted strings; this module is the
single vocabulary so producers (runners, the asynchrony engine, the
hardware models) and consumers (manifests, benchmarks, tests) agree on
spelling.  The prefixes partition the namespace:

* ``sgd.``   — work performed by the numerical optimisation itself
  (gradient evaluations, model updates, epochs);
* ``async.`` — events specific to the asynchrony simulator (stale
  reads, scheduling rounds);
* ``hw.``    — *modelled* hardware activity derived by the analytical
  machine models (bytes moved, flops, coherence conflicts, kernel
  launches) — these describe the paper's machines, not the host;
* ``sim.``   — simulated-time outputs (seconds per epoch at paper
  scale), the quantities the paper reports as hardware efficiency;
* ``fault.`` — fault-injection and recovery events in the measured
  shared-memory backend (injected faults, worker restarts,
  repartitions, degraded epochs) — see :mod:`repro.faults`;
* ``grid.`` — the parallel experiment-grid executor (cells scheduled,
  deduplicated, resumed from the on-disk store, executed in workers)
  — see :mod:`repro.experiments.executor`;
* ``serve.`` — the scoring service (requests scored, micro-batches
  formed, snapshot reads/retries/hot-swaps, latency percentiles) — see
  :mod:`repro.serving`;
* ``ps.`` — the distributed parameter-server backend (shard pulls and
  delta pushes, bytes on the wire, observed staleness, blocked pulls,
  worker reconnects and dead-worker reaps) — see
  :mod:`repro.distributed`.
"""

from __future__ import annotations

__all__ = [
    "GRAD_EVALS",
    "UPDATES_APPLIED",
    "EPOCHS",
    "LOSS_EVALS",
    "STALE_READS",
    "ASYNC_ROUNDS",
    "UPDATE_CONFLICTS",
    "BYTES_MOVED",
    "FLOPS_MODELLED",
    "KERNEL_LAUNCHES",
    "COHERENCE_CONFLICTS",
    "ATOMIC_HOTLINE_UPDATES",
    "SIM_SECONDS_PER_EPOCH",
    "SIM_SECONDS_TOTAL",
    "WALL_SECONDS_PER_EPOCH",
    "WALL_SECONDS_TOTAL",
    "FAULT_INJECTED",
    "FAULT_WORKER_RESTARTS",
    "FAULT_REPARTITIONS",
    "FAULT_DEGRADED_EPOCHS",
    "GRID_CELLS_REQUESTED",
    "GRID_CELLS_EXECUTED",
    "GRID_CELLS_DEDUPED",
    "GRID_CELLS_RESUMED",
    "GRID_CELLS_RECOSTED",
    "GRID_WORKER_FAILURES",
    "GRID_JOBS",
    "GRID_WALL_SECONDS",
    "GRID_RETRY_ATTEMPTS",
    "GRID_RETRY_BACKOFF_SECONDS",
    "GRID_RETRY_CRASHES",
    "GRID_RETRY_STALLS",
    "GRID_RETRY_DIVERGENCES",
    "GRID_QUARANTINE_CELLS",
    "GRID_QUARANTINE_BUDGET_EXHAUSTED",
    "GRID_POOL_CREATED",
    "GRID_POOL_REUSED",
    "GRID_POOL_RETIRED",
    "GRID_POOL_WORKERS",
    "GRID_SHM_PUBLISHED",
    "GRID_SHM_DATASETS",
    "GRID_SHM_SEGMENTS",
    "GRID_SHM_BYTES",
    "GRID_REFERENCE_COMPUTED",
    "GRID_REFERENCE_REUSED",
    "SERVE_REQUESTS",
    "SERVE_EXAMPLES",
    "SERVE_BATCHES",
    "SERVE_ERRORS",
    "SERVE_RETRIABLE_ERRORS",
    "SERVE_HOT_SWAPS",
    "SERVE_SNAPSHOT_READS",
    "SERVE_SNAPSHOT_RETRIES",
    "SERVE_SOURCE_ERRORS",
    "SERVE_REQUESTS_PER_SECOND",
    "SERVE_LATENCY_P50_MS",
    "SERVE_LATENCY_P99_MS",
    "SERVE_QUEUE_DEPTH_PEAK",
    "SERVE_BATCH_SIZE_MEAN",
    "SERVE_SNAPSHOT_VERSION",
    "SERVE_SNAPSHOT_AGE_SECONDS",
    "SERVE_BATCH_BUCKET_PREFIX",
    "serve_batch_bucket",
    "PS_PULLS",
    "PS_PULL_ROUNDS",
    "PS_PUSHES",
    "PS_BYTES_SENT",
    "PS_BYTES_RECEIVED",
    "PS_BYTES_SAVED",
    "PS_SHARD_CACHE_HITS",
    "PS_PULL_WAITS",
    "PS_RECONNECTS",
    "PS_RECONNECTS_MIDRUN",
    "PS_CONNECT_RETRIES",
    "PS_DEAD_WORKERS_REAPED",
    "PS_FRAMES_REJECTED",
    "PS_CHECKPOINTS_WRITTEN",
    "PS_CHECKPOINTS_RESTORED",
    "PS_SERVER_FAILOVERS",
    "PS_HANDLER_THREADS_LEAKED",
    "PS_TIME_TO_REPAIR_SECONDS",
    "PS_PULL_ROUNDS_PER_UPDATE",
    "PS_STALENESS_BUCKET_PREFIX",
    "ps_staleness_bucket",
]

#: Per-example gradient evaluations (a full-batch gradient over N rows
#: counts N; an incremental step counts 1).
GRAD_EVALS = "sgd.gradient_evals"

#: Model updates applied to the shared parameter vector (one per epoch
#: for batch GD, one per example/mini-batch for Hogwild/Hogbatch).
UPDATES_APPLIED = "sgd.updates_applied"

#: Optimisation epochs actually executed.
EPOCHS = "sgd.epochs"

#: Full-dataset loss evaluations (excluded from iteration timing, but
#: counted so their cost is visible).
LOSS_EVALS = "sgd.loss_evals"

#: Gradients computed against a stale model snapshot (the asynchrony
#: simulator's whole point: staleness of reads).
STALE_READS = "async.stale_reads"

#: Scheduling rounds executed by the asynchrony engine.
ASYNC_ROUNDS = "async.rounds"

#: *Measured* racy coordinate writes observed by the shared-memory
#: backend: model coordinates whose value changed between a work item's
#: gradient read and its update write (the lock-free Hogwild race the
#: simulator can only model).
UPDATE_CONFLICTS = "async.update_conflicts"

#: Modelled memory traffic (bytes) the hardware models priced.
BYTES_MOVED = "hw.bytes_moved"

#: Modelled floating-point operations the hardware models priced.
FLOPS_MODELLED = "hw.flops_modelled"

#: Modelled GPU kernel launches (synchronous primitives / batch steps).
KERNEL_LAUNCHES = "hw.kernel_launches"

#: Modelled coherence-conflicted model cache lines per costed epoch
#: (CPU Hogwild: lines whose update pays an ownership transfer).
COHERENCE_CONFLICTS = "hw.coherence_conflict_lines"

#: Modelled serialised atomic updates to the hottest model line per
#: costed epoch (GPU Hogwild's contention floor).
ATOMIC_HOTLINE_UPDATES = "hw.atomic_hotline_updates"

#: Gauge: modelled seconds per optimisation epoch at paper scale.
SIM_SECONDS_PER_EPOCH = "sim.seconds_per_epoch"

#: Gauge: modelled seconds for the whole run (epochs x per-epoch time).
SIM_SECONDS_TOTAL = "sim.seconds_total"

#: Gauge: *measured* wall-clock seconds per optimisation epoch on the
#: host (shared-memory backend; loss evaluation excluded, matching the
#: paper's iteration-time protocol).  Sits next to ``sim.*`` so the
#: analytical model's predictions and real measurements share a record.
WALL_SECONDS_PER_EPOCH = "wall.seconds_per_epoch"

#: Gauge: measured wall-clock seconds across all optimisation epochs.
WALL_SECONDS_TOTAL = "wall.seconds_total"

#: Faults actually injected into shm workers by a
#: :class:`repro.faults.FaultPlan` (counted by the workers themselves
#: at the injection site, so a kill is counted before the process
#: dies).
FAULT_INJECTED = "fault.injected"

#: Full-pool respawns performed by the recovery policy (worker death
#: in ``respawn`` mode, or any barrier timeout).
FAULT_WORKER_RESTARTS = "fault.worker_restarts"

#: Pool rebuilds that re-partitioned a dead worker's examples over the
#: survivors (``repartition`` mode).
FAULT_REPARTITIONS = "fault.repartitions"

#: Optimisation epochs executed in a degraded state: fewer workers
#: than requested, or a NaN-scrubbed model snapshot.
FAULT_DEGRADED_EPOCHS = "fault.degraded_epochs"

#: Grid cells requested from the executor (after in-memory cache hits).
GRID_CELLS_REQUESTED = "grid.cells_requested"

#: Cells whose optimisation actually ran (in a worker or in-parent).
GRID_CELLS_EXECUTED = "grid.cells_executed"

#: Synchronous cells that shared another architecture's base
#: optimisation run instead of scheduling their own (the cpu-seq
#: dedup: one run, re-costed per architecture).
GRID_CELLS_DEDUPED = "grid.cells_deduped"

#: Cells skipped because the on-disk result store already held them
#: (``--resume``).
GRID_CELLS_RESUMED = "grid.cells_resumed"

#: Synchronous cells derived in-parent by re-costing a shared base run
#: on a different machine model.
GRID_CELLS_RECOSTED = "grid.cells_recosted"

#: Grid jobs that raised (or whose worker process died); each failure
#: surfaces as a structured :class:`repro.utils.errors.WorkerError`.
GRID_WORKER_FAILURES = "grid.worker_failures"

#: Gauge: worker processes the last executor fan-out used.
GRID_JOBS = "grid.jobs"

#: Gauge: measured wall-clock seconds of the last executor fan-out.
GRID_WALL_SECONDS = "grid.wall_seconds"

#: Cell re-submissions performed by the resilient (keep-going) grid:
#: every retry after a crash, stall, worker exception or divergence
#: consumes one unit of the shared :class:`repro.faults.CellRetryPolicy`
#: budget and counts here.
GRID_RETRY_ATTEMPTS = "grid.retry.attempts"

#: Cumulative exponential-backoff delay (seconds) scheduled before
#: grid-cell re-submissions.
GRID_RETRY_BACKOFF_SECONDS = "grid.retry.backoff_seconds"

#: Grid workers observed dead (process exit without a result).
GRID_RETRY_CRASHES = "grid.retry.crashes"

#: Grid workers killed by the deadline/heartbeat watchdog.
GRID_RETRY_STALLS = "grid.retry.stalls"

#: Cell results rejected by the divergence sentinel (non-finite loss),
#: each answered with a step-size-backoff retry while budget remains.
GRID_RETRY_DIVERGENCES = "grid.retry.divergences"

#: Requested cells quarantined after exhausting their retry budget —
#: recorded as structured ``CellFailure`` entries and *skipped*, not
#: fatal, under ``--keep-going``.
GRID_QUARANTINE_CELLS = "grid.quarantine.cells"

#: Quarantines forced early because the grid-wide shared retry budget
#: (``CellRetryPolicy.max_restarts``) was already spent.
GRID_QUARANTINE_BUDGET_EXHAUSTED = "grid.quarantine.budget_exhausted"

#: Warm worker pools built for a grid fan-out (first run, or a
#: requirements change: different job count / shared-data setting /
#: datasets published after the previous pool forked).
GRID_POOL_CREATED = "grid.pool.created"

#: Grid fan-outs served by an already-warm worker pool (no spawn cost).
GRID_POOL_REUSED = "grid.pool.reused"

#: Warm pools torn down on a failure path (broken pool, worker
#: exception, interrupt) — the next fan-out rebuilds from cold.
GRID_POOL_RETIRED = "grid.pool.retired"

#: Gauge: worker capacity of the warm pool serving the last fan-out.
GRID_POOL_WORKERS = "grid.pool.workers"

#: Datasets newly copied into shared-memory segments by this fan-out
#: (publication is incremental; already-shared datasets don't recount).
GRID_SHM_PUBLISHED = "grid.shm.datasets_published"

#: Gauge: datasets currently published in shared memory.
GRID_SHM_DATASETS = "grid.shm.datasets"

#: Gauge: shared-memory segments currently backing those datasets
#: (dense: X + y; CSR: indptr + indices + data + y).
GRID_SHM_SEGMENTS = "grid.shm.segments"

#: Gauge: total bytes of dataset arrays living in shared memory.
GRID_SHM_BYTES = "grid.shm.bytes"

#: Reference optima solved in the parent before fan-out (once per
#: (task, dataset) — workers inherit the value instead of re-solving).
GRID_REFERENCE_COMPUTED = "grid.reference.computed"

#: Reference optima served from a cache (in-process, on-disk, or the
#: grid result store) instead of being re-solved.
GRID_REFERENCE_REUSED = "grid.reference.reused"

#: Score requests answered by the scoring service (success or
#: structured error; one request may carry several examples).
SERVE_REQUESTS = "serve.requests"

#: Examples scored (the unit the micro-batcher coalesces).
SERVE_EXAMPLES = "serve.examples"

#: Micro-batches pushed through the vectorised margin kernels — the
#: ratio ``serve.examples / serve.batches`` is the realised coalescing
#: factor.
SERVE_BATCHES = "serve.batches"

#: Requests answered with a structured non-retriable error (malformed
#: payload, wrong feature count, unknown op).
SERVE_ERRORS = "serve.errors"

#: Requests answered with a structured *retriable* error
#: (:class:`repro.utils.errors.SnapshotUnavailableError`: cold start,
#: trainer gone before first publish).
SERVE_RETRIABLE_ERRORS = "serve.retriable_errors"

#: Model hot-swaps: a newer snapshot installed atomically while
#: in-flight requests finished on the previous one.
SERVE_HOT_SWAPS = "serve.hot_swaps"

#: Consistent snapshot reads completed against the shared buffer.
SERVE_SNAPSHOT_READS = "serve.snapshot.reads"

#: Seqlock retries across all snapshot reads (a publish overlapped the
#: reader's copy; the read was re-run — never served torn).
SERVE_SNAPSHOT_RETRIES = "serve.snapshot.retries"

#: Snapshot-source refresh failures survived (trainer died, segment
#: gone); the service kept answering from the last installed model.
SERVE_SOURCE_ERRORS = "serve.source_errors"

#: Gauge: sustained request throughput over the measurement window.
SERVE_REQUESTS_PER_SECOND = "serve.requests_per_second"

#: Gauge: median request latency (milliseconds, submit -> scored).
SERVE_LATENCY_P50_MS = "serve.latency_p50_ms"

#: Gauge: 99th-percentile request latency (milliseconds).
SERVE_LATENCY_P99_MS = "serve.latency_p99_ms"

#: Gauge: deepest request queue observed by the micro-batcher.
SERVE_QUEUE_DEPTH_PEAK = "serve.queue_depth_peak"

#: Gauge: mean realised micro-batch size (examples per kernel call).
SERVE_BATCH_SIZE_MEAN = "serve.batch_size_mean"

#: Gauge: version of the model snapshot currently being served.
SERVE_SNAPSHOT_VERSION = "serve.snapshot.version"

#: Gauge: age (seconds) of the served snapshot at the last stats flush.
SERVE_SNAPSHOT_AGE_SECONDS = "serve.snapshot.age_seconds"

#: Prefix of the micro-batch size histogram counters; bucket keys are
#: produced by :func:`serve_batch_bucket` (powers of two, e.g.
#: ``serve.batch_size_bucket.le_8`` counts batches of 5..8 examples).
SERVE_BATCH_BUCKET_PREFIX = "serve.batch_size_bucket."

#: Largest histogram bucket; batches above the previous power of two
#: land in ``serve.batch_size_bucket.gt_128``.
_SERVE_BUCKET_CAP = 128


def serve_batch_bucket(size: int) -> str:
    """Histogram counter key for a realised micro-batch of *size* rows."""
    if size > _SERVE_BUCKET_CAP:
        return f"{SERVE_BATCH_BUCKET_PREFIX}gt_{_SERVE_BUCKET_CAP}"
    edge = 1
    while edge < size:
        edge *= 2
    return f"{SERVE_BATCH_BUCKET_PREFIX}le_{edge}"


#: Shard *payloads* the parameter server actually shipped — fresh
#: (version-changed) shards only; cached shards count under
#: :data:`PS_SHARD_CACHE_HITS` instead.  Under the legacy per-shard
#: PULL frame every answered shard counts here.
PS_PULLS = "ps.pulls"

#: Pull round-trips the server answered (one per PULL_ALL, fused
#: PUSH_PULL, or legacy per-shard PULL).  The wire-economics headline:
#: ``ps.pull_rounds / sgd.updates_applied`` is the round-trips one SGD
#: item costs (≤ 1.0 with the batched protocol).
PS_PULL_ROUNDS = "ps.pull_rounds"

#: Delta pushes applied by the parameter server (one per work item; a
#: push may touch several shards, each under its own lock).
PS_PUSHES = "ps.pushes"

#: Bytes the server wrote to worker sockets (shard payloads + acks).
PS_BYTES_SENT = "ps.bytes_sent"

#: Bytes the server read from worker sockets (pushes, pulls, control).
PS_BYTES_RECEIVED = "ps.bytes_received"

#: Shard payload bytes the version cache kept *off* the wire (a cached
#: shard answers with a 9-byte header instead of its float64 payload).
PS_BYTES_SAVED = "ps.bytes_saved"

#: Shards answered with a cached header because the worker's last-seen
#: version still matched the server's (no payload shipped).
PS_SHARD_CACHE_HITS = "ps.shard_cache_hits"

#: Pulls that blocked on the bounded-staleness gate before being
#: answered (the worker was more than ``max_staleness`` work items
#: ahead of the slowest live worker).
PS_PULL_WAITS = "ps.pull_waits"

#: Worker registrations for an id the server had already seen — a
#: respawned worker re-joining after a recovery action.
PS_RECONNECTS = "ps.reconnects"

#: The subset of :data:`PS_RECONNECTS` performed by a *live* worker
#: healing its own dropped connection mid-run (HELLO carries the
#: reconnect flag) — a server failover or an injected ``conn-drop``
#: absorbed without any parent recovery action.
PS_RECONNECTS_MIDRUN = "ps.reconnects_midrun"

#: Frames the server refused to act on — CRC mismatch, bad framing, or
#: a malformed payload (:class:`~repro.distributed.protocol.WireProtocolError`).
#: The connection is dropped, the push is never applied, and the worker
#: heals by reconnect-and-replay.
PS_FRAMES_REJECTED = "ps.frames_rejected"

#: Checkpoints the shard server's background writer (or a
#: parent-triggered epoch-boundary flush) persisted to disk.
PS_CHECKPOINTS_WRITTEN = "ps.checkpoints_written"

#: Server starts seeded from an on-disk checkpoint instead of the
#: initial parameters — one per crash-restart failover (and one for an
#: explicit warm start).
PS_CHECKPOINTS_RESTORED = "ps.checkpoints_restored"

#: Crash-restart failovers the parent supervisor performed: server
#: declared dead (exit or liveness-probe timeout), respawned from the
#: newest valid checkpoint on a fresh port.
PS_SERVER_FAILOVERS = "ps.server_failovers"

#: Handler threads still alive after ``ShardServer.close()`` exhausted
#: its join timeout — a wedged handler the teardown had to abandon.
PS_HANDLER_THREADS_LEAKED = "ps.handler_threads_leaked"

#: Gauge: seconds from the parent detecting server death to the first
#: push applied by the restored server (the failover's time-to-repair;
#: the last failover of the run wins).
PS_TIME_TO_REPAIR_SECONDS = "ps.time_to_repair_seconds"

#: Failed dial attempts workers sat out (with exponential backoff)
#: before their connection succeeded — reconnect storms made visible.
PS_CONNECT_RETRIES = "ps.connect_retries"

#: Gauge: measured pull round-trips per applied update for the run
#: (``ps.pull_rounds / sgd.updates_applied``).
PS_PULL_ROUNDS_PER_UPDATE = "ps.pull_rounds_per_update"

#: Connections the server reaped without a clean BYE (worker died or
#: was torn down mid-run); reaped workers leave the staleness gate so
#: survivors never block on a corpse.
PS_DEAD_WORKERS_REAPED = "ps.dead_workers_reaped"

#: Prefix of the observed-staleness histogram; bucket keys come from
#: :func:`ps_staleness_bucket` (powers of two of the work-item lag a
#: pull *round* observed against the slowest live worker, e.g.
#: ``ps.staleness_bucket.le_4`` counts rounds observing lag 3..4).
#: One observation per round-trip: bucket sums equal
#: :data:`PS_PULL_ROUNDS`.  The measured counterpart of the asynchrony
#: simulator's staleness parameter.
PS_STALENESS_BUCKET_PREFIX = "ps.staleness_bucket."

#: Largest staleness bucket; lags above the previous power of two land
#: in ``ps.staleness_bucket.gt_64``.
_PS_STALENESS_CAP = 64


def ps_staleness_bucket(lag: int) -> str:
    """Histogram counter key for a pull round that observed *lag* items."""
    if lag <= 0:
        return f"{PS_STALENESS_BUCKET_PREFIX}le_0"
    if lag > _PS_STALENESS_CAP:
        return f"{PS_STALENESS_BUCKET_PREFIX}gt_{_PS_STALENESS_CAP}"
    edge = 1
    while edge < lag:
        edge *= 2
    return f"{PS_STALENESS_BUCKET_PREFIX}le_{edge}"
