"""Monotonic counters and last-value gauges, in a thread-safe registry.

Counters accumulate event totals (gradient evaluations, updates
applied, modelled bytes moved); gauges hold the latest value of a
measurement (simulated seconds per epoch).  Both are created on first
use, so instrumented code never has to pre-declare the metrics it
emits, and all mutation goes through one registry lock — contention is
irrelevant at the granularity we instrument (per epoch / per costing
call, not per arithmetic operation).
"""

from __future__ import annotations

import threading
from typing import Iterator

__all__ = ["Counter", "Gauge", "MetricsRegistry"]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def add(self, value: float = 1.0) -> None:
        """Increment by *value* (must be non-negative)."""
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {value})")
        with self._lock:
            self._value += value

    @property
    def value(self) -> float:
        """Current total."""
        with self._lock:
            return self._value


class Gauge:
    """A last-value-wins measurement (also tracks the maximum seen)."""

    __slots__ = ("name", "_value", "_max", "_set", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._max = 0.0
        self._set = False
        self._lock = lock

    def set(self, value: float) -> None:
        """Record the latest value."""
        with self._lock:
            value = float(value)
            self._value = value
            self._max = value if not self._set else max(self._max, value)
            self._set = True

    @property
    def value(self) -> float:
        """Most recently set value (0.0 if never set)."""
        with self._lock:
            return self._value

    @property
    def max(self) -> float:
        """Largest value ever set."""
        with self._lock:
            return self._max


class MetricsRegistry:
    """Create-on-demand home for all counters and gauges of one run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        """The counter named *name*, created if absent."""
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name, self._lock)
            return c

    def gauge(self, name: str) -> Gauge:
        """The gauge named *name*, created if absent."""
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name, self._lock)
            return g

    def count(self, name: str, value: float = 1.0) -> None:
        """Shorthand: ``counter(name).add(value)``."""
        self.counter(name).add(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Shorthand: ``gauge(name).set(value)``."""
        self.gauge(name).set(value)

    def merge_counters(self, totals: dict[str, float]) -> None:
        """Add another registry's counter totals into this one.

        Used by the experiment-grid executor to fold worker-process
        telemetry back into the parent registry; addition is
        order-independent, so merging workers as they complete yields
        the same totals as the serial run.
        """
        for name, value in totals.items():
            self.counter(name).add(value)

    def merge_gauges(self, values: dict[str, float]) -> None:
        """Set gauges from another registry's snapshot (last-write-wins,
        like any local ``set``; the max is tracked across merges)."""
        for name, value in values.items():
            self.gauge(name).set(value)

    def counter_values(self) -> dict[str, float]:
        """Name -> total for every counter (sorted by name)."""
        with self._lock:
            return {name: c._value for name, c in sorted(self._counters.items())}

    def gauge_values(self) -> dict[str, float]:
        """Name -> latest value for every gauge (sorted by name)."""
        with self._lock:
            return {name: g._value for name, g in sorted(self._gauges.items())}

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Counters and gauges as one JSON-ready mapping."""
        return {"counters": self.counter_values(), "gauges": self.gauge_values()}

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(self.counter_values().items())
