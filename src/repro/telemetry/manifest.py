"""Run manifests: the reproducibility record of one training run.

A manifest pins everything needed to compare a result across PRs and
machines: the full configuration, the realised dataset's statistics,
the seed, the producing commit, the final metrics along the paper's
three axes, and the telemetry counter totals.  It round-trips through
JSON losslessly (``write`` -> ``load`` -> equality), which the test
suite asserts and the benchmark trajectory (``BENCH_*.json``) relies
on.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import asdict, dataclass, field
from typing import Any, TYPE_CHECKING

from .gitinfo import current_git_sha
from .session import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sgd.runner import TrainResult

__all__ = [
    "MANIFEST_SCHEMA",
    "GRID_MANIFEST_SCHEMA",
    "SERVE_MANIFEST_SCHEMA",
    "RunManifest",
    "build_manifest",
    "load_manifest",
    "build_grid_manifest",
    "build_serve_manifest",
]

MANIFEST_SCHEMA = "repro.telemetry/manifest/v1"

#: Schema of the aggregate manifest the experiment-grid executor writes:
#: one record per cell (each a :data:`MANIFEST_SCHEMA` manifest dict,
#: tagged with how the cell was produced) plus the merged parent-side
#: counter/gauge totals.
GRID_MANIFEST_SCHEMA = "repro.telemetry/grid-manifest/v1"

#: Schema of the manifest a ``repro serve`` session writes on shutdown:
#: the serving statistics (throughput, latency percentiles, batch-size
#: histogram, hot-swap and snapshot-retry counts) plus the ``serve.*``
#: counter/gauge totals and the model provenance it ended on.
SERVE_MANIFEST_SCHEMA = "repro.telemetry/serve-manifest/v1"


@dataclass
class RunManifest:
    """Snapshot of one run's identity, inputs, outputs and counters."""

    schema: str
    created_unix: float
    git_sha: str | None
    repro_version: str
    #: The exact configuration: task, dataset, architecture, strategy,
    #: step size, scale, seed, epoch budget, batch size, ...
    config: dict[str, Any] = field(default_factory=dict)
    #: Realised dataset statistics (name, rows, features, nnz, density).
    dataset: dict[str, Any] = field(default_factory=dict)
    #: Final metrics along the paper's axes (losses, time per iter,
    #: epochs/time to each tolerance, divergence flag).
    results: dict[str, Any] = field(default_factory=dict)
    #: Telemetry counter totals at the end of the run.
    counters: dict[str, float] = field(default_factory=dict)
    #: Telemetry gauge values at the end of the run.
    gauges: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-ready)."""
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        """Serialised JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the manifest file and return its path."""
        path = pathlib.Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest from its dict form."""
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        return cls(**known)


def load_manifest(path: str | pathlib.Path) -> RunManifest:
    """Read a manifest file back into a :class:`RunManifest`."""
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    return RunManifest.from_dict(data)


def build_manifest(
    result: "TrainResult",
    telemetry: Telemetry | None = None,
    *,
    scale: str | None = None,
    seed: int | None = None,
    max_epochs: int | None = None,
    batch_size: int | None = None,
    extra_config: dict[str, Any] | None = None,
) -> RunManifest:
    """Assemble the manifest for one :func:`repro.train` result.

    The counter/gauge sections come from *telemetry* (empty when the
    run was not instrumented); the result section is always derived
    from the returned :class:`~repro.sgd.runner.TrainResult`, so a
    manifest is meaningful even without live telemetry.
    """
    from .. import __version__
    from ..sgd.config import TOLERANCES

    config: dict[str, Any] = {
        "task": result.task,
        "dataset": result.dataset,
        "architecture": result.architecture,
        "strategy": result.strategy,
        "step_size": result.step_size,
    }
    if scale is not None:
        config["scale"] = scale
    if seed is not None:
        config["seed"] = seed
    if max_epochs is not None:
        config["max_epochs"] = max_epochs
    if batch_size is not None:
        config["batch_size"] = batch_size
    if extra_config:
        config.update(extra_config)
    config.setdefault("backend", result.backend)

    epochs_run = result.curve.epochs[-1] if result.curve.epochs else 0
    results: dict[str, Any] = {
        "initial_loss": result.initial_loss,
        "optimal_loss": result.optimal_loss,
        "final_loss": result.curve.final_loss,
        "diverged": result.diverged,
        "epochs_run": epochs_run,
        "time_per_iter_s": result.time_per_iter,
        "sim_seconds_total": epochs_run * result.time_per_iter,
    }
    for tol in TOLERANCES:
        pct = int(round(tol * 100))
        epochs = result.epochs_to(tol)
        results[f"epochs_to_{pct}pct"] = epochs
        t = result.time_to(tol)
        # JSON has no Infinity; the paper's "never converged" marker is
        # stored as null and read back as such.
        results[f"time_to_{pct}pct_s"] = None if epochs is None else t
    if result.measured is not None:
        # Measured execution record (shm backend): wall clock, worker
        # counts, fault counters and the recovery trajectory.
        results["measured"] = dict(result.measured)

    return RunManifest(
        schema=MANIFEST_SCHEMA,
        created_unix=time.time(),
        git_sha=current_git_sha(),
        repro_version=__version__,
        config=config,
        dataset=dict(result.dataset_stats or {}),
        results=results,
        counters=telemetry.counters() if telemetry is not None else {},
        gauges=telemetry.gauges() if telemetry is not None else {},
    )


def build_grid_manifest(
    cells: list[dict[str, Any]],
    telemetry: Telemetry | None = None,
    *,
    jobs: int = 1,
    settings: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the aggregate manifest of one experiment-grid run.

    *cells* are per-cell records produced by the executor: each holds
    the cell's :func:`build_manifest` dict plus provenance (executed in
    a worker / re-costed from a shared base / resumed from the store /
    quarantined by a keep-going run).  The parent telemetry supplies
    the merged counter totals — worker counters have already been
    folded in by the executor, so these are grid-wide totals,
    comparable to a serial run's.

    Quarantined cells carry a structured ``failure`` record instead of
    a manifest; they are repeated under the top-level ``failures`` key
    so a degraded run is visible without scanning the cell list.
    """
    from .. import __version__

    return {
        "schema": GRID_MANIFEST_SCHEMA,
        "created_unix": time.time(),
        "git_sha": current_git_sha(),
        "repro_version": __version__,
        "jobs": jobs,
        "settings": dict(settings or {}),
        "cells": cells,
        "failures": [c for c in cells if c.get("source") == "quarantined"],
        "counters": telemetry.counters() if telemetry is not None else {},
        "gauges": telemetry.gauges() if telemetry is not None else {},
    }


def build_serve_manifest(
    stats: dict[str, Any],
    telemetry: Telemetry | None = None,
    *,
    settings: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the manifest of one serving session.

    *stats* is :meth:`repro.serving.EngineStats.to_dict` output taken at
    shutdown; *settings* records how the server was launched (model
    source, address, batching knobs).  Calling
    :meth:`~repro.serving.ScoringEngine.stats` first flushes the
    ``serve.*`` gauges, so the gauge section here mirrors the stats
    section — manifest consumers can rely on either.
    """
    from .. import __version__

    return {
        "schema": SERVE_MANIFEST_SCHEMA,
        "created_unix": time.time(),
        "git_sha": current_git_sha(),
        "repro_version": __version__,
        "settings": dict(settings or {}),
        "serving": dict(stats),
        "counters": telemetry.counters() if telemetry is not None else {},
        "gauges": telemetry.gauges() if telemetry is not None else {},
    }
