"""The disabled-telemetry implementation: every operation is a no-op.

Instrumented code is written against the :class:`~repro.telemetry.session.Telemetry`
surface and receives :data:`NULL_TELEMETRY` when the caller did not ask
for observability.  The null objects allocate nothing per call (the
span is a shared singleton), so instrumentation in hot paths costs a
method dispatch and nothing else — and, critically, touches no RNG and
no numerics, keeping results bit-identical with telemetry on or off.
"""

from __future__ import annotations

from typing import Any

__all__ = ["NullSpan", "NullTelemetry", "NULL_TELEMETRY"]


class NullSpan:
    """Context manager that ignores everything."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def add_sim_time(self, seconds: float) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = NullSpan()


class NullTelemetry:
    """No-op stand-in for :class:`repro.telemetry.session.Telemetry`."""

    __slots__ = ()

    enabled: bool = False

    def span(self, name: str, **attributes: Any) -> NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def snapshot_for_merge(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "spans": []}

    def merge_snapshot(self, snapshot: dict[str, Any], parent_span: Any = None) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTelemetry()"


#: Shared default instance; instrumented code normalises ``None`` to it.
NULL_TELEMETRY = NullTelemetry()
