"""Deterministic simulation of asynchronous (Hogwild-style) execution.

The statistical effect of Hogwild is that gradients are computed against
*stale* models: while a thread evaluates its example, other threads'
updates land.  On x86, 8-byte-aligned stores are atomic, so no update is
numerically lost — staleness of reads is the whole effect (this is the
"perturbed iterate" view of Niu et al. [27] and De Sa et al. [9]).

We reproduce it with a round-based schedule: with logical concurrency
``C``, each round takes the next ``C`` work items (single examples for
Hogwild, mini-batches for Hogbatch), computes **all** their updates
against the model as of the start of the round, then applies them in
program order.  ``C = 1`` degenerates to exact serial incremental SGD
(Algorithm 3); large ``C`` models a GPU where thousands of lanes read
the same model generation.  The schedule is deterministic given the
seed, which the test suite exploits.

Higher concurrency = staler gradients = worse statistical efficiency —
exactly the paper's observed epoch inflation from cpu-seq to cpu-par to
gpu in Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.base import Matrix, Model
from ..telemetry import keys
from ..telemetry.session import AnyTelemetry, ensure_telemetry
from ..utils.errors import ConfigurationError, DivergenceError

__all__ = ["AsyncSchedule", "run_async_epoch", "apply_updates"]


@dataclass(frozen=True)
class AsyncSchedule:
    """Execution schedule of one asynchronous configuration.

    Attributes
    ----------
    concurrency:
        Logical threads whose reads share a model snapshot per round.
        1 = exact sequential incremental SGD.
    batch_size:
        Examples per work item: 1 for Hogwild (LR/SVM), the paper uses
        512 for Hogbatch (MLP).
    shuffle:
        Re-permute the example order each epoch (both the paper's CPU
        and GPU implementations stream random partitions).
    pipeline_block:
        When set (B=1 only), switch from aligned rounds to a
        *pipelined* delay model: updates are issued in blocks of this
        size (a GPU warp: 32), and block *j*'s gradients are computed
        against the model as of block ``j - concurrency/pipeline_block``
        — the state the warp saw when it was scheduled, with
        ``concurrency`` updates still in flight.  This removes the
        round model's implicit mini-batch averaging, which is the
        correct severity for device-scale concurrency: thousands of
        lanes never observe each other's current round.  ``None`` keeps
        the aligned-round model (appropriate for CPU thread counts).
    """

    concurrency: int
    batch_size: int = 1
    shuffle: bool = True
    pipeline_block: int | None = None

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ConfigurationError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.pipeline_block is not None:
            if self.batch_size != 1:
                raise ConfigurationError("pipeline_block requires batch_size == 1")
            if self.pipeline_block < 1:
                raise ConfigurationError("pipeline_block must be >= 1")

    @property
    def pipeline_lag(self) -> int:
        """Blocks of delay a pipelined schedule imposes (0 = aligned)."""
        if self.pipeline_block is None:
            return 0
        return max(1, -(-self.concurrency // self.pipeline_block))

    def work_items(self, order: np.ndarray) -> list[np.ndarray]:
        """Split a permuted example order into work items (row arrays)."""
        n = order.shape[0]
        return [order[i : i + self.batch_size] for i in range(0, n, self.batch_size)]


def apply_updates(params: np.ndarray, updates) -> None:
    """Apply a round's updates to the shared model, in program order.

    Sparse updates scatter-add into their coordinates (duplicates
    accumulate — the per-word atomicity of real Hogwild); dense updates
    add the full delta.
    """
    # Overflow is how divergence manifests mid-epoch; it is detected and
    # reported deliberately (DivergenceError -> the paper's "inf"
    # entries), so the transient RuntimeWarning is pure noise.
    with np.errstate(over="ignore"):
        for idx, delta in updates:
            if idx is None:
                params += delta
            else:
                np.add.at(params, idx, delta)


def _apply_batched(params: np.ndarray, batched: tuple) -> None:
    """Apply one round's :meth:`~repro.models.base.Model.batched_updates`.

    The concatenated sparse scatter accumulates element-by-element in
    row order, so the result is bit-identical to looping
    :func:`apply_updates` over the per-example deltas; the dense form
    applies each delta row in order for the same reason.
    """
    idx, values = batched
    with np.errstate(over="ignore"):
        if idx is not None:
            np.add.at(params, idx, values)
        else:
            for delta in values:
                params += delta


def run_async_epoch(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    params: np.ndarray,
    step: float,
    schedule: AsyncSchedule,
    rng: np.random.Generator,
    telemetry: AnyTelemetry | None = None,
) -> None:
    """Run one asynchronous optimisation epoch in place.

    When *telemetry* is supplied, the epoch's event totals are counted:
    gradient evaluations, updates applied, scheduling rounds, and stale
    reads (work items whose gradient observed a model snapshot older
    than the latest applied update — zero at concurrency 1).

    Raises
    ------
    DivergenceError
        When the parameters become non-finite (the runners translate
        this into the paper's ``inf`` time-to-convergence entries).
    """
    tel = ensure_telemetry(telemetry)
    n = X.shape[0]
    order = rng.permutation(n) if schedule.shuffle else np.arange(n)
    items = schedule.work_items(order)
    C = schedule.concurrency

    # Divergence-prone arithmetic below overflows by design shortly
    # before _check_finite reports it; suppress the noise (see
    # apply_updates).
    if schedule.batch_size == 1:
        serial = getattr(model, "serial_sgd_epoch", None)
        if C == 1 and serial is not None:
            with np.errstate(over="ignore"):
                serial(X, y, order, params, step)
            tel.count(keys.GRAD_EVALS, n)
            tel.count(keys.UPDATES_APPLIED, n)
            tel.count(keys.ASYNC_ROUNDS, n)
            _check_finite(params)
            return
        if schedule.pipeline_lag > 1:
            _run_pipelined(model, X, y, params, step, schedule, order)
            blocks = -(-n // (schedule.pipeline_block or 1))
            tel.count(keys.GRAD_EVALS, n)
            tel.count(keys.UPDATES_APPLIED, n)
            tel.count(keys.ASYNC_ROUNDS, blocks)
            tel.count(keys.STALE_READS, n - min(schedule.pipeline_block or n, n))
            _check_finite(params)
            return
        rounds = 0
        batched = getattr(model, "batched_updates", None)
        with np.errstate(over="ignore"):
            for start in range(0, len(items), C):
                rows = np.concatenate(items[start : start + C])
                if batched is not None:
                    _apply_batched(params, batched(X, y, rows, params, step))
                else:
                    updates = model.example_updates(X, y, rows, params, step)
                    apply_updates(params, updates)
                rounds += 1
        tel.count(keys.GRAD_EVALS, n)
        tel.count(keys.UPDATES_APPLIED, n)
        tel.count(keys.ASYNC_ROUNDS, rounds)
        # Within a round only the first applied update saw the freshest
        # model; the rest read the round-start snapshot.
        tel.count(keys.STALE_READS, max(0, n - rounds))
        _check_finite(params)
        return

    # Batched (Hogbatch) path: each item is one mini-batch.  All of a
    # round's updates are computed before any is applied, so they all
    # observe the model as of the round start — no explicit snapshot
    # copy is needed.
    rounds = 0
    with np.errstate(over="ignore"):
        for start in range(0, len(items), C):
            round_items = items[start : start + C]
            updates = [
                model.batch_update(X, y, rows, params, step) for rows in round_items
            ]
            apply_updates(params, updates)
            rounds += 1
    tel.count(keys.GRAD_EVALS, n)
    tel.count(keys.UPDATES_APPLIED, len(items))
    tel.count(keys.ASYNC_ROUNDS, rounds)
    tel.count(keys.STALE_READS, max(0, len(items) - rounds))
    _check_finite(params)


def _run_pipelined(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    params: np.ndarray,
    step: float,
    schedule: AsyncSchedule,
    order: np.ndarray,
) -> None:
    """Delayed-gradient execution: block j reads the state after block
    ``j - lag`` (earlier blocks read the epoch-start state).

    A bounded history of post-block snapshots provides the stale views;
    memory is ``lag * n_params`` floats, preallocated once as a ring of
    reusable buffers — the steady state allocates nothing per block.
    """
    block = schedule.pipeline_block
    assert block is not None
    lag = schedule.pipeline_lag
    epoch_start = params.copy()
    # Ring of post-block states: once the pipe is full, slot ``j % lag``
    # holds the state after block ``j - lag`` — exactly what a warp
    # scheduled `concurrency` updates ago observed.  Until the pipe
    # fills, the view is the epoch start.  The slot read at block j is
    # overwritten only after that block's updates are fully computed
    # and applied, so the stale view is never clobbered mid-read.
    ring = [np.empty_like(params) for _ in range(lag)]
    n = order.shape[0]
    batched = getattr(model, "batched_updates", None)
    with np.errstate(over="ignore"):
        for j, start in enumerate(range(0, n, block)):
            rows = order[start : start + block]
            slot = j % lag
            stale = ring[slot] if j >= lag else epoch_start
            if batched is not None:
                _apply_batched(params, batched(X, y, rows, stale, step))
            else:
                updates = model.example_updates(X, y, rows, stale, step)
                apply_updates(params, updates)
            np.copyto(ring[slot], params)


def _check_finite(params: np.ndarray) -> None:
    if not np.all(np.isfinite(params)):
        raise DivergenceError("parameters became non-finite during async epoch")
