"""Asynchronous-execution simulation (Hogwild / Hogbatch / Cyclades)."""

from .cyclades import (
    CycladesBatch,
    CycladesSchedule,
    conflict_graph,
    run_cyclades_epoch,
    schedule_batch,
)
from .engine import AsyncSchedule, apply_updates, run_async_epoch

__all__ = [
    "AsyncSchedule",
    "run_async_epoch",
    "apply_updates",
    "CycladesBatch",
    "CycladesSchedule",
    "schedule_batch",
    "conflict_graph",
    "run_cyclades_epoch",
]
