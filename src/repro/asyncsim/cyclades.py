"""Cyclades: conflict-free asynchronous scheduling via graph partitioning.

The paper's related work surveys alternatives to raw Hogwild;
Cyclades [39] (Pan et al., 2016) is the conflict-*avoiding* one: build
the conflict graph over a sampled batch of examples (two examples
conflict when their sparse supports intersect), find its connected
components, and hand each component to one worker.  Within a batch,
workers then touch disjoint model coordinates, so the lock-free parallel
execution is **serially equivalent** — full hardware parallelism at
sequential statistical efficiency, at the price of the scheduling
computation and imbalanced components.

This module implements the scheduler on our CSR substrate (components
via a union-find over example supports; :mod:`networkx` is used for the
graph-analysis utilities exposed to users) and a runner that executes a
Cyclades epoch through the same update machinery as the Hogwild engine.
The serial-equivalence property is asserted by the test suite — it is
the algorithm's defining invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..linalg.csr import CSRMatrix
from ..models.base import Matrix, Model
from ..utils.errors import ConfigurationError, DivergenceError
from .engine import apply_updates

__all__ = ["CycladesBatch", "CycladesSchedule", "schedule_batch", "run_cyclades_epoch", "conflict_graph"]


class _UnionFind:
    """Union-find over example indices (path compression + rank)."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)

    def find(self, a: int) -> int:
        parent = self.parent
        root = a
        while parent[root] != root:
            root = parent[root]
        while parent[a] != root:
            parent[a], a = root, parent[a]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1


@dataclass(frozen=True)
class CycladesBatch:
    """One scheduled batch: conflict-free groups of example indices."""

    #: Example-index arrays; examples in different groups never share a
    #: model coordinate within this batch.
    groups: tuple[np.ndarray, ...]

    @property
    def n_examples(self) -> int:
        """Total examples scheduled in the batch."""
        return int(sum(g.size for g in self.groups))

    @property
    def max_group(self) -> int:
        """Largest group size — the batch's critical path."""
        return max((int(g.size) for g in self.groups), default=0)

    def parallel_efficiency(self, workers: int) -> float:
        """Fraction of ideal speedup this batch's balance permits.

        With *workers* executing groups greedily (longest first), the
        makespan is bounded below by ``max(max_group, n/workers)``.
        """
        if self.n_examples == 0:
            return 1.0
        ideal = self.n_examples / workers
        makespan = max(self.max_group, ideal)
        return ideal / makespan


@dataclass(frozen=True)
class CycladesSchedule:
    """Parameters of Cyclades execution."""

    #: Examples sampled per scheduling batch.
    batch_size: int = 512
    #: Workers the groups are distributed over (affects the efficiency
    #: accounting, not the numerics — execution is serially equivalent).
    workers: int = 56

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")


def schedule_batch(X: CSRMatrix, rows: np.ndarray) -> CycladesBatch:
    """Partition *rows* into conflict-free groups (connected components).

    Union-find over the batch's bipartite example-feature incidence:
    every feature links all batch examples containing it, so two
    examples end in the same group iff they are connected through
    shared coordinates — exactly the conflict-graph components.
    """
    rows = np.asarray(rows, dtype=np.int64)
    uf = _UnionFind(rows.size)
    first_owner: dict[int, int] = {}
    for k, r in enumerate(rows):
        idx, _ = X.row(int(r))
        for j in idx:
            j = int(j)
            if j in first_owner:
                uf.union(first_owner[j], k)
            else:
                first_owner[j] = k
    components: dict[int, list[int]] = {}
    for k in range(rows.size):
        components.setdefault(uf.find(k), []).append(k)
    groups = tuple(
        rows[np.asarray(members, dtype=np.int64)]
        for members in sorted(components.values(), key=len, reverse=True)
    )
    return CycladesBatch(groups=groups)


def conflict_graph(X: CSRMatrix, rows: np.ndarray) -> nx.Graph:
    """The explicit conflict graph of a batch (analysis/visualisation).

    Nodes are example indices; an edge joins two examples sharing at
    least one feature.  Built feature-by-feature as a union of cliques
    (represented sparsely as stars plus chain edges, which preserves
    connectivity — and hence components — without quadratic blowup).
    """
    rows = np.asarray(rows, dtype=np.int64)
    g = nx.Graph()
    g.add_nodes_from(int(r) for r in rows)
    owners: dict[int, int] = {}
    for r in rows:
        idx, _ = X.row(int(r))
        for j in idx:
            j = int(j)
            if j in owners and owners[j] != int(r):
                g.add_edge(owners[j], int(r))
            else:
                owners[j] = int(r)
    return g


def run_cyclades_epoch(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    params: np.ndarray,
    step: float,
    schedule: CycladesSchedule,
    rng: np.random.Generator,
) -> float:
    """One Cyclades epoch in place; returns the mean parallel efficiency.

    Each scheduling batch is partitioned into conflict-free groups;
    groups execute "in parallel" (order between groups is irrelevant —
    they are coordinate-disjoint) while updates inside a group are
    applied serially.  The numerical result is therefore identical to
    a serial pass in the scheduled order, which the tests assert.
    """
    if not isinstance(X, CSRMatrix):
        raise ConfigurationError(
            "Cyclades needs sparse supports; dense data is one giant conflict "
            "component (use the Hogwild engine instead)"
        )
    n = X.shape[0]
    order = rng.permutation(n)
    serial = getattr(model, "serial_sgd_epoch", None)
    efficiencies = []
    for start in range(0, n, schedule.batch_size):
        batch_rows = order[start : start + schedule.batch_size]
        batch = schedule_batch(X, batch_rows)
        efficiencies.append(batch.parallel_efficiency(schedule.workers))
        for group in batch.groups:
            # Serial execution *within* a group (its examples conflict);
            # groups are coordinate-disjoint, so any interleaving across
            # groups is equivalent to this order.
            if serial is not None:
                serial(X, y, group, params, step)
            else:
                for r in group:
                    updates = model.example_updates(
                        X, y, np.asarray([r]), params, step
                    )
                    apply_updates(params, updates)
    if not np.all(np.isfinite(params)):
        raise DivergenceError("parameters became non-finite during cyclades epoch")
    return float(np.mean(efficiencies)) if efficiencies else 1.0
