"""Thread-count scalability sweeps over the CPU model.

The paper reports two CPU points per configuration (sequential and all
56 threads); its extended report and the DimmWitted study it builds on
[40] examine the full scaling curve.  These helpers produce that curve
from the same traces/workloads: time per epoch and speedup at every
thread count, with the interesting structure annotated — where the
cache-residency regime shifts, where the coherence floor bites, where
hyper-threading stops paying.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..linalg.trace import Trace
from .cpu import CpuModel
from .workload import AsyncWorkload

__all__ = ["ScalingPoint", "ScalingCurve", "sync_scaling", "async_scaling"]

#: Default sweep: powers of two up to the machine plus the exact limits.
_DEFAULT_THREADS = (1, 2, 4, 8, 14, 28, 42, 56)


@dataclass(frozen=True)
class ScalingPoint:
    """One thread count's epoch time and derived efficiencies."""

    threads: int
    time: float
    speedup: float

    @property
    def efficiency(self) -> float:
        """Speedup per thread (1.0 = perfect linear scaling)."""
        return self.speedup / self.threads


@dataclass
class ScalingCurve:
    """A full thread sweep for one configuration."""

    label: str
    points: list[ScalingPoint] = field(default_factory=list)

    @property
    def best(self) -> ScalingPoint:
        """The fastest point of the sweep."""
        return min(self.points, key=lambda p: p.time)

    @property
    def peak_speedup(self) -> float:
        """Largest speedup over sequential reached anywhere."""
        return max(p.speedup for p in self.points)

    @property
    def superlinear(self) -> bool:
        """Whether any point beats perfect linear scaling."""
        return any(p.speedup > p.threads for p in self.points)

    @property
    def scaling_collapses(self) -> bool:
        """Whether adding threads ever made things *slower* than serial
        (the dense-Hogwild coherence signature)."""
        return any(p.speedup < 1.0 for p in self.points[1:])

    def monotone_through(self) -> int:
        """Largest thread count up to which speedup is non-decreasing."""
        last = 0.0
        best_t = self.points[0].threads if self.points else 0
        for p in self.points:
            if p.speedup + 1e-12 < last:
                break
            last = p.speedup
            best_t = p.threads
        return best_t


def sync_scaling(
    cpu: CpuModel,
    trace: Trace,
    working_set_bytes: float,
    threads: tuple[int, ...] = _DEFAULT_THREADS,
    label: str = "sync",
) -> ScalingCurve:
    """Sweep a synchronous epoch trace over thread counts."""
    if not threads or threads[0] != 1:
        raise ValueError("the sweep must start at 1 thread (the baseline)")
    base = cpu.sync_epoch_time(trace, 1, working_set_bytes)
    curve = ScalingCurve(label=label)
    for t in threads:
        time = cpu.sync_epoch_time(trace, t, working_set_bytes)
        curve.points.append(ScalingPoint(threads=t, time=time, speedup=base / time))
    return curve


def async_scaling(
    cpu: CpuModel,
    workload: AsyncWorkload,
    threads: tuple[int, ...] = _DEFAULT_THREADS,
    label: str = "async",
) -> ScalingCurve:
    """Sweep an asynchronous workload over thread counts.

    Only the hardware axis is swept; the statistical effect of the
    growing concurrency is the asynchrony simulator's job (the two are
    composed by the experiment drivers).
    """
    if not threads or threads[0] != 1:
        raise ValueError("the sweep must start at 1 thread (the baseline)")
    base = cpu.async_epoch_time(workload, 1)
    curve = ScalingCurve(label=label)
    for t in threads:
        time = cpu.async_epoch_time(workload, t)
        curve.points.append(ScalingPoint(threads=t, time=time, speedup=base / time))
    return curve
