"""Hardware specifications for the paper's two machines (Fig. 5).

The analytical performance models are parameterised by these dataclasses
so alternative machines can be described; the shipped constants are the
paper's dual-socket Xeon E5-2660 v4 NUMA box and one card of an NVIDIA
Tesla K80.  Throughput/latency numbers not listed in the paper's Fig. 5
are taken from the vendors' public specifications for those parts:

* E5-2660 v4: 14 cores/socket, 2.0 GHz base, AVX2 (4-wide FMA -> 16
  DP flop/cycle/core peak), 32+32 KB L1, 256 KB L2 per core, 35 MB L3
  per socket, 4-channel DDR4-2400 -> 76.8 GB/s per socket.
* Tesla K80 (per card): 13 SMX, 192 cores each (2496), 875 MHz boost,
  1/3 DP ratio -> ~1.45 TFLOP/s DP, 1.5 MB L2, 12 GB GDDR5 at 240 GB/s,
  32-wide warps.

Only *ratios* of model outputs are compared to the paper (who wins and
by what factor); absolute times are indicative.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.units import GiB, KiB, MiB

__all__ = ["CpuSpec", "GpuSpec", "XEON_E5_2660V4_DUAL", "TESLA_K80"]


@dataclass(frozen=True)
class CpuSpec:
    """A NUMA multi-core CPU (Section II, Fig. 3).

    Bandwidths are per-core sustained figures for data resident at each
    level; `dram_bw_core_stream` vs `dram_bw_core_latency` distinguish
    prefetch-friendly streaming from pointer-chasing access, which is
    what makes a single core unable to saturate the memory channels.
    """

    name: str
    sockets: int
    cores_per_socket: int
    threads_per_core: int
    clock_ghz: float
    #: Peak double-precision flops per cycle per core (SIMD FMA width).
    dp_flops_per_cycle: float
    #: Fraction of peak achievable when code is not SIMD-vectorisable.
    scalar_efficiency: float
    l1_bytes_per_core: int
    l2_bytes_per_core: int
    l3_bytes_per_socket: int
    dram_bytes: int
    #: Sustained per-core bandwidth by residency level (bytes/sec).
    l1_bw_core: float
    l2_bw_core: float
    l3_bw_core: float
    dram_bw_core_stream: float
    dram_bw_core_latency: float
    #: Per-socket DRAM bandwidth ceiling (bytes/sec).
    dram_bw_socket: float
    #: L3 bandwidth ceiling per socket (shared resource).
    l3_bw_socket: float
    #: Latency of a coherence miss (line owned by another core), sec.
    coherence_latency: float
    #: Latency of an L1 hit, sec (baseline for model-access costing).
    l1_latency: float
    #: Fork/join overhead per parallel kernel launch, sec.
    parallel_overhead: float
    #: Round-trip time of one cache-line ownership transfer under
    #: write contention (request + invalidate + data), sec.  Writes to
    #: a hot line serialise at this rate — the Hogwild throughput floor.
    line_transfer_time: float = 500e-9
    #: Fixed per-update-step instruction overhead of the incremental
    #: SGD loop (indexing, branches, loop control), sec.
    async_step_overhead: float = 150e-9
    #: Throughput efficiency of hyper-threads beyond physical cores.
    smt_efficiency: float = 0.45
    #: Effective fraction of the shared L3 a *single* sequential scan
    #: can exploit.  One core streaming the whole dataset thrashes the
    #: LRU sets and gets little epoch-to-epoch reuse — the paper's
    #: "none of these datasets can be cached on a single core for
    #: sequential execution" (Section IV-B).  Partitioned parallel
    #: scans use the full capacity.
    seq_l3_fraction: float = 0.10

    @property
    def physical_cores(self) -> int:
        """Total physical cores across sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def max_threads(self) -> int:
        """Total hardware threads (the paper uses all 56)."""
        return self.physical_cores * self.threads_per_core

    @property
    def core_flops(self) -> float:
        """Peak DP flops/sec of one core."""
        return self.clock_ghz * 1e9 * self.dp_flops_per_cycle

    def effective_cores(self, threads: int) -> float:
        """Throughput-equivalent cores for a given thread count.

        Hyper-threads share execution units, so threads beyond the
        physical core count contribute only ``smt_efficiency`` each.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        threads = min(threads, self.max_threads)
        phys = min(threads, self.physical_cores)
        extra = threads - phys
        return phys + self.smt_efficiency * extra

    def sockets_engaged(self, threads: int) -> int:
        """Sockets hosting at least one thread (scatter placement)."""
        if threads <= 1:
            return 1
        return min(self.sockets, max(1, -(-threads // self.cores_per_socket)))


@dataclass(frozen=True)
class GpuSpec:
    """A CUDA GPU (Section II, Fig. 4)."""

    name: str
    multiprocessors: int
    cores_per_mp: int
    warp_size: int
    clock_ghz: float
    #: Peak DP flops/sec of the whole device.
    dp_flops: float
    l2_bytes: int
    global_bytes: int
    #: Global-memory bandwidth, bytes/sec.
    global_bw: float
    #: Time to issue one kernel launch from the host, sec.
    kernel_launch_overhead: float
    #: Size of one memory transaction (coalesced segment), bytes.
    transaction_bytes: int
    #: Sustained random-transaction rate (memory-level parallelism
    #: limited), transactions/sec — governs sparse gathers.
    random_transaction_rate: float
    #: Resident warps the scheduler keeps in flight device-wide.
    warps_in_flight: int
    #: Throughput efficiency for batched dense kernels (GEMM-like).
    gemm_efficiency: float = 0.70
    #: Throughput efficiency for bandwidth-bound elementwise kernels.
    stream_efficiency: float = 0.80

    @property
    def total_cores(self) -> int:
        """Total CUDA cores."""
        return self.multiprocessors * self.cores_per_mp

    @property
    def concurrent_threads(self) -> int:
        """Threads resident simultaneously (warps x warp size)."""
        return self.warps_in_flight * self.warp_size


#: The paper's CPU: 2x Intel Xeon E5-2660 v4 (56 hardware threads).
XEON_E5_2660V4_DUAL = CpuSpec(
    name="2x Xeon E5-2660 v4",
    sockets=2,
    cores_per_socket=14,
    threads_per_core=2,
    clock_ghz=2.0,
    dp_flops_per_cycle=16.0,
    scalar_efficiency=0.12,
    l1_bytes_per_core=32 * KiB,
    l2_bytes_per_core=256 * KiB,
    l3_bytes_per_socket=35 * MiB,
    dram_bytes=256 * GiB,
    l1_bw_core=120e9,
    l2_bw_core=55e9,
    l3_bw_core=25e9,
    dram_bw_core_stream=12e9,
    dram_bw_core_latency=4e9,
    dram_bw_socket=76.8e9,
    l3_bw_socket=110e9,
    coherence_latency=120e-9,
    l1_latency=1.5e-9,
    parallel_overhead=4e-6,
)

#: One card of the paper's NVIDIA Tesla K80.
TESLA_K80 = GpuSpec(
    name="Tesla K80 (one card)",
    multiprocessors=13,
    cores_per_mp=192,
    warp_size=32,
    clock_ghz=0.875,
    dp_flops=1.45e12,
    l2_bytes=1536 * KiB,
    global_bytes=12 * GiB,
    global_bw=240e9,
    kernel_launch_overhead=8e-6,
    transaction_bytes=32,
    random_transaction_rate=1.6e9,
    warps_in_flight=13 * 16,
)
