"""Cache-residency model for the NUMA CPU.

The paper's most striking synchronous-CPU result is *super-linear*
parallel speedup (>400x on w8a, Section IV-B), explained by aggregate
cache capacity: 56 threads bring 56 private L1/L2 slices, so a dataset
that spills to L3/DRAM on one core becomes cache-resident when the work
is partitioned.  This module decides, for a given working-set size and
thread count, which level of the hierarchy the data effectively streams
from, and what aggregate bandwidth that level sustains.

The decision uses *aggregate inclusive* capacities: level L holds the
working set when the sum of all engaged private slices of L plus the
faster levels reaches the working-set size.  Bandwidth is the per-core
figure for that level times the effective core count, clipped by the
shared-resource ceiling (per-socket L3/DRAM bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .spec import CpuSpec

__all__ = ["MemLevel", "Residency", "residency", "effective_bandwidth"]


class MemLevel(str, Enum):
    """Memory-hierarchy levels (CPU side)."""

    L1 = "L1"
    L2 = "L2"
    L3 = "L3"
    DRAM = "DRAM"


@dataclass(frozen=True)
class Residency:
    """Where a working set effectively lives for a given thread count."""

    level: MemLevel
    #: Aggregate capacity of the chosen level (bytes).
    capacity: float
    #: Aggregate sustainable bandwidth at that level (bytes/sec).
    bandwidth: float


def residency(
    spec: CpuSpec,
    working_set_bytes: float,
    threads: int,
    streaming: bool = True,
    hot: bool = False,
) -> Residency:
    """Determine the residency level and bandwidth for a working set.

    Parameters
    ----------
    spec:
        CPU description.
    working_set_bytes:
        Bytes touched repeatedly across an epoch (dataset + model +
        intermediates).
    threads:
        Worker threads; each engaged core contributes its private
        slices.
    streaming:
        Whether the access pattern is prefetch-friendly.  Affects only
        the DRAM level: a lone pointer-chasing thread achieves far less
        than the channel bandwidth.
    hot:
        A *hot* working set (the shared model: touched on every step)
        keeps its L3 residency even for one thread; a cold epoch-long
        scan from a single core only exploits ``seq_l3_fraction`` of L3
        (LRU thrash — the paper's "cannot be cached on a single core").
    """
    if working_set_bytes < 0:
        raise ValueError("working_set_bytes must be non-negative")
    threads = max(1, min(threads, spec.max_threads))
    cores = min(threads, spec.physical_cores)
    eff = spec.effective_cores(threads)
    sockets = spec.sockets_engaged(threads)

    l1_cap = cores * spec.l1_bytes_per_core
    l2_cap = l1_cap + cores * spec.l2_bytes_per_core
    l3_share = 1.0 if (threads > 1 or hot) else spec.seq_l3_fraction
    l3_cap = l2_cap + sockets * spec.l3_bytes_per_socket * l3_share

    if working_set_bytes <= l1_cap:
        bw = eff * spec.l1_bw_core
        return Residency(MemLevel.L1, l1_cap, bw)
    if working_set_bytes <= l2_cap:
        bw = eff * spec.l2_bw_core
        return Residency(MemLevel.L2, l2_cap, bw)
    if working_set_bytes <= l3_cap:
        bw = min(eff * spec.l3_bw_core, sockets * spec.l3_bw_socket)
        return Residency(MemLevel.L3, l3_cap, bw)
    per_core = spec.dram_bw_core_stream if streaming else spec.dram_bw_core_latency
    bw = min(eff * per_core, sockets * spec.dram_bw_socket)
    return Residency(MemLevel.DRAM, float(spec.dram_bytes), bw)


def effective_bandwidth(
    spec: CpuSpec,
    working_set_bytes: float,
    threads: int,
    streaming: bool = True,
) -> float:
    """Shorthand for ``residency(...).bandwidth``."""
    return residency(spec, working_set_bytes, threads, streaming).bandwidth
