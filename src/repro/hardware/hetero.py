"""Heterogeneous CPU+GPU execution — the paper's future-work question.

The conclusions propose to "study heterogeneous solutions that integrate
concurrent processing across CPU and GPU" (Section VI).  This module
answers the synchronous half of that question with the same analytical
machinery as the single-device models: each data-parallel kernel is
split between the CPU and the GPU, both work concurrently on their
share, and the partial results are merged over PCIe.

For one kernel with CPU time ``Tc`` (all work on CPU) and GPU time
``Tg`` (all on GPU, launch included), giving the CPU a fraction ``f``
costs ``max(f*Tc, (1-f)*Tg)``; the optimum ``f* = Tg / (Tc + Tg)``
balances the devices at the harmonic combination
``Tc*Tg / (Tc + Tg)`` — strictly better than either device alone,
by at most 2x (when the devices are evenly matched) and by almost
nothing when one dominates.  On top of the per-kernel time the epoch
pays a merge: the model/partial-gradient transfer over PCIe plus a
fixed synchronisation cost per kernel.

The headline the model produces (and the benchmark asserts): CPU+GPU
helps exactly where the paper found the devices closest — dense
low-dimensional LR/SVM (Table II gaps of 1.2-1.6x) — and is pointless
for the MLP, where the serial ViennaCL weight-gradient products leave
the CPU far behind.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..linalg.trace import OpRecord, Trace
from .cpu import CpuModel
from .gpu import GpuModel

__all__ = ["HeteroModel", "HeteroSplit"]

#: PCIe 3.0 x16 effective bandwidth (the K80's link), bytes/sec.
_PCIE_BANDWIDTH = 12e9

#: Fixed host/device synchronisation cost per jointly executed kernel.
_SYNC_OVERHEAD = 15e-6


@dataclass(frozen=True)
class HeteroSplit:
    """The optimal split of one kernel across the two devices."""

    cpu_fraction: float
    time: float
    cpu_alone: float
    gpu_alone: float

    @property
    def beneficial(self) -> bool:
        """Whether splitting beat running on the better single device."""
        return self.time < min(self.cpu_alone, self.gpu_alone)


class HeteroModel:
    """Cost model for concurrent CPU+GPU synchronous execution."""

    def __init__(
        self,
        cpu: CpuModel | None = None,
        gpu: GpuModel | None = None,
        threads: int | None = None,
        pcie_bandwidth: float = _PCIE_BANDWIDTH,
        sync_overhead: float = _SYNC_OVERHEAD,
    ) -> None:
        self.cpu = cpu or CpuModel()
        self.gpu = gpu or GpuModel()
        self.threads = threads or self.cpu.spec.max_threads
        self.pcie_bandwidth = float(pcie_bandwidth)
        self.sync_overhead = float(sync_overhead)

    # -- per-kernel splitting ---------------------------------------------

    def split_op(self, op: OpRecord, working_set_bytes: float) -> HeteroSplit:
        """Optimal CPU share of one kernel and the resulting time.

        Kernels without example-level parallelism (``parallel_tasks``
        of 1, e.g. the serial ViennaCL GEMMs) cannot be split; they run
        wholly on the faster device.
        """
        cpu_alone = self.cpu.op_time(op, self.threads, working_set_bytes)
        gpu_alone = self.gpu.op_time(op)
        if op.parallel_tasks < 2:
            best = min(cpu_alone, gpu_alone)
            return HeteroSplit(
                cpu_fraction=1.0 if cpu_alone <= gpu_alone else 0.0,
                time=best,
                cpu_alone=cpu_alone,
                gpu_alone=gpu_alone,
            )
        f_star = gpu_alone / (cpu_alone + gpu_alone)
        combined = (cpu_alone * gpu_alone) / (cpu_alone + gpu_alone)
        combined += self.sync_overhead
        if combined >= min(cpu_alone, gpu_alone):
            # Splitting overhead ate the benefit: stay on one device.
            best = min(cpu_alone, gpu_alone)
            return HeteroSplit(
                cpu_fraction=1.0 if cpu_alone <= gpu_alone else 0.0,
                time=best,
                cpu_alone=cpu_alone,
                gpu_alone=gpu_alone,
            )
        return HeteroSplit(
            cpu_fraction=f_star,
            time=combined,
            cpu_alone=cpu_alone,
            gpu_alone=gpu_alone,
        )

    # -- epoch costing --------------------------------------------------------

    def merge_cost(self, model_bytes: float) -> float:
        """Per-epoch cost of merging the devices' partial gradients.

        The smaller device's partial gradient crosses PCIe once in each
        direction (gather + broadcast of the updated model).
        """
        return 2.0 * model_bytes / self.pcie_bandwidth

    def sync_epoch_time(
        self, trace: Trace, working_set_bytes: float, model_bytes: float
    ) -> float:
        """Time of one synchronous epoch with both devices cooperating."""
        total = sum(self.split_op(op, working_set_bytes).time for op in trace)
        return total + self.merge_cost(model_bytes)

    def speedup_over_best_single(
        self, trace: Trace, working_set_bytes: float, model_bytes: float
    ) -> float:
        """How much the pairing beats the better single device (>= ~1)."""
        hetero = self.sync_epoch_time(trace, working_set_bytes, model_bytes)
        cpu_time = self.cpu.sync_epoch_time(trace, self.threads, working_set_bytes)
        gpu_time = self.gpu.sync_epoch_time(trace)
        return min(cpu_time, gpu_time) / hetero
