"""Analytical GPU performance model.

Costs the same operation traces / async workloads as the CPU model, but
with GPU mechanics (Section II of the paper):

* **kernel-launch overhead** per primitive — synchronous SGD issues one
  kernel per blocking linear-algebra call;
* **throughput roofline** — device flops vs. global-memory bandwidth;
  skinny GEMMs (tiny inner/record dimensions, the MLP case) cannot fill
  the SIMD lanes and get a shape-derated efficiency;
* **memory coalescing** — regular kernels move whole 32-byte
  transactions; data-dependent gathers pay one transaction per touched
  line, bounded by the device's random-transaction rate;
* **warp divergence** — a warp retires with its slowest lane, so sparse
  Hogwild pays the workload's measured max/mean row-length factor
  ("This forces threads to stall while longer examples finish",
  Section IV-B);
* **atomic contention** — concurrent updates to the same model line
  serialise; warp-shuffle pre-aggregation removes intra-warp conflicts
  (the optimisation the paper adopts) but inter-warp contention
  remains.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..linalg.trace import OpKind, OpRecord, Trace
from ..telemetry import keys
from ..telemetry.session import AnyTelemetry, ensure_telemetry
from .spec import TESLA_K80, GpuSpec
from .workload import AsyncWorkload

__all__ = ["GpuModel", "GpuCostBreakdown"]

#: Fraction of peak device flops per op kind.
_KIND_EFFICIENCY: dict[OpKind, float] = {
    OpKind.GEMM: 0.70,
    OpKind.GEMV: 0.50,
    OpKind.ELEMENTWISE: 0.60,
    OpKind.REDUCTION: 0.45,
    OpKind.SPMV: 0.40,
    OpKind.GATHER_SCATTER: 0.15,
    OpKind.DATA_LOAD: 0.60,
}

#: Bandwidth deflation for ViennaCL's (well-optimised) sparse GPU
#: kernels — far milder than the CPU's irregular penalty, which is why
#: the synchronous GPU/CPU gap *grows* with sparsity (Table II, news).
_GPU_IRREGULAR_PENALTY = 1.4

#: Efficiency of the per-example Hogwild kernel's scalar lane code.
_ASYNC_LANE_EFFICIENCY = 0.12

#: Service time of one serialised atomic line update (sec); with
#: warp-shuffle the per-warp aggregate is one such update per line.
_ATOMIC_SERVICE = 200e-9


@dataclass(frozen=True)
class GpuCostBreakdown:
    """Per-epoch GPU cost decomposition."""

    total: float
    compute: float
    memory: float
    launch: float
    atomics: float = 0.0


class GpuModel:
    """Cost model for one GPU device."""

    def __init__(
        self,
        spec: GpuSpec = TESLA_K80,
        irregular_penalty: float = _GPU_IRREGULAR_PENALTY,
        warp_shuffle: bool = True,
    ) -> None:
        self.spec = spec
        self.irregular_penalty = float(irregular_penalty)
        #: The paper's intra-warp conflict-reduction optimisation; the
        #: ablation benchmark flips this off.
        self.warp_shuffle = bool(warp_shuffle)

    # -- synchronous (trace-driven) ------------------------------------------

    def _gemm_shape_efficiency(self, op: OpRecord) -> float:
        """Derate skinny matrix products (tiny inner or output columns).

        From the recorded quantities: rows = parallel_tasks, columns =
        result_size / rows, inner = flops / (2 * result_size).  A GEMM
        with cols*inner below ~1k elements cannot keep the SIMD units
        busy — exactly the paper's MLP layers (at most 10 output
        columns).
        """
        rows = max(1, op.parallel_tasks)
        cols = max(1.0, op.result_size / rows)
        inner = max(1.0, op.flops / max(2.0 * op.result_size, 1.0))
        fill = min(1.0, cols / 24.0) * min(1.0, inner / 64.0)
        return max(0.03, fill)

    def op_time(self, op: OpRecord) -> float:
        """Launch + roofline time of one kernel."""
        spec = self.spec
        eff = _KIND_EFFICIENCY[op.kind]
        if op.kind is OpKind.GEMM:
            eff *= self._gemm_shape_efficiency(op)
        elif op.kind in (OpKind.ELEMENTWISE, OpKind.REDUCTION, OpKind.GATHER_SCATTER):
            # 1-D kernels with few work items cannot occupy the lanes.
            # Matrix kernels (GEMM/GEMV/SPMV) expose 2-D / split-K
            # parallelism and are handled by the shape derate instead.
            occupancy = min(1.0, op.parallel_tasks / (2.0 * spec.total_cores))
            eff *= max(occupancy, 0.05)
        compute = op.flops / (spec.dp_flops * eff) if op.flops else 0.0
        penalty = self.irregular_penalty if op.irregular else 1.0
        memory = (
            op.bytes_total * penalty / (spec.global_bw * spec.stream_efficiency)
            if op.bytes_total
            else 0.0
        )
        return spec.kernel_launch_overhead + max(compute, memory)

    def sync_epoch_time(
        self, trace: Trace, telemetry: AnyTelemetry | None = None
    ) -> float:
        """Time of one synchronous epoch on the GPU.

        With *telemetry*, the costed epoch's modelled work is counted:
        flops, bytes, and one kernel launch per primitive.
        """
        tel = ensure_telemetry(telemetry)
        tel.count(keys.FLOPS_MODELLED, trace.total_flops)
        tel.count(keys.BYTES_MOVED, trace.total_bytes)
        tel.count(keys.KERNEL_LAUNCHES, len(trace))
        return sum(self.op_time(op) for op in trace)

    def sync_breakdown(self, trace: Trace) -> GpuCostBreakdown:
        """Compute/memory/launch decomposition of a synchronous epoch."""
        compute = memory = launch = 0.0
        for op in trace:
            spec = self.spec
            eff = _KIND_EFFICIENCY[op.kind]
            if op.kind is OpKind.GEMM:
                eff *= self._gemm_shape_efficiency(op)
            elif op.kind in (
                OpKind.ELEMENTWISE,
                OpKind.REDUCTION,
                OpKind.GATHER_SCATTER,
            ):
                occupancy = min(1.0, op.parallel_tasks / (2.0 * spec.total_cores))
                eff *= max(occupancy, 0.05)
            compute += op.flops / (spec.dp_flops * eff) if op.flops else 0.0
            pen = self.irregular_penalty if op.irregular else 1.0
            memory += (
                op.bytes_total * pen / (spec.global_bw * spec.stream_efficiency)
                if op.bytes_total
                else 0.0
            )
            launch += spec.kernel_launch_overhead
        return GpuCostBreakdown(
            total=self.sync_epoch_time(trace),
            compute=compute,
            memory=memory,
            launch=launch,
        )

    # -- asynchronous (workload-driven) ----------------------------------------

    @property
    def async_concurrency(self) -> int:
        """Logical threads updating the model concurrently.

        For per-example Hogwild this is every resident thread; for
        Hogbatch the device runs one batch-kernel at a time (the
        paper: "there is only one kernel performing on the GPU at any
        given time instant"), so concurrency degenerates to ~1 batch.
        """
        return self.spec.concurrent_threads

    def async_epoch_time(
        self, w: AsyncWorkload, telemetry: AnyTelemetry | None = None
    ) -> float:
        """Time of one asynchronous epoch on the GPU."""
        return self.async_breakdown(w, telemetry).total

    def async_breakdown(
        self, w: AsyncWorkload, telemetry: AnyTelemetry | None = None
    ) -> GpuCostBreakdown:
        tel = ensure_telemetry(telemetry)
        tel.count(keys.FLOPS_MODELLED, w.flops_per_step * w.steps_per_epoch)
        spec = self.spec
        if w.examples_per_step > 1:
            # Hogbatch: a stream of small synchronous-style kernels, one
            # batch at a time.  ~10 primitive launches per batch step
            # (forward GEMMs, activations, backward GEMMs, update).
            launches_per_step = 10.0
            occupancy = min(1.0, w.examples_per_step / (2.0 * spec.total_cores))
            eff = 0.5 * max(occupancy, 0.05)
            compute = w.flops_per_step / (spec.dp_flops * eff)
            mem_bytes = w.data_bytes_per_step + 3.0 * w.model_bytes
            memory = mem_bytes / (spec.global_bw * spec.stream_efficiency)
            per_step = launches_per_step * spec.kernel_launch_overhead + max(
                compute, memory
            )
            n = w.steps_per_epoch
            tel.count(keys.BYTES_MOVED, n * mem_bytes)
            tel.count(keys.KERNEL_LAUNCHES, n * launches_per_step)
            return GpuCostBreakdown(
                total=n * per_step,
                compute=n * compute,
                memory=n * memory,
                launch=n * launches_per_step * spec.kernel_launch_overhead,
            )

        # Per-example Hogwild kernel: one thread per example.
        n = w.steps_per_epoch
        divergence = w.warp_divergence
        compute = (
            n
            * w.flops_per_step
            * divergence
            / (spec.dp_flops * _ASYNC_LANE_EFFICIENCY)
        )
        if w.dense_update:
            # Contiguous per-thread rows and model lines coalesce well.
            data_tx = w.data_bytes_per_step / spec.transaction_bytes
            model_tx = 2.0 * w.model_lines_per_step
            tx_per_step = data_tx + model_tx
        else:
            # Each touched line is its own transaction; the warp stalls
            # until the slowest lane's gather list is resolved.
            data_tx = w.data_bytes_per_step / spec.transaction_bytes
            model_tx = 2.0 * w.model_lines_per_step * divergence
            tx_per_step = data_tx + model_tx
        memory = n * tx_per_step / spec.random_transaction_rate

        # Hot-line atomic floor: the most popular model line receives
        # ``n * f_max`` atomic updates per epoch; with warp-shuffle the
        # 32 lanes of a warp pre-aggregate in registers, cutting the
        # serialised update count by the warp width (the optimisation
        # the paper adopts; ablated in benchmarks).
        f_max = w.line_stats.max_frequency
        updates_to_hot_line = n * f_max
        if self.warp_shuffle:
            updates_to_hot_line /= spec.warp_size
        atomics_floor = updates_to_hot_line * _ATOMIC_SERVICE
        tel.count(keys.BYTES_MOVED, n * tx_per_step * spec.transaction_bytes)
        tel.count(keys.KERNEL_LAUNCHES, 1)
        tel.count(keys.ATOMIC_HOTLINE_UPDATES, updates_to_hot_line)
        total = max(compute, memory, atomics_floor) + spec.kernel_launch_overhead
        return GpuCostBreakdown(
            total=total,
            compute=compute,
            memory=memory,
            launch=spec.kernel_launch_overhead,
            atomics=atomics_floor,
        )
