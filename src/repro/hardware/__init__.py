"""Hardware models: the analytical substitute for the paper's machines.

See DESIGN.md section 2 for the substitution argument.  Public surface:

* :class:`CpuSpec` / :class:`GpuSpec` and the paper's machines
  (:data:`XEON_E5_2660V4_DUAL`, :data:`TESLA_K80`);
* :class:`CpuModel` / :class:`GpuModel` — epoch-time estimators for
  synchronous traces and asynchronous workloads;
* cache residency and coherence-conflict statistics.
"""

from .cache import MemLevel, Residency, effective_bandwidth, residency
from .coherence import (
    LineStats,
    dense_line_frequencies,
    line_frequencies_from_csr,
    zipf_line_frequencies,
)
from .cpu import CpuCostBreakdown, CpuModel
from .gpu import GpuCostBreakdown, GpuModel
from .hetero import HeteroModel, HeteroSplit
from .sweep import ScalingCurve, ScalingPoint, async_scaling, sync_scaling
from .spec import TESLA_K80, XEON_E5_2660V4_DUAL, CpuSpec, GpuSpec
from .workload import AsyncWorkload, warp_divergence_factor

__all__ = [
    "CpuSpec",
    "GpuSpec",
    "XEON_E5_2660V4_DUAL",
    "TESLA_K80",
    "MemLevel",
    "Residency",
    "residency",
    "effective_bandwidth",
    "LineStats",
    "line_frequencies_from_csr",
    "dense_line_frequencies",
    "zipf_line_frequencies",
    "CpuModel",
    "CpuCostBreakdown",
    "GpuModel",
    "HeteroModel",
    "HeteroSplit",
    "GpuCostBreakdown",
    "AsyncWorkload",
    "ScalingCurve",
    "ScalingPoint",
    "sync_scaling",
    "async_scaling",
    "warp_divergence_factor",
]
