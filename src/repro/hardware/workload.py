"""Asynchronous-SGD workload descriptions for the hardware models.

Synchronous epochs are costed from recorded operation traces; the
asynchronous algorithms instead perform millions of tiny dependent
steps whose cost structure is better captured by per-step statistics:

* how many model cache lines a step reads/writes (conflict footprint);
* how many flops a step performs;
* how many bytes of training data it streams;
* how imbalanced steps are across a 32-lane warp (GPU divergence);
* the line-popularity statistics for coherence/atomic contention.

:class:`AsyncWorkload` bundles these.  The constructors derive them
from the dataset profile at *full paper scale* (hardware efficiency is
reported for the paper's dataset sizes; statistical efficiency is
measured on the scaled data — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.profiles import DatasetProfile
from ..datasets.synthetic import Dataset
from ..models.base import Model
from ..utils.rng import derive_rng
from ..utils.units import CACHE_LINE_BYTES, FLOAT64_BYTES, INT32_BYTES
from .coherence import LineStats, dense_line_frequencies, zipf_line_frequencies

__all__ = ["AsyncWorkload", "warp_divergence_factor"]

_PER_LINE = CACHE_LINE_BYTES // FLOAT64_BYTES


def warp_divergence_factor(
    row_nnz: np.ndarray, warp_size: int = 32, n_samples: int = 2048, seed: int = 7
) -> float:
    """Expected ``max/mean`` of per-example work across a warp.

    A warp retires with its slowest lane, so the sparse Hogwild kernel
    pays the *maximum* row length of each 32-example group rather than
    the mean.  Estimated by sampling warps from the realised row-nnz
    distribution; equals 1.0 for constant-length rows (dense data).
    """
    row_nnz = np.asarray(row_nnz, dtype=np.float64)
    row_nnz = row_nnz[row_nnz > 0]
    if row_nnz.size == 0:
        return 1.0
    mean = float(row_nnz.mean())
    if mean <= 0:
        return 1.0
    rng = derive_rng(seed, "warp_divergence")
    samples = rng.choice(row_nnz, size=(n_samples, warp_size), replace=True)
    return max(1.0, float(samples.max(axis=1).mean()) / mean)


@dataclass(frozen=True)
class AsyncWorkload:
    """Per-step cost statistics of an asynchronous SGD configuration.

    A *step* is one model update: a single example for Hogwild
    (B = 1), or one mini-batch for Hogbatch.
    """

    name: str
    #: Updates per epoch (N for Hogwild, N/B for Hogbatch).
    steps_per_epoch: int
    #: Examples processed per step (1 or the batch size).
    examples_per_step: int
    #: Flops of one step (gradient + update).
    flops_per_step: float
    #: Training-data bytes streamed per step.
    data_bytes_per_step: float
    #: Model cache lines a step's update touches.
    model_lines_per_step: float
    #: Total model size in bytes (residency of the shared model).
    model_bytes: float
    #: Line-popularity statistics for conflict costing.
    line_stats: LineStats
    #: max/mean work imbalance across a GPU warp.
    warp_divergence: float
    #: True when the update writes every model coordinate (dense
    #: linear updates, Hogbatch full-gradient updates).
    dense_update: bool

    def __post_init__(self) -> None:
        if self.steps_per_epoch <= 0:
            raise ValueError("steps_per_epoch must be positive")
        if self.examples_per_step <= 0:
            raise ValueError("examples_per_step must be positive")
        if self.warp_divergence < 1.0:
            raise ValueError("warp_divergence is max/mean and must be >= 1")

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def for_linear(
        dataset: Dataset,
        model: Model,
        profile: DatasetProfile | None = None,
    ) -> "AsyncWorkload":
        """Hogwild (B=1) workload for LR/SVM on *dataset*.

        *profile* selects the scale at which hardware efficiency is
        reported; it defaults to the full paper profile matching the
        dataset's name so per-iteration times correspond to Table III.
        """
        if profile is None:
            from ..datasets.profiles import PAPER_PROFILES

            profile = PAPER_PROFILES.get(dataset.profile.name, dataset.profile)
        nnz = profile.nnz_avg if not profile.dense else profile.n_features
        d = profile.n_features
        if profile.dense:
            stats = dense_line_frequencies(d)
            lines = max(1.0, d / _PER_LINE)
            data_bytes = d * FLOAT64_BYTES
            divergence = 1.0
        else:
            # Full-scale popularity from the Zipf profile; divergence
            # from the realised row-length distribution (shape is
            # preserved by the scaled generator).
            stats = zipf_line_frequencies(
                d, nnz, profile.zipf_exponent, head_freq_cap=profile.head_freq_cap
            )
            lines = max(1.0, float(nnz))  # sparse coords rarely share lines
            data_bytes = nnz * (FLOAT64_BYTES + INT32_BYTES)
            if dataset.is_sparse:
                divergence = warp_divergence_factor(dataset.X.row_nnz)
            else:
                divergence = 1.0
        return AsyncWorkload(
            name=f"{profile.name}/{model.task}/hogwild",
            steps_per_epoch=profile.n_examples,
            examples_per_step=1,
            flops_per_step=model.flops_per_example(nnz),
            data_bytes_per_step=data_bytes,
            model_lines_per_step=lines,
            model_bytes=d * FLOAT64_BYTES,
            line_stats=stats,
            warp_divergence=divergence,
            dense_update=profile.dense,
        )

    @staticmethod
    def for_batched(
        dataset: Dataset,
        model: Model,
        batch_size: int,
        profile: DatasetProfile | None = None,
    ) -> "AsyncWorkload":
        """Hogbatch workload: one step = one mini-batch (paper: B=512).

        The update is a full dense gradient, so every model line is
        written by every step — the conflict footprint is the whole
        parameter vector.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if profile is None:
            from ..datasets.profiles import PAPER_PROFILES

            profile = PAPER_PROFILES.get(
                dataset.profile.name.removesuffix("-mlp"), dataset.profile
            )
        n = profile.n_examples
        nnz = dataset.profile.nnz_avg or dataset.profile.n_features
        steps = max(1, -(-n // batch_size))
        n_params = model.n_params
        return AsyncWorkload(
            name=f"{profile.name}/{model.task}/hogbatch",
            steps_per_epoch=steps,
            examples_per_step=batch_size,
            flops_per_step=batch_size * model.flops_per_example(nnz)
            + 2.0 * n_params,
            data_bytes_per_step=batch_size
            * dataset.profile.n_features
            * FLOAT64_BYTES,
            model_lines_per_step=max(1.0, n_params / _PER_LINE),
            model_bytes=n_params * FLOAT64_BYTES,
            line_stats=dense_line_frequencies(n_params),
            warp_divergence=1.0,
            dense_update=True,
        )
