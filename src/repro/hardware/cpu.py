"""Analytical NUMA-CPU performance model.

Converts (a) recorded operation traces (synchronous SGD) and (b)
:class:`~repro.hardware.workload.AsyncWorkload` statistics (Hogwild /
Hogbatch) into per-epoch times for a given thread count.  Mechanisms
modelled, each tied to a finding in the paper:

* **roofline per op** — an op costs the max of its compute time and its
  memory time, plus a fork/join overhead when parallel;
* **aggregate-cache residency** — the memory time uses the bandwidth of
  the cache level the epoch working set fits in *for that thread
  count*, which produces the paper's super-linear parallel speedups on
  cache-resident datasets (Section IV-B);
* **ViennaCL kernel policy** — GEMMs with small results stay serial,
  capping synchronous MLP speedup near 2x (Section IV-B, Fig. 6);
* **irregular-access penalty** — sparse gathers use a fraction of each
  cache line, deflating effective bandwidth ("Parallelizing linear
  algebra operations on sparse data is known to be a difficult task
  because of the irregular memory access", Section IV-B);
* **coherence conflicts** — asynchronous updates pay a coherence miss
  on every conflicted model line, with a contention factor that grows
  with the number of concurrent writers; on fully dense data this makes
  parallel Hogwild *slower* than sequential (Table III, covtype).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..linalg.policy import VIENNACL_POLICY, KernelPolicy
from ..linalg.trace import OpKind, OpRecord, Trace
from ..telemetry import keys
from ..telemetry.session import AnyTelemetry, ensure_telemetry
from ..utils.units import CACHE_LINE_BYTES
from .cache import MemLevel, residency
from .spec import XEON_E5_2660V4_DUAL, CpuSpec
from .workload import AsyncWorkload

__all__ = ["CpuModel", "CpuCostBreakdown"]

#: Achievable fraction of peak flops per op kind (SIMD friendliness).
_SIMD_EFFICIENCY: dict[OpKind, float] = {
    OpKind.GEMM: 0.85,
    OpKind.GEMV: 0.60,
    OpKind.ELEMENTWISE: 0.50,
    OpKind.REDUCTION: 0.50,
    OpKind.SPMV: 0.25,
    OpKind.GATHER_SCATTER: 0.10,
    OpKind.DATA_LOAD: 0.50,
}

#: Effective per-access latency by residency level (sec); already
#: divided by the memory-level parallelism a modern OoO core extracts
#: from independent accesses.
_LEVEL_LATENCY: dict[MemLevel, float] = {
    MemLevel.L1: 0.4e-9,
    MemLevel.L2: 1.2e-9,
    MemLevel.L3: 2.5e-9,
    MemLevel.DRAM: 12.0e-9,
}

#: Bandwidth deflation for data-dependent (gather) access: only part of
#: each fetched cache line is useful.
_IRREGULAR_PENALTY = 3.0

#: Fraction of a coherence miss's latency that is *not* hidden by
#: out-of-order overlap with neighbouring independent accesses.
_COHERENCE_OVERLAP = 0.5


@dataclass(frozen=True)
class CpuCostBreakdown:
    """Per-epoch cost decomposition returned by the model."""

    total: float
    compute: float
    memory: float
    overhead: float
    coherence: float = 0.0

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ValueError("negative total time")


class CpuModel:
    """Cost model for one CPU machine + kernel-policy combination."""

    def __init__(
        self,
        spec: CpuSpec = XEON_E5_2660V4_DUAL,
        policy: KernelPolicy = VIENNACL_POLICY,
        irregular_penalty: float = _IRREGULAR_PENALTY,
        model_coherence: bool = True,
    ) -> None:
        self.spec = spec
        self.policy = policy
        self.irregular_penalty = float(irregular_penalty)
        #: Coherence conflicts on the shared model (ablation switch).
        self.model_coherence = bool(model_coherence)

    # -- synchronous (trace-driven) ------------------------------------------

    def op_time(self, op: OpRecord, threads: int, working_set_bytes: float) -> float:
        """Roofline time of one kernel at the given thread count."""
        spec = self.spec
        t_allowed = self.policy.max_threads(op, threads)
        eff_cores = spec.effective_cores(t_allowed)
        simd = _SIMD_EFFICIENCY[op.kind]
        if t_allowed == 1 and op.kind is not OpKind.GEMM:
            # Single-threaded non-GEMM kernels are not hand-vectorised:
            # apply the scalar-efficiency haircut.  Blocked GEMM kernels
            # stay SIMD-efficient regardless of threading (BLAS-style),
            # which keeps the serial weight-gradient products — and thus
            # the paper's ~2x MLP speedup cap — correctly priced.
            simd = min(simd, max(spec.scalar_efficiency, simd * 0.35))
        # SMT threads share execution units: compute throughput caps at
        # the physical cores even though memory-level parallelism grows.
        compute_cores = min(eff_cores, spec.physical_cores)
        compute = (
            op.flops / (spec.core_flops * simd * compute_cores) if op.flops else 0.0
        )

        res = residency(
            spec, working_set_bytes, t_allowed, streaming=not op.irregular
        )
        penalty = self.irregular_penalty if op.irregular else 1.0
        memory = op.bytes_total * penalty / res.bandwidth if op.bytes_total else 0.0
        overhead = spec.parallel_overhead if t_allowed > 1 else 0.3e-6
        return max(compute, memory) + overhead

    def sync_epoch_time(
        self,
        trace: Trace,
        threads: int,
        working_set_bytes: float,
        telemetry: AnyTelemetry | None = None,
    ) -> float:
        """Time of one synchronous epoch (sum of blocking kernels).

        With *telemetry*, the modelled work of the costed epoch is
        counted: flops and bytes priced by the roofline.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        tel = ensure_telemetry(telemetry)
        tel.count(keys.FLOPS_MODELLED, trace.total_flops)
        tel.count(keys.BYTES_MOVED, trace.total_bytes)
        return sum(self.op_time(op, threads, working_set_bytes) for op in trace)

    def sync_breakdown(
        self, trace: Trace, threads: int, working_set_bytes: float
    ) -> CpuCostBreakdown:
        """Compute/memory/overhead decomposition of a synchronous epoch."""
        compute = memory = overhead = 0.0
        for op in trace:
            t_allowed = self.policy.max_threads(op, threads)
            eff = self.spec.effective_cores(t_allowed)
            simd = _SIMD_EFFICIENCY[op.kind]
            if t_allowed == 1 and op.kind is not OpKind.GEMM:
                simd = min(simd, max(self.spec.scalar_efficiency, simd * 0.35))
            c_cores = min(eff, self.spec.physical_cores)
            c = (
                op.flops / (self.spec.core_flops * simd * c_cores)
                if op.flops
                else 0.0
            )
            res = residency(
                self.spec, working_set_bytes, t_allowed, streaming=not op.irregular
            )
            pen = self.irregular_penalty if op.irregular else 1.0
            m = op.bytes_total * pen / res.bandwidth if op.bytes_total else 0.0
            compute += c
            memory += m
            overhead += self.spec.parallel_overhead if t_allowed > 1 else 0.3e-6
        total = self.sync_epoch_time(trace, threads, working_set_bytes)
        return CpuCostBreakdown(total, compute, memory, overhead)

    # -- asynchronous (workload-driven) ----------------------------------------

    def async_epoch_time(
        self,
        w: AsyncWorkload,
        threads: int,
        telemetry: AnyTelemetry | None = None,
    ) -> float:
        """Time of one asynchronous epoch with *threads* workers."""
        return self.async_breakdown(w, threads, telemetry).total

    def async_breakdown(
        self,
        w: AsyncWorkload,
        threads: int,
        telemetry: AnyTelemetry | None = None,
    ) -> CpuCostBreakdown:
        """Decomposed per-epoch cost of Hogwild/Hogbatch execution.

        Per step a worker pays: fixed loop overhead, gradient flops
        (scalar-ish code for B=1, vectorised for batches), model-line
        accesses at the level the *model* resides in, streaming of its
        data partition, and — in parallel mode — a coherence-miss
        surcharge on each conflicted line.  Steps divide evenly over
        effective cores (Hogwild has no barriers), but the epoch cannot
        finish faster than the **hot-line floor**: the most popular
        model cache line receives ``steps * f_max`` writes that
        serialise at one ownership transfer each.  On fully dense data
        ``f_max = 1`` and the floor alone exceeds the sequential time —
        the paper's covtype finding (Table III).
        """
        tel = ensure_telemetry(telemetry)
        spec = self.spec
        threads = max(1, min(threads, spec.max_threads))
        eff_cores = spec.effective_cores(threads)
        tel.count(keys.FLOPS_MODELLED, w.flops_per_step * w.steps_per_epoch)
        tel.count(
            keys.BYTES_MOVED,
            w.steps_per_epoch
            * (
                w.data_bytes_per_step
                + 2.0 * w.model_lines_per_step * CACHE_LINE_BYTES
            ),
        )

        batched = w.examples_per_step > 1
        simd = 0.50 if batched else 0.25
        compute = w.flops_per_step / (spec.core_flops * simd)

        # The shared model's residency is evaluated for a single core:
        # it must fit in *each* core's private slice to be L1/L2-fast.
        model_res = residency(spec, w.model_bytes, 1, streaming=False, hot=True)
        lat = _LEVEL_LATENCY[model_res.level]
        model_access = 2.0 * w.model_lines_per_step * lat  # read + write

        # Data partitions stream at the level the whole dataset occupies.
        data_bytes_total = w.data_bytes_per_step * w.steps_per_epoch
        data_res = residency(spec, data_bytes_total + w.model_bytes, threads)
        data_stream = w.data_bytes_per_step / (data_res.bandwidth / eff_cores)

        coherence_per_step = 0.0
        floor = 0.0
        if threads > 1 and self.model_coherence:
            frac = w.line_stats.conflict_fraction(threads)
            conflicted = frac * w.model_lines_per_step
            tel.count(keys.COHERENCE_CONFLICTS, conflicted * w.steps_per_epoch)
            numa = 1.5 if spec.sockets_engaged(threads) > 1 else 1.0
            coherence_per_step = (
                conflicted * spec.coherence_latency * _COHERENCE_OVERLAP * numa
            )
            floor = (
                w.steps_per_epoch
                * w.line_stats.max_frequency
                * spec.line_transfer_time
            )

        per_step = (
            spec.async_step_overhead
            + compute
            + model_access
            + data_stream
            + coherence_per_step
        )
        work = w.steps_per_epoch * per_step / eff_cores
        total = max(work, floor)
        scale = w.steps_per_epoch / eff_cores
        base = (compute + model_access + data_stream + spec.async_step_overhead) * scale
        return CpuCostBreakdown(
            total=total,
            compute=compute * scale,
            memory=(model_access + data_stream) * scale,
            overhead=spec.async_step_overhead * scale,
            coherence=total - base,  # surcharge + any hot-line stall
        )
