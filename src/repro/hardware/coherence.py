"""Cache-line conflict statistics for asynchronous (Hogwild) updates.

Hogwild's hardware behaviour is governed by *which model cache lines
concurrent updates touch*:

* on CPU, a line written by one core invalidates every other core's
  copy, so each conflicted access pays a coherence miss ("concurrent
  updates to the same features of the model generate cache-coherency
  conflicts that slow down execution", Section IV-B);
* on GPU, concurrent atomics to the same line serialise within the
  memory system.

Both effects are driven by the *popularity* of each model line — the
fraction of training examples whose update touches it.  This module
computes line-popularity vectors (from realised data or analytically
from a Zipf feature profile at full scale) and folds them into the two
summary statistics the hardware models consume:

``conflict_fraction(t)``
    expected fraction of a random update's lines that at least one of
    the other ``t-1`` concurrent updates also touches;
``expected_writers(t)``
    expected number of concurrent updates touching a given touched
    line (including the update itself) — the contention degree.

Dense data is the degenerate case: every line has popularity 1, so
every line of every update conflicts and contention equals the full
thread count.  This is precisely why the paper finds parallel Hogwild
*slower than sequential* on covtype (Table III).
"""

from __future__ import annotations

import numpy as np

from ..linalg.csr import CSRMatrix
from ..utils.units import CACHE_LINE_BYTES, FLOAT64_BYTES

__all__ = [
    "LineStats",
    "line_frequencies_from_csr",
    "dense_line_frequencies",
    "zipf_line_frequencies",
]

_PER_LINE = CACHE_LINE_BYTES // FLOAT64_BYTES  # 8 model coordinates per line


class LineStats:
    """Popularity vector of the model's cache lines plus derived stats.

    Parameters
    ----------
    frequencies:
        Array ``f`` where ``f[l]`` is the fraction of examples whose
        update touches model line ``l`` (in ``(0, 1]``; untouched lines
        may be omitted or zero).
    """

    def __init__(self, frequencies: np.ndarray) -> None:
        f = np.asarray(frequencies, dtype=np.float64).ravel()
        f = f[f > 0]
        if f.size and (f.max() > 1.0 + 1e-12):
            raise ValueError("line frequencies must be <= 1")
        self.frequencies = np.clip(f, 0.0, 1.0)
        total = float(self.frequencies.sum())
        #: probability that a randomly chosen *touched* line is line l
        self._weights = (
            self.frequencies / total if total > 0 else np.empty(0, dtype=np.float64)
        )

    @property
    def n_lines(self) -> int:
        """Number of lines with non-zero popularity."""
        return int(self.frequencies.size)

    def conflict_fraction(self, threads: int) -> float:
        """Fraction of a random update's lines conflicted by t-1 peers.

        For each line, the probability at least one of the other
        ``threads - 1`` concurrent updates touches it is
        ``1 - (1 - f_l)^(threads-1)``; averaging over the line a random
        update touches (popularity-weighted) gives the fraction.
        """
        if threads <= 1 or self._weights.size == 0:
            return 0.0
        p = 1.0 - np.power(1.0 - self.frequencies, threads - 1)
        return float(min(1.0, np.sum(self._weights * p)))

    def expected_writers(self, threads: int) -> float:
        """Expected concurrent updates touching a touched line (incl. self)."""
        if self._weights.size == 0:
            return 1.0
        mean_f = float(np.sum(self._weights * self.frequencies))
        return 1.0 + (max(threads, 1) - 1) * mean_f

    @property
    def max_frequency(self) -> float:
        """Popularity of the hottest line.

        The write rate of the hottest model cache line bounds Hogwild
        throughput from below: every update touching it must acquire
        line ownership, and ownership transfers serialise.  This is the
        statistic behind the paper's covtype result where parallel
        Hogwild is *slower* than sequential (every update touches every
        line, so the storm is total).
        """
        if self.frequencies.size == 0:
            return 0.0
        return float(self.frequencies.max())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LineStats(n_lines={self.n_lines})"


def line_frequencies_from_csr(X: CSRMatrix) -> LineStats:
    """Measured line popularities of a realised CSR dataset.

    Counts, for every model line, the fraction of rows with at least
    one non-zero coordinate on that line.
    """
    if X.nnz == 0:
        return LineStats(np.empty(0))
    lines = X.indices.astype(np.int64) // _PER_LINE
    rows = np.repeat(np.arange(X.n_rows, dtype=np.int64), X.row_nnz)
    keys = np.unique(rows * ((X.n_cols // _PER_LINE) + 2) + lines)
    n_lines_total = X.n_cols // _PER_LINE + 2
    line_ids = keys % n_lines_total
    counts = np.bincount(line_ids, minlength=n_lines_total)
    return LineStats(counts / X.n_rows)


def dense_line_frequencies(n_features: int) -> LineStats:
    """Line popularities for fully dense updates: every line, always."""
    n_lines = max(1, -(-n_features // _PER_LINE))
    return LineStats(np.ones(n_lines))


def zipf_line_frequencies(
    n_features: int,
    nnz_avg: float,
    zipf_exponent: float,
    seed: int = 0,
    head_freq_cap: float | None = None,
) -> LineStats:
    """Analytic full-scale line popularities for a Zipf feature profile.

    Feature *j*'s document frequency under a Zipf popularity with
    ``nnz_avg`` draws per example is ``min(1, nnz_avg * q_j)`` with
    ``q_j`` the normalised Zipf weight, optionally clipped at
    ``head_freq_cap`` (real corpora have flatter heads than a raw Zipf
    over few features would imply).  Features are randomly assigned to
    lines (real files do not sort columns by frequency), and a line's
    popularity is ``1 - prod(1 - p_j)`` over its 8 features.

    This lets the asynchronous hardware model operate at the *paper's*
    dimensionality (e.g. news' 1.35M features) even though the realised
    data is scaled down.
    """
    if n_features <= 0:
        raise ValueError("n_features must be positive")
    ranks = np.arange(1, n_features + 1, dtype=np.float64)
    q = ranks ** (-zipf_exponent)
    q /= q.sum()
    p = np.minimum(1.0, nnz_avg * q)
    if head_freq_cap is not None:
        p = np.minimum(p, float(head_freq_cap))
    # Hot features are assigned round-robin across lines (descending
    # popularity, stride n_lines): the handful of head features land on
    # distinct lines, which is both the expectation-typical outcome of
    # an arbitrary layout and what conflict-aware implementations
    # (feature padding) enforce deliberately.  A random fold would make
    # the hottest line an unlucky collision of several head features.
    del seed  # kept for signature stability; assignment is deterministic
    pad = (-len(p)) % _PER_LINE
    if pad:
        p = np.concatenate([p, np.zeros(pad)])
    p = p.reshape(_PER_LINE, -1)  # row r = r-th popularity band
    line_f = 1.0 - np.prod(1.0 - p, axis=0)
    return LineStats(line_f)
