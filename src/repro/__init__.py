"""repro — reproduction of "Stochastic Gradient Descent on Modern
Hardware: Multi-core CPU or GPU? Synchronous or Asynchronous?"
(Yujing Ma, Florin Rusu, Martin Torres — IPDPS 2019).

The library implements the paper's full experimental apparatus:

* the three training tasks (logistic regression, linear SVM,
  fully-connected MLP) over dense and CSR-sparse data
  (:mod:`repro.models`, :mod:`repro.linalg`);
* synchronous (batch) and asynchronous (Hogwild / Hogbatch) parallel
  SGD, with asynchrony simulated by a deterministic stale-read
  interleaving engine (:mod:`repro.sgd`, :mod:`repro.asyncsim`);
* analytical performance models of the paper's two machines — a
  dual-socket NUMA Xeon and an NVIDIA Tesla K80 — that turn recorded
  kernel traces / per-step workload statistics into per-epoch times
  (:mod:`repro.hardware`);
* synthetic datasets matched to Table I's statistics plus a LIBSVM
  reader for the real files (:mod:`repro.datasets`);
* TensorFlow- and BIDMach-like baseline executors
  (:mod:`repro.frameworks`);
* drivers regenerating every table and figure of the evaluation
  (:mod:`repro.experiments`);
* a train-and-serve path — seqlock-consistent parameter snapshots of a
  live shared-memory run and a micro-batched, hot-swapping scoring
  service (:mod:`repro.serving`);
* an observability layer — nested spans, counters, Chrome-trace export
  and reproducible run manifests (:mod:`repro.telemetry`).

Quickstart::

    import repro

    result = repro.train("lr", "w8a", architecture="cpu-par",
                         strategy="asynchronous", scale="small")
    print(result.epochs_to(0.01), result.time_to(0.01))

See README.md, DESIGN.md and EXPERIMENTS.md for the full story.
"""

from . import (
    asyncsim,
    datasets,
    experiments,
    faults,
    frameworks,
    hardware,
    linalg,
    models,
    parallel,
    serving,
    sgd,
    telemetry,
    utils,
)
from .faults import FaultPlan, FaultSpec, RecoveryPolicy
from .datasets import DATASET_NAMES, Dataset, load, load_mlp, read_libsvm
from .hardware import TESLA_K80, XEON_E5_2660V4_DUAL, CpuModel, GpuModel
from .models import MLP, LinearSVM, LogisticRegression, make_model
from .serving import ScoringEngine, ShmTrainHandle, SnapshotPublisher
from .sgd import (
    ARCHITECTURES,
    STRATEGIES,
    SGDConfig,
    TOLERANCES,
    TrainResult,
    grid_search,
    train,
)
from .telemetry import (
    NullTelemetry,
    RunManifest,
    Telemetry,
    build_manifest,
    load_manifest,
    write_chrome_trace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "train",
    "grid_search",
    "TrainResult",
    "SGDConfig",
    "TOLERANCES",
    "ARCHITECTURES",
    "STRATEGIES",
    "load",
    "load_mlp",
    "read_libsvm",
    "Dataset",
    "DATASET_NAMES",
    "make_model",
    "LogisticRegression",
    "LinearSVM",
    "MLP",
    "CpuModel",
    "GpuModel",
    "XEON_E5_2660V4_DUAL",
    "TESLA_K80",
    "FaultPlan",
    "FaultSpec",
    "RecoveryPolicy",
    "ScoringEngine",
    "SnapshotPublisher",
    "ShmTrainHandle",
    "Telemetry",
    "NullTelemetry",
    "RunManifest",
    "build_manifest",
    "load_manifest",
    "write_chrome_trace",
    "linalg",
    "datasets",
    "models",
    "hardware",
    "asyncsim",
    "parallel",
    "faults",
    "serving",
    "sgd",
    "telemetry",
    "frameworks",
    "experiments",
    "utils",
]
