"""Tuned step sizes per configuration at the default scale.

Produced by the paper's grid-search protocol (Section IV-A) run via
``scripts/probe_steps.py`` (regenerate with that script followed by
``scripts/bake_tuned.py``).

Keys are ``(task, dataset, strategy, architecture)``; architecture
``"*"`` applies to all architectures (synchronous runs: the statistical
efficiency — and hence the best step — is architecture-independent).
Configurations absent from the table fall back to the (task, strategy)
defaults in :mod:`repro.sgd.runner`.
"""

from __future__ import annotations

__all__ = ["TUNED_STEPS", "lookup_step"]

#: (task, dataset, strategy, architecture) -> step size.
TUNED_STEPS: dict[tuple[str, str, str, str], float] = {
    ("lr", "covtype", "asynchronous", "cpu-par"): 1.0,  # epochs=9
    ("lr", "covtype", "asynchronous", "cpu-seq"): 1.0,  # epochs=12
    ("lr", "covtype", "asynchronous", "gpu"): 0.3,  # epochs=17
    ("lr", "covtype", "synchronous", "*"): 300.0,  # epochs=45
    ("lr", "news", "asynchronous", "cpu-par"): 1.0,  # epochs=84
    ("lr", "news", "asynchronous", "cpu-seq"): 1.0,  # epochs=85
    ("lr", "news", "asynchronous", "gpu"): 0.3,  # epochs=249
    ("lr", "news", "synchronous", "*"): 300.0,  # epochs=805
    ("lr", "rcv1", "asynchronous", "cpu-par"): 3.0,  # epochs=89
    ("lr", "rcv1", "asynchronous", "cpu-seq"): 3.0,  # epochs=98
    ("lr", "rcv1", "asynchronous", "gpu"): 1.0,  # epochs=209
    ("lr", "rcv1", "synchronous", "*"): 1000.0,  # epochs=605
    ("lr", "real-sim", "asynchronous", "cpu-par"): 3.0,  # epochs=90
    ("lr", "real-sim", "asynchronous", "cpu-seq"): 3.0,  # epochs=88
    ("lr", "real-sim", "asynchronous", "gpu"): 1.0,  # epochs=187
    ("lr", "real-sim", "synchronous", "*"): 1000.0,  # epochs=538
    ("lr", "w8a", "asynchronous", "cpu-par"): 1.0,  # epochs=15
    ("lr", "w8a", "asynchronous", "cpu-seq"): 1.0,  # epochs=16
    ("lr", "w8a", "asynchronous", "gpu"): 0.3,  # epochs=36
    ("lr", "w8a", "synchronous", "*"): 300.0,  # epochs=99
    ("mlp", "covtype", "asynchronous", "cpu-par"): 3.0,  # epochs=429
    ("mlp", "covtype", "asynchronous", "cpu-seq"): 3.0,  # epochs=222
    ("mlp", "covtype", "asynchronous", "gpu"): 3.0,  # epochs=429
    ("mlp", "covtype", "synchronous", "*"): 3.0,  # epochs=1772
    ("mlp", "news", "asynchronous", "cpu-par"): 1.0,  # epochs=864
    ("mlp", "news", "asynchronous", "cpu-seq"): 3.0,  # epochs=287
    ("mlp", "news", "asynchronous", "gpu"): 1.0,  # epochs=652
    ("mlp", "news", "synchronous", "*"): 3.0,  # epochs=2103
    ("mlp", "rcv1", "asynchronous", "cpu-par"): 3.0,  # epochs=544
    ("mlp", "rcv1", "asynchronous", "cpu-seq"): 3.0,  # epochs=254
    ("mlp", "rcv1", "asynchronous", "gpu"): 3.0,  # epochs=544
    ("mlp", "rcv1", "synchronous", "*"): 10.0,  # epochs=1618
    ("mlp", "real-sim", "asynchronous", "cpu-par"): 1.0,  # epochs=522
    ("mlp", "real-sim", "asynchronous", "cpu-seq"): 3.0,  # epochs=254
    ("mlp", "real-sim", "asynchronous", "gpu"): 1.0,  # epochs=522
    ("mlp", "real-sim", "synchronous", "*"): 10.0,  # epochs=1923
    ("mlp", "w8a", "asynchronous", "cpu-par"): 1.0,  # epochs=486
    ("mlp", "w8a", "asynchronous", "cpu-seq"): 1.0,  # epochs=306
    ("mlp", "w8a", "asynchronous", "gpu"): 1.0,  # epochs=486
    ("mlp", "w8a", "synchronous", "*"): 1.0,  # epochs=2420
    ("svm", "covtype", "asynchronous", "cpu-par"): 0.3,  # epochs=9
    ("svm", "covtype", "asynchronous", "cpu-seq"): 0.3,  # epochs=11
    ("svm", "covtype", "asynchronous", "gpu"): 0.1,  # epochs=20
    ("svm", "covtype", "synchronous", "*"): 100.0,  # epochs=58
    ("svm", "news", "asynchronous", "cpu-par"): 0.3,  # epochs=41
    ("svm", "news", "asynchronous", "cpu-seq"): 0.3,  # epochs=22
    ("svm", "news", "asynchronous", "gpu"): 0.1,  # epochs=152
    ("svm", "news", "synchronous", "*"): 100.0,  # epochs=246
    ("svm", "rcv1", "asynchronous", "cpu-par"): 1.0,  # epochs=41
    ("svm", "rcv1", "asynchronous", "cpu-seq"): 1.0,  # epochs=35
    ("svm", "rcv1", "asynchronous", "gpu"): 0.3,  # epochs=59
    ("svm", "rcv1", "synchronous", "*"): 300.0,  # epochs=147
    ("svm", "real-sim", "asynchronous", "cpu-par"): 1.0,  # epochs=23
    ("svm", "real-sim", "asynchronous", "cpu-seq"): 1.0,  # epochs=19
    ("svm", "real-sim", "asynchronous", "gpu"): 1.0,  # epochs=29
    ("svm", "real-sim", "synchronous", "*"): 300.0,  # epochs=94
    ("svm", "w8a", "asynchronous", "cpu-par"): 0.3,  # epochs=34
    ("svm", "w8a", "asynchronous", "cpu-seq"): 0.3,  # epochs=28
    ("svm", "w8a", "asynchronous", "gpu"): 0.1,  # epochs=42
    ("svm", "w8a", "synchronous", "*"): 100.0,  # epochs=127
}


def lookup_step(
    task: str, dataset: str, strategy: str, architecture: str
) -> float | None:
    """Resolve a tuned step with exact-arch > wildcard precedence."""
    exact = TUNED_STEPS.get((task, dataset, strategy, architecture))
    if exact is not None:
        return exact
    return TUNED_STEPS.get((task, dataset, strategy, "*"))
