"""The tolerance ladder: time to 10% / 5% / 2% / 1% per configuration.

The paper measures every configuration at four tolerances
(Section IV-A) but prints only the 1% tables; the ladder is where the
classic batch-vs-incremental structure lives (Bertsekas [3], cited in
Section III): incremental SGD sprints through the loose tolerances —
"convergence rate as much as N times faster ... when far from the
minimum" — while batch gradient descent grinds steadily and can
overtake near the optimum.  This driver regenerates the full ladder
and locates the crossover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..sgd.config import TOLERANCES
from ..utils.tables import render_table
from .common import ExperimentContext

__all__ = ["LadderEntry", "ToleranceLadder", "run_tolerance_ladder"]


@dataclass(frozen=True)
class LadderEntry:
    """One configuration's times across the tolerance ladder."""

    strategy: str
    architecture: str
    #: tolerance -> time to convergence (sec; inf when unreached).
    times: tuple[tuple[float, float], ...]

    def time_at(self, tolerance: float) -> float:
        """Time to the given tolerance."""
        for tol, t in self.times:
            if tol == tolerance:
                return t
        raise KeyError(tolerance)

    @property
    def label(self) -> str:
        short = {"synchronous": "sync", "asynchronous": "async"}[self.strategy]
        return f"{short}/{self.architecture}"


@dataclass
class ToleranceLadder:
    """All configurations' ladders for one (task, dataset)."""

    task: str
    dataset: str
    entries: list[LadderEntry] = field(default_factory=list)

    def entry(self, strategy: str, architecture: str) -> LadderEntry:
        """Look up one configuration."""
        for e in self.entries:
            if (e.strategy, e.architecture) == (strategy, architecture):
                return e
        raise KeyError((strategy, architecture))

    def winner_at(self, tolerance: float) -> LadderEntry:
        """The fastest configuration at one tolerance."""
        finite = [
            e for e in self.entries if math.isfinite(e.time_at(tolerance))
        ]
        if not finite:
            raise ValueError(f"no configuration reached tolerance {tolerance}")
        return min(finite, key=lambda e: e.time_at(tolerance))

    def crossover(self) -> tuple[float, str, str] | None:
        """First ladder step where the winner changes, if any.

        Returns ``(tolerance, previous_winner, new_winner)`` for the
        loosest tolerance at which the leader differs from the leader
        at the next-looser tolerance; ``None`` when one configuration
        leads the whole ladder.
        """
        ladder = sorted({tol for e in self.entries for tol, _ in e.times}, reverse=True)
        prev = None
        for tol in ladder:
            try:
                win = self.winner_at(tol).label
            except ValueError:
                continue
            if prev is not None and win != prev:
                return (tol, prev, win)
            prev = win
        return None

    def render(self) -> str:
        """Monospace table: configurations x tolerances."""
        ladder = sorted({tol for e in self.entries for tol, _ in e.times}, reverse=True)
        headers = ["config"] + [f"t({int(t * 100)}%) s" for t in ladder]
        rows = [
            [e.label] + [e.time_at(t) for t in ladder]
            for e in sorted(self.entries, key=lambda e: e.time_at(ladder[-1]))
        ]
        return render_table(
            headers,
            rows,
            title=f"Tolerance ladder: {self.task} on {self.dataset}",
            precision=3,
        )

    # -- shape checks -----------------------------------------------------

    def times_monotone_in_tolerance(self) -> bool:
        """Tighter tolerances can never be reached sooner."""
        for e in self.entries:
            ordered = sorted(e.times, key=lambda p: -p[0])  # loose -> tight
            last = 0.0
            for _tol, t in ordered:
                if math.isfinite(t):
                    if t + 1e-12 < last:
                        return False
                    last = t
        return True


def run_tolerance_ladder(
    task: str,
    dataset: str,
    ctx: ExperimentContext | None = None,
    tolerances: tuple[float, ...] = TOLERANCES,
) -> ToleranceLadder:
    """Measure the full ladder for every (strategy, architecture)."""
    ctx = ctx or ExperimentContext()
    from .executor import ARCHITECTURES, STRATEGIES, GridCell

    ctx.prefetch(
        [
            GridCell(task, dataset, architecture, strategy)
            for strategy in STRATEGIES
            for architecture in ARCHITECTURES
        ]
    )
    out = ToleranceLadder(task=task, dataset=dataset)
    for strategy in ("synchronous", "asynchronous"):
        for architecture in ("cpu-seq", "cpu-par", "gpu"):
            run = ctx.run(task, dataset, architecture, strategy)
            times = tuple((tol, run.time_to(tol)) for tol in tolerances)
            out.entries.append(
                LadderEntry(strategy=strategy, architecture=architecture, times=times)
            )
    return out
