"""Table I — the experimental datasets.

A thin driver over :func:`repro.datasets.table1` that also verifies the
realised statistics against the paper profiles (density preserved,
dispersion preserved, class balance) so the benchmark can assert on
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datasets import load, load_mlp, table1
from .common import ExperimentContext

__all__ = ["Table1Check", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Check:
    """Realised-vs-profile statistics for one dataset."""

    dataset: str
    target_sparsity_pct: float
    realised_sparsity_pct: float
    target_dispersion: float
    realised_dispersion: float
    mlp_sparsity_pct: float
    positive_fraction: float

    @property
    def sparsity_ok(self) -> bool:
        """Density within a factor ~2 of the (scaled) profile target."""
        lo, hi = 0.4 * self.target_sparsity_pct, 2.5 * self.target_sparsity_pct
        return lo <= self.realised_sparsity_pct <= hi

    @property
    def balanced(self) -> bool:
        """Labels near 50/50."""
        return 0.4 <= self.positive_fraction <= 0.6


@dataclass
class Table1Result:
    """The rendered table plus per-dataset checks."""

    rendered: str
    checks: list[Table1Check] = field(default_factory=list)

    def render(self) -> str:
        """Monospace Table I."""
        return self.rendered

    def all_ok(self) -> bool:
        """Every dataset within band and balanced."""
        return all(c.sparsity_ok and c.balanced for c in self.checks)


def run_table1(ctx: ExperimentContext | None = None) -> Table1Result:
    """Generate the datasets and verify their Table I statistics."""
    ctx = ctx or ExperimentContext()
    from ..datasets.registry import scaled_profile

    checks = []
    for name in ctx.datasets:
        ds = load(name, ctx.scale, ctx.seed)
        mlp = load_mlp(name, ctx.scale, ctx.seed)
        s = ds.summary()
        profile = scaled_profile(name, ctx.scale)
        realised_disp = s["nnz_max"] / max(s["nnz_avg"], 1e-9)
        checks.append(
            Table1Check(
                dataset=name,
                target_sparsity_pct=profile.sparsity_pct,
                realised_sparsity_pct=s["sparsity_pct"],
                target_dispersion=profile.nnz_dispersion,
                realised_dispersion=realised_disp,
                mlp_sparsity_pct=mlp.summary()["sparsity_pct"],
                positive_fraction=s["positive_fraction"],
            )
        )
    return Table1Result(rendered=table1(ctx.scale, ctx.seed), checks=checks)
