"""Process-pool execution of the experiment grid.

The paper's result set is a grid of independent cells — (dataset ×
task × architecture × strategy) — each an isolated optimisation run.
Serial drivers walk the grid one cell at a time through
:meth:`ExperimentContext.run`; this module fans the *independent* work
over ``jobs`` worker processes while preserving every semantic of the
serial path:

* **Dedup before fan-out.**  Synchronous statistical efficiency is
  architecture-independent (Section IV-A), so the three synchronous
  cells of a (task, dataset) pair share one ``cpu-seq`` optimisation
  run; only that base run goes to a worker, and the parent re-costs it
  per architecture through :meth:`ExperimentContext._run_sync` — which
  also preserves the serial path's curve-object sharing between the
  re-costed results.
* **Bit-identical results.**  Workers run the same :func:`repro.train`
  with the same derived seeds the serial loop would use; nothing about
  placement changes the numbers, which the test suite asserts by
  comparing ``jobs=4`` against ``jobs=1`` cell by cell.
* **Deterministic telemetry merge.**  Each worker carries its own
  :class:`~repro.telemetry.Telemetry`; the parent folds the snapshots
  back in *submission order* (not completion order), so counter totals
  and span ordering are reproducible run to run and match a serial
  run's totals (modulo the ``grid.*`` bookkeeping keys, which only a
  grid run emits).
* **Resumability.**  With a :class:`~repro.experiments.store.ResultStore`
  attached, every completed cell is persisted keyed by its config hash;
  ``resume=True`` replays stored cells instead of recomputing them.

Workers disable nested reference-loss parallelism
(``REPRO_REFERENCE_JOBS=1`` via the pool initialiser) so a grid of N
workers never forks N pools of M processes.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any

from ..sgd.runner import TrainResult, train
from ..telemetry import keys
from ..telemetry.manifest import build_manifest
from ..telemetry.session import Telemetry, ensure_telemetry
from ..utils.errors import ConfigurationError, WorkerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .common import ExperimentContext

__all__ = ["GridCell", "GridExecutor", "ARCHITECTURES", "STRATEGIES"]

ARCHITECTURES = ("cpu-seq", "cpu-par", "gpu")
STRATEGIES = ("synchronous", "asynchronous")

#: Test hook: ``"task/dataset/architecture/strategy:exitcode"`` makes
#: the worker assigned that cell die with the given exit code, so the
#: crash-recovery path can be exercised without a real fault.  Read
#: from the environment (inherited by fork and spawn alike).
_CRASH_ENV = "REPRO_GRID_TEST_CRASH"


@dataclass(frozen=True)
class GridCell:
    """One cell of the experiment grid."""

    task: str
    dataset: str
    architecture: str
    strategy: str

    def __post_init__(self) -> None:
        if self.architecture not in ARCHITECTURES:
            raise ConfigurationError(f"unknown architecture {self.architecture!r}")
        if self.strategy not in STRATEGIES:
            raise ConfigurationError(f"unknown strategy {self.strategy!r}")

    @property
    def key(self) -> tuple[str, str, str, str]:
        """The :class:`ExperimentContext` cache key for this cell."""
        return (self.task, self.dataset, self.architecture, self.strategy)

    def label(self) -> str:
        return f"{self.task}/{self.dataset}/{self.architecture}/{self.strategy}"


@dataclass
class _Job:
    """One unit of worker work (a sync base run or one async cell)."""

    kind: str  # "sync-base" | "async"
    cell: GridCell  # the cell the worker actually trains
    payload: dict[str, Any]
    config: dict[str, Any]  # store key material
    #: Requested cells satisfied by this job (> 1 only for sync bases).
    covers: list[GridCell] = field(default_factory=list)
    result: TrainResult | None = None
    source: str = "executed"
    worker_pid: int | None = None


def _worker_init() -> None:
    """Pool initialiser: forbid nested reference-loss pools."""
    os.environ["REPRO_REFERENCE_JOBS"] = "1"


def _execute_job(payload: dict[str, Any]) -> dict[str, Any]:
    """Train one configuration (runs in a worker, or in-parent for jobs=1)."""
    crash = payload.get("crash")
    if crash is not None:  # pragma: no cover - dies by design
        os._exit(int(crash))
    tel = Telemetry() if payload.get("telemetry") else None
    result = train(
        payload["task"],
        payload["dataset"],
        architecture=payload["architecture"],
        strategy=payload["strategy"],
        scale=payload["scale"],
        seed=payload["seed"],
        step_size=payload["step_size"],
        max_epochs=payload["max_epochs"],
        early_stop_tolerance=payload["tolerance"],
        cpu_model=payload.get("cpu_model"),
        gpu_model=payload.get("gpu_model"),
        telemetry=tel,
    )
    return {
        "result": result,
        "telemetry": tel.snapshot_for_merge() if tel is not None else None,
        "pid": os.getpid(),
    }


def _hw_fingerprint(ctx: "ExperimentContext") -> dict[str, Any]:
    """Hashable description of the machine models costing a sync base.

    Part of the store key for synchronous runs: their ``time_per_iter``
    is computed from these models, so changing a spec must miss.
    """
    return {
        "cpu": {
            "spec": asdict(ctx.cpu.spec),
            "policy": asdict(ctx.cpu.policy),
            "irregular_penalty": ctx.cpu.irregular_penalty,
            "model_coherence": ctx.cpu.model_coherence,
        },
        "gpu": {
            "spec": asdict(ctx.gpu.spec),
            "irregular_penalty": ctx.gpu.irregular_penalty,
            "warp_shuffle": ctx.gpu.warp_shuffle,
        },
    }


def _fork_context() -> mp.context.BaseContext:
    # Fork shares the parent's loaded datasets copy-on-write (the same
    # choice the shm backend makes); spawn is the portable fallback.
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


class GridExecutor:
    """Plans, deduplicates, fans out and merges one grid of cells."""

    def __init__(self, ctx: "ExperimentContext") -> None:
        self.ctx = ctx
        #: Per-cell provenance records for the grid manifest, in the
        #: requested cell order.
        self.cell_records: list[dict[str, Any]] = []

    # -- planning -----------------------------------------------------

    def _crash_spec(self) -> tuple[str, int] | None:
        raw = os.environ.get(_CRASH_ENV)
        if not raw:
            return None
        label, _, code = raw.partition(":")
        return label, int(code or "13")

    def _payload(self, cell: GridCell, kind: str) -> dict[str, Any]:
        ctx = self.ctx
        sync = kind == "sync-base"
        payload: dict[str, Any] = {
            "kind": kind,
            "task": cell.task,
            "dataset": cell.dataset,
            "architecture": cell.architecture,
            "strategy": cell.strategy,
            "scale": ctx.scale,
            "seed": ctx.seed,
            "step_size": ctx.step_for(
                cell.task, cell.dataset, cell.strategy, cell.architecture
            ),
            "max_epochs": ctx.sync_max_epochs if sync else ctx.async_max_epochs,
            "tolerance": ctx.tolerance,
            "telemetry": ensure_telemetry(ctx.telemetry).enabled,
        }
        if sync:
            payload["cpu_model"] = ctx.cpu
            payload["gpu_model"] = ctx.gpu
        crash = self._crash_spec()
        if crash is not None and crash[0] == cell.label():
            payload["crash"] = crash[1]
        return payload

    def _config(self, payload: dict[str, Any]) -> dict[str, Any]:
        config = {
            k: v
            for k, v in payload.items()
            if k not in ("telemetry", "crash", "cpu_model", "gpu_model")
        }
        if payload["kind"] == "sync-base":
            config["hardware"] = _hw_fingerprint(self.ctx)
        return config

    def _plan(self, cells: list[GridCell]) -> list[_Job]:
        """Map requested cells onto the minimal set of worker jobs."""
        ctx = self.ctx
        jobs: list[_Job] = []
        sync_bases: dict[tuple[str, str], _Job] = {}
        for cell in cells:
            if cell.key in ctx._cache:
                continue
            if cell.strategy == "synchronous":
                group = (cell.task, cell.dataset)
                base_key = (cell.task, cell.dataset, "cpu-seq", "synchronous")
                if group in sync_bases:
                    sync_bases[group].covers.append(cell)
                    continue
                if base_key in ctx._cache:
                    # Base already ran (this or an earlier grid); the
                    # merge step re-costs straight from the cache.
                    continue
                base_cell = GridCell(cell.task, cell.dataset, "cpu-seq", "synchronous")
                payload = self._payload(base_cell, "sync-base")
                job = _Job(
                    kind="sync-base",
                    cell=base_cell,
                    payload=payload,
                    config=self._config(payload),
                    covers=[cell],
                )
                sync_bases[group] = job
                jobs.append(job)
            else:
                payload = self._payload(cell, "async")
                jobs.append(
                    _Job(
                        kind="async",
                        cell=cell,
                        payload=payload,
                        config=self._config(payload),
                        covers=[cell],
                    )
                )
        return jobs

    # -- execution ----------------------------------------------------

    def _try_resume(self, job: _Job) -> bool:
        """Fill *job* from the result store; True on a usable hit."""
        ctx = self.ctx
        if not ctx.resume or ctx.store is None:
            return False
        stored = ctx.store.load(job.config)
        if stored is None:
            return False
        if job.kind == "sync-base" and stored.epoch_trace is None:
            # An old store entry without the trace cannot be re-costed
            # for the other architectures; recompute instead.
            return False
        job.result = stored
        job.source = "resumed"
        return True

    def _run_jobs(self, jobs: list[_Job], tel, parent_span) -> None:
        """Execute the planned jobs, serially or over a process pool."""
        ctx = self.ctx
        to_run = [job for job in jobs if job.result is None]
        if not to_run:
            return
        if ctx.jobs <= 1 or len(to_run) == 1:
            for job in to_run:
                out = _execute_job(job.payload)
                job.result = out["result"]
                job.worker_pid = out["pid"]
                if out["telemetry"] is not None:
                    tel.merge_snapshot(out["telemetry"], parent_span=parent_span)
            return
        pool = ProcessPoolExecutor(
            max_workers=min(ctx.jobs, len(to_run)),
            mp_context=_fork_context(),
            initializer=_worker_init,
        )
        try:
            futures = [(job, pool.submit(_execute_job, job.payload)) for job in to_run]
            # Collect in submission order: the telemetry merge and the
            # cache fill become deterministic regardless of scheduling.
            for job, future in futures:
                try:
                    out = future.result()
                except BrokenProcessPool as exc:
                    # A dead worker poisons every outstanding future, so
                    # the cell named here is the first affected one in
                    # submission order, not necessarily the killer.
                    tel.count(keys.GRID_WORKER_FAILURES)
                    raise WorkerError(
                        "grid worker process died abruptly "
                        f"(first affected cell {job.cell.label()}): {exc}",
                        phase="pool",
                    ) from exc
                except Exception as exc:
                    tel.count(keys.GRID_WORKER_FAILURES)
                    raise WorkerError(
                        f"grid cell {job.cell.label()} failed in worker: {exc}",
                        phase="grid-cell",
                    ) from exc
                job.result = out["result"]
                job.worker_pid = out["pid"]
                if out["telemetry"] is not None:
                    tel.merge_snapshot(out["telemetry"], parent_span=parent_span)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def _merge(self, cells: list[GridCell], jobs: list[_Job], tel) -> None:
        """Fold job results into the context cache and persist them."""
        ctx = self.ctx
        for job in jobs:
            assert job.result is not None
            ctx._cache[job.cell.key] = job.result
            if ctx.store is not None and job.source == "executed":
                ctx.store.save(
                    job.config,
                    job.result,
                    include_trace=job.kind == "sync-base",
                )
            tel.count(keys.GRID_CELLS_EXECUTED if job.source == "executed" else keys.GRID_CELLS_RESUMED)
            if len(job.covers) > 1:
                tel.count(keys.GRID_CELLS_DEDUPED, len(job.covers) - 1)

    def _record(self, cell: GridCell, source: str, pid: int | None) -> None:
        ctx = self.ctx
        result = ctx._cache[cell.key]
        manifest = build_manifest(
            result,
            None,
            scale=ctx.scale,
            seed=ctx.seed,
            max_epochs=ctx.sync_max_epochs
            if cell.strategy == "synchronous"
            else ctx.async_max_epochs,
            extra_config={"tolerance": ctx.tolerance},
        )
        record: dict[str, Any] = {
            "cell": {
                "task": cell.task,
                "dataset": cell.dataset,
                "architecture": cell.architecture,
                "strategy": cell.strategy,
            },
            "source": source,
            "manifest": manifest.to_dict(),
        }
        if pid is not None:
            record["worker_pid"] = pid
        self.cell_records.append(record)

    def execute(self, cells: list[GridCell]) -> dict[GridCell, TrainResult]:
        """Produce every requested cell; returns cell -> result."""
        ctx = self.ctx
        tel = ensure_telemetry(ctx.telemetry)
        if ctx.resume and ctx.store is None:
            raise ConfigurationError("resume=True requires a result store")
        # Stable de-duplication of the request itself.
        unique: list[GridCell] = []
        seen: set[tuple] = set()
        for cell in cells:
            if cell.key not in seen:
                seen.add(cell.key)
                unique.append(cell)
        cells = unique

        start = time.perf_counter()
        with tel.span("grid.execute", jobs=ctx.jobs, cells=len(cells)) as span:
            tel.count(keys.GRID_CELLS_REQUESTED, len(cells))
            cached = {cell for cell in cells if cell.key in ctx._cache}
            jobs = self._plan(cells)
            for job in jobs:
                self._try_resume(job)
            self._run_jobs(jobs, tel, span if tel.enabled else None)
            self._merge(cells, jobs, tel)

            # Derive every requested cell in the parent.  Synchronous
            # re-costing shares the base's curve object, exactly like
            # the serial path.
            job_by_cell = {}
            for job in jobs:
                for covered in job.covers:
                    job_by_cell[covered.key] = job
            results: dict[GridCell, TrainResult] = {}
            for cell in cells:
                job = job_by_cell.get(cell.key)
                if cell in cached:
                    source = "cached"
                elif cell.strategy == "synchronous" and (
                    job is None or cell.key != job.cell.key
                ):
                    source = "recosted"
                    tel.count(keys.GRID_CELLS_RECOSTED)
                else:
                    source = job.source if job is not None else "recosted"
                results[cell] = ctx.run(
                    cell.task, cell.dataset, cell.architecture, cell.strategy
                )
                self._record(
                    cell, source, job.worker_pid if job is not None else None
                )
        tel.set_gauge(keys.GRID_JOBS, ctx.jobs)
        tel.set_gauge(keys.GRID_WALL_SECONDS, time.perf_counter() - start)
        return results
