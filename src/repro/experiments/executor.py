"""Process-pool execution of the experiment grid.

The paper's result set is a grid of independent cells — (dataset ×
task × architecture × strategy) — each an isolated optimisation run.
Serial drivers walk the grid one cell at a time through
:meth:`ExperimentContext.run`; this module fans the *independent* work
over ``jobs`` worker processes while preserving every semantic of the
serial path:

* **Dedup before fan-out.**  Synchronous statistical efficiency is
  architecture-independent (Section IV-A), so the three synchronous
  cells of a (task, dataset) pair share one ``cpu-seq`` optimisation
  run; only that base run goes to a worker, and the parent re-costs it
  per architecture through :meth:`ExperimentContext._run_sync` — which
  also preserves the serial path's curve-object sharing between the
  re-costed results.
* **Bit-identical results.**  Workers run the same :func:`repro.train`
  with the same derived seeds the serial loop would use; nothing about
  placement changes the numbers, which the test suite asserts by
  comparing ``jobs=4`` against ``jobs=1`` cell by cell.
* **Deterministic telemetry merge.**  Each worker carries its own
  :class:`~repro.telemetry.Telemetry`; the parent folds the snapshots
  back in *submission order* (not completion order), so counter totals
  and span ordering are reproducible run to run and match a serial
  run's totals (modulo the ``grid.*`` bookkeeping keys, which only a
  grid run emits).
* **Resumability.**  With a :class:`~repro.experiments.store.ResultStore`
  attached, every completed cell is persisted *the moment it finishes*
  — an aborted grid never loses the cells that did complete — and
  ``resume=True`` replays stored cells instead of recomputing them.
* **Warm pools, shared datasets, deduped references.**  The worker
  pool survives across ``execute()`` calls (``repro.experiments.pool``),
  dataset arrays are published once into read-only shared-memory
  segments every worker maps instead of re-generating
  (``repro.experiments.shared_data``), and reference optima are solved
  once per (task, dataset) in the parent — persisted through the
  result store — and shipped to workers in the payload.  All three are
  pure placement optimisations: the numbers are bit-identical with any
  of them disabled (``shared_data=False`` falls back to per-worker
  materialisation over copy-on-write fork memory).

Failure handling comes in two modes (see docs/RESILIENCE.md):

* **fail-fast** (the default, the historical behaviour): the first
  worker failure tears the grid down and raises a structured
  :class:`~repro.utils.errors.WorkerError`, after flushing every
  already-completed cell to the store.
* **keep-going** (``ExperimentContext.keep_going``): every job runs in
  its own supervised process with a heartbeat; crashes, stalls, worker
  exceptions and non-finite results are retried under a
  :class:`~repro.faults.CellRetryPolicy` (exponential backoff, shared
  budget, per-attempt deadline + heartbeat watchdog, step-size backoff
  for divergence) and cells that exhaust their budget are *quarantined*
  as structured :class:`~repro.experiments.resilience.CellFailure`
  records — the grid completes, degraded, instead of aborting.

Grid-level fault kinds (``cell-kill`` / ``cell-stall`` / ``cell-nan``)
from a :class:`~repro.faults.FaultPlan` chaos-test exactly these paths.

Workers disable nested reference-loss parallelism
(``REPRO_REFERENCE_JOBS=1`` via the pool initialiser) so a grid of N
workers never forks N pools of M processes.
"""

from __future__ import annotations

import heapq
import math
import multiprocessing as mp
import os
import threading
import time
from collections import deque
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import TYPE_CHECKING, Any

from ..faults.recovery import CellRetryPolicy
from ..sgd.reference import cached_reference, reference_loss, seed_reference_cache
from ..sgd.runner import TrainResult, train
from ..telemetry import keys
from ..telemetry.manifest import build_manifest
from ..telemetry.session import Telemetry, ensure_telemetry
from ..utils.errors import ConfigurationError, DivergenceError, WorkerError
from ..utils.rng import DEFAULT_SEED, derive_rng
from . import pool as grid_pool
from . import shared_data
from .resilience import CellFailure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .common import ExperimentContext

__all__ = ["GridCell", "GridExecutor", "ARCHITECTURES", "STRATEGIES"]

ARCHITECTURES = ("cpu-seq", "cpu-par", "gpu")
STRATEGIES = ("synchronous", "asynchronous")

#: Test hook: ``"task/dataset/architecture/strategy:exitcode"`` makes
#: the worker assigned that cell die with the given exit code, so the
#: crash-recovery path can be exercised without a real fault.  Read
#: from the environment (inherited by fork and spawn alike).
_CRASH_ENV = "REPRO_GRID_TEST_CRASH"

#: Exit code of a worker killed by an injected ``cell-kill`` fault
#: (distinctive, so post-mortems can tell injected deaths from real
#: ones).
_KILL_EXIT_CODE = 23

#: Fallback sleep for a ``cell-stall`` fault with no explicit seconds:
#: long enough that any sane watchdog fires first.
_DEFAULT_STALL_SECONDS = 3600.0


@dataclass(frozen=True)
class GridCell:
    """One cell of the experiment grid."""

    task: str
    dataset: str
    architecture: str
    strategy: str

    def __post_init__(self) -> None:
        if self.architecture not in ARCHITECTURES:
            raise ConfigurationError(f"unknown architecture {self.architecture!r}")
        if self.strategy not in STRATEGIES:
            raise ConfigurationError(f"unknown strategy {self.strategy!r}")

    @property
    def key(self) -> tuple[str, str, str, str]:
        """The :class:`ExperimentContext` cache key for this cell."""
        return (self.task, self.dataset, self.architecture, self.strategy)

    def label(self) -> str:
        return f"{self.task}/{self.dataset}/{self.architecture}/{self.strategy}"


@dataclass
class _Job:
    """One unit of worker work (a sync base run or one async cell)."""

    kind: str  # "sync-base" | "async"
    cell: GridCell  # the cell the worker actually trains
    payload: dict[str, Any]
    config: dict[str, Any]  # store key material
    #: Requested cells satisfied by this job (> 1 only for sync bases).
    covers: list[GridCell] = field(default_factory=list)
    result: TrainResult | None = None
    source: str = "executed"
    worker_pid: int | None = None
    #: Set instead of ``result`` when keep-going mode quarantined the
    #: cell (``source`` becomes ``"quarantined"``).
    failure: CellFailure | None = None


def _worker_init(descriptors: tuple = ()) -> None:
    """Pool initialiser: forbid nested pools, map shared datasets.

    The descriptor attach only does work on spawn platforms — fork
    children inherit the parent's installed shared-memory views and the
    call is a no-op for every already-cached dataset.
    """
    os.environ["REPRO_REFERENCE_JOBS"] = "1"
    if descriptors:
        shared_data.attach_descriptors(descriptors)


def _apply_grid_fault(payload: dict[str, Any]) -> str | None:
    """Fire a scheduled grid fault inside the worker, if armed.

    ``cell-kill`` and ``cell-stall`` act here (the process dies or
    wedges); ``cell-nan`` returns ``"nan"`` so the caller can poison
    the finished result.  A fault with a ``wK`` worker token only fires
    on attempts 1..K — the vehicle for *transient* faults that a retry
    heals.
    """
    fault = payload.get("grid_fault")
    if fault is None:
        return None
    attempt = payload.get("grid_attempt", 1)
    fire_through = fault.get("attempts")
    if fire_through is not None and attempt > fire_through:
        return None
    kind = fault["kind"]
    if kind == "cell-kill":  # pragma: no cover - dies by design
        os._exit(_KILL_EXIT_CODE)
    if kind == "cell-stall":
        time.sleep(fault.get("seconds") or _DEFAULT_STALL_SECONDS)
        return None
    return "nan"


def _execute_job(payload: dict[str, Any]) -> dict[str, Any]:
    """Train one configuration (runs in a worker, or in-parent for jobs=1)."""
    crash = payload.get("crash")
    if crash is not None:  # pragma: no cover - dies by design
        os._exit(int(crash))
    references = payload.get("reference")
    if references:
        # The parent already solved (or loaded) this cell's reference
        # optimum; seeding the cache keeps the solve out of the worker.
        seed_reference_cache(references)
    poison = _apply_grid_fault(payload)
    tel = Telemetry() if payload.get("telemetry") else None
    result = train(
        payload["task"],
        payload["dataset"],
        architecture=payload["architecture"],
        strategy=payload["strategy"],
        scale=payload["scale"],
        seed=payload["seed"],
        step_size=payload["step_size"],
        max_epochs=payload["max_epochs"],
        early_stop_tolerance=payload["tolerance"],
        cpu_model=payload.get("cpu_model"),
        gpu_model=payload.get("gpu_model"),
        telemetry=tel,
    )
    if poison == "nan":
        result.diverged = True
    return {
        "result": result,
        "telemetry": tel.snapshot_for_merge() if tel is not None else None,
        "pid": os.getpid(),
    }


def _resilient_worker(
    payload, conn, heartbeat, interval: float, descriptors=()
) -> None:
    """Entry point of one supervised keep-going worker process.

    Injected kill/stall faults fire *before* the heartbeat thread
    starts, so a stalled worker's heartbeat stays at its spawn value
    and the parent watchdog sees the silence.  Everything the worker
    has to say goes back over *conn* as one dict: ``{"ok": True, ...}``
    with the trained result, or ``{"ok": False, ...}`` describing the
    exception.  A worker that dies without sending is a crash.
    """
    os.environ["REPRO_REFERENCE_JOBS"] = "1"
    if descriptors:
        shared_data.attach_descriptors(descriptors)
    payload = dict(payload)
    poison = _apply_grid_fault(payload)
    payload.pop("grid_fault", None)
    stop = threading.Event()

    def _beat() -> None:
        while not stop.is_set():
            heartbeat.value = time.time()
            stop.wait(interval)

    beater = threading.Thread(target=_beat, daemon=True)
    beater.start()
    try:
        out = _execute_job(payload)
        if poison == "nan":
            out["result"].diverged = True
        conn.send({"ok": True, **out})
    except BaseException as exc:  # noqa: BLE001 - ships the failure home
        try:
            conn.send(
                {
                    "ok": False,
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "pid": os.getpid(),
                }
            )
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        stop.set()
        conn.close()


def _result_is_finite(result: TrainResult) -> bool:
    """The divergence sentinel's check: every reported loss is finite."""
    if result.diverged:
        return False
    return all(math.isfinite(loss) for loss in result.curve.losses)


@dataclass
class _CellState:
    """Parent-side supervision state of one keep-going job."""

    job: _Job
    index: int  # 1-based submission index (= FaultSpec.epoch)
    fault: dict[str, Any] | None = None
    attempts: int = 0
    resubmissions: int = 0  # backoff exponent
    divergence_retries: int = 0
    step_size: float | None = None  # backed-off step, once diverged
    errors: list[dict[str, Any]] = field(default_factory=list)
    pids: list[int | None] = field(default_factory=list)
    first_spawn: float | None = None
    proc: Any = None
    conn: Any = None
    heartbeat: Any = None
    spawned_at: float = 0.0


def _hw_fingerprint(ctx: "ExperimentContext") -> dict[str, Any]:
    """Hashable description of the machine models costing a sync base.

    Part of the store key for synchronous runs: their ``time_per_iter``
    is computed from these models, so changing a spec must miss.
    """
    return {
        "cpu": {
            "spec": asdict(ctx.cpu.spec),
            "policy": asdict(ctx.cpu.policy),
            "irregular_penalty": ctx.cpu.irregular_penalty,
            "model_coherence": ctx.cpu.model_coherence,
        },
        "gpu": {
            "spec": asdict(ctx.gpu.spec),
            "irregular_penalty": ctx.gpu.irregular_penalty,
            "warp_shuffle": ctx.gpu.warp_shuffle,
        },
    }


def _fork_context() -> mp.context.BaseContext:
    # Fork shares the parent's loaded datasets copy-on-write (the same
    # choice the shm backend makes); spawn is the portable fallback.
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


class GridExecutor:
    """Plans, deduplicates, fans out and merges one grid of cells."""

    def __init__(self, ctx: "ExperimentContext") -> None:
        self.ctx = ctx
        #: Per-cell provenance records for the grid manifest, in the
        #: requested cell order.
        self.cell_records: list[dict[str, Any]] = []

    # -- planning -----------------------------------------------------

    def _crash_spec(self) -> tuple[str, int] | None:
        raw = os.environ.get(_CRASH_ENV)
        if not raw:
            return None
        label, _, code = raw.partition(":")
        return label, int(code or "13")

    def _payload(self, cell: GridCell, kind: str) -> dict[str, Any]:
        ctx = self.ctx
        sync = kind == "sync-base"
        payload: dict[str, Any] = {
            "kind": kind,
            "task": cell.task,
            "dataset": cell.dataset,
            "architecture": cell.architecture,
            "strategy": cell.strategy,
            "scale": ctx.scale,
            "seed": ctx.seed,
            "step_size": ctx.step_for(
                cell.task, cell.dataset, cell.strategy, cell.architecture
            ),
            "max_epochs": ctx.sync_max_epochs if sync else ctx.async_max_epochs,
            "tolerance": ctx.tolerance,
            "telemetry": ensure_telemetry(ctx.telemetry).enabled,
        }
        if sync:
            payload["cpu_model"] = ctx.cpu
            payload["gpu_model"] = ctx.gpu
        crash = self._crash_spec()
        if crash is not None and crash[0] == cell.label():
            payload["crash"] = crash[1]
        return payload

    def _config(self, payload: dict[str, Any]) -> dict[str, Any]:
        config = {
            k: v
            for k, v in payload.items()
            if k
            not in (
                "telemetry",
                "crash",
                "cpu_model",
                "gpu_model",
                "grid_fault",
                "grid_attempt",
                # The pre-solved reference optimum is derived state, not
                # configuration: identical for every run of the cell.
                "reference",
            )
        }
        if payload["kind"] == "sync-base":
            config["hardware"] = _hw_fingerprint(self.ctx)
        return config

    def _plan(self, cells: list[GridCell]) -> list[_Job]:
        """Map requested cells onto the minimal set of worker jobs.

        Cells this context already quarantined are *not* re-planned:
        quarantine is sticky for the lifetime of the context (a fresh
        context — or a resumed run, which ignores failure files —
        retries them).
        """
        ctx = self.ctx
        jobs: list[_Job] = []
        sync_bases: dict[tuple[str, str], _Job] = {}
        for cell in cells:
            if cell.key in ctx._cache:
                continue
            if ctx.failure_for(*cell.key) is not None:
                continue
            if cell.strategy == "synchronous":
                group = (cell.task, cell.dataset)
                base_key = (cell.task, cell.dataset, "cpu-seq", "synchronous")
                if group in sync_bases:
                    sync_bases[group].covers.append(cell)
                    continue
                if base_key in ctx._cache:
                    # Base already ran (this or an earlier grid); the
                    # merge step re-costs straight from the cache.
                    continue
                base_cell = GridCell(cell.task, cell.dataset, "cpu-seq", "synchronous")
                payload = self._payload(base_cell, "sync-base")
                job = _Job(
                    kind="sync-base",
                    cell=base_cell,
                    payload=payload,
                    config=self._config(payload),
                    covers=[cell],
                )
                sync_bases[group] = job
                jobs.append(job)
            else:
                payload = self._payload(cell, "async")
                jobs.append(
                    _Job(
                        kind="async",
                        cell=cell,
                        payload=payload,
                        config=self._config(payload),
                        covers=[cell],
                    )
                )
        return jobs

    # -- execution ----------------------------------------------------

    def _try_resume(self, job: _Job) -> bool:
        """Fill *job* from the result store; True on a usable hit."""
        ctx = self.ctx
        if not ctx.resume or ctx.store is None:
            return False
        stored = ctx.store.load(job.config)
        if stored is None:
            return False
        if job.kind == "sync-base" and stored.epoch_trace is None:
            # An old store entry without the trace cannot be re-costed
            # for the other architectures; recompute instead.
            return False
        job.result = stored
        job.source = "resumed"
        return True

    def _persist(self, job: _Job) -> None:
        """Flush one completed job to the store, immediately.

        Called the moment a result lands (in-parent, pool collect loop,
        resilient scheduler, and the abort-path sweep), so partial
        progress survives any later failure of the same grid.
        """
        ctx = self.ctx
        if (
            ctx.store is not None
            and job.source == "executed"
            and job.result is not None
        ):
            ctx.store.save(
                job.config, job.result, include_trace=job.kind == "sync-base"
            )

    def _grid_faults(self, to_run: list[_Job]) -> dict[int, dict[str, Any]]:
        """Injected grid faults keyed by 1-based job submission index."""
        ctx = self.ctx
        if ctx.fault_plan is None:
            return {}
        return ctx.fault_plan.resolve_grid(len(to_run))

    def _dataset_specs(self, to_run: list[_Job]) -> tuple[shared_data.DatasetSpec, ...]:
        """Unique (dataset, scale, seed, mlp?) specs the jobs will load."""
        ctx = self.ctx
        specs: list[shared_data.DatasetSpec] = []
        seen: set[shared_data.DatasetSpec] = set()
        for job in to_run:
            spec = (job.cell.dataset, ctx.scale, ctx.seed, job.cell.task == "mlp")
            if spec not in seen:
                seen.add(spec)
                specs.append(spec)
        return tuple(specs)

    def _publish_shared(self, to_run: list[_Job], tel) -> tuple:
        """Copy the jobs' datasets into shared memory; return descriptors."""
        registry, published = shared_data.ensure_published(self._dataset_specs(to_run))
        if registry is None or registry.dataset_count == 0:
            return ()
        if published:
            tel.count(keys.GRID_SHM_PUBLISHED, published)
        tel.set_gauge(keys.GRID_SHM_DATASETS, registry.dataset_count)
        tel.set_gauge(keys.GRID_SHM_SEGMENTS, registry.segment_count)
        tel.set_gauge(keys.GRID_SHM_BYTES, registry.bytes_shared)
        return registry.descriptors()

    def _prepare_references(self, to_run: list[_Job], tel) -> None:
        """Resolve each job's reference optimum once per (task, dataset).

        A serial grid solves the reference lazily inside :func:`train`
        and shares it through the in-process cache; a fan-out without
        this step would instead solve it once per *worker*.  Solving (or
        loading) it in the parent and shipping the value in the payload
        keeps the count at one solve per (task, dataset) regardless of
        placement — and persists it through the result store so resumed
        grids never re-solve at all.
        """
        resolved: dict[tuple[str, str], tuple[str, float] | None] = {}
        for job in to_run:
            pair = (job.cell.task, job.cell.dataset)
            if pair not in resolved:
                resolved[pair] = self._resolve_reference(*pair, tel=tel)
            entry = resolved[pair]
            if entry is not None:
                job.payload["reference"] = {entry[0]: entry[1]}

    def _resolve_reference(
        self, task: str, dataset: str, *, tel
    ) -> tuple[str, float] | None:
        """One cell family's reference optimum: cache -> store -> solve.

        Mirrors :func:`repro.train`'s key derivation exactly, so the
        shipped value is the one the worker would have computed.  Load
        or solve failures return ``None`` — the owning cell then fails
        (or succeeds) in its worker exactly as it would have without
        this optimisation.
        """
        from ..datasets import load, load_mlp
        from ..models import make_model

        ctx = self.ctx
        try:
            ds = (
                load_mlp(dataset, ctx.scale, ctx.seed)
                if task == "mlp"
                else load(dataset, ctx.scale, ctx.seed)
            )
        except Exception:
            return None
        ref_seed = ctx.seed if ctx.seed is not None else DEFAULT_SEED
        key = f"{task}/{dataset}/{ds.n_examples}x{ds.n_features}/seed{ref_seed}"
        value = cached_reference(key)
        if value is None and ctx.store is not None:
            value = ctx.store.load_reference(key)
            if value is not None:
                seed_reference_cache({key: value})
        if value is None:
            model = make_model(task, ds)
            init = model.init_params(derive_rng(ctx.seed, f"init/{task}/{dataset}"))
            try:
                value = reference_loss(model, ds.X, ds.y, init, key=key)
            except Exception:
                return None
            tel.count(keys.GRID_REFERENCE_COMPUTED)
        else:
            tel.count(keys.GRID_REFERENCE_REUSED)
        if ctx.store is not None:
            ctx.store.save_reference(key, value)
        return key, value

    def _run_jobs(self, jobs: list[_Job], tel, parent_span) -> None:
        """Execute the planned jobs, serially or over worker processes."""
        ctx = self.ctx
        to_run = [job for job in jobs if job.result is None]
        if not to_run:
            return
        fan_out = ctx.keep_going or (ctx.jobs > 1 and len(to_run) > 1)
        if fan_out or ctx.store is not None:
            self._prepare_references(to_run, tel)
        descriptors: tuple = ()
        if fan_out and ctx.shared_data:
            descriptors = self._publish_shared(to_run, tel)
        if ctx.keep_going:
            self._run_jobs_resilient(to_run, tel, parent_span, descriptors)
            return
        faults = self._grid_faults(to_run)
        if ctx.jobs <= 1 or len(to_run) == 1:
            # In-parent: grid faults are not injected here (a cell-kill
            # would take the parent down with it); fail-fast in-parent
            # keeps the historical semantics, now with a structured
            # wrapper and per-cell flushing.
            for job in to_run:
                try:
                    out = _execute_job(job.payload)
                except Exception as exc:
                    tel.count(keys.GRID_WORKER_FAILURES)
                    raise WorkerError(
                        f"grid cell {job.cell.label()} failed in-parent: {exc}",
                        phase="grid-cell",
                    ) from exc
                job.result = out["result"]
                job.worker_pid = out["pid"]
                self._persist(job)
                if out["telemetry"] is not None:
                    tel.merge_snapshot(out["telemetry"], parent_span=parent_span)
            return
        pool, created = grid_pool.acquire_pool(
            ctx.jobs,
            shared=ctx.shared_data,
            specs=self._dataset_specs(to_run),
            mp_context=_fork_context(),
            initializer=_worker_init,
            initargs=(descriptors,),
        )
        tel.count(keys.GRID_POOL_CREATED if created else keys.GRID_POOL_REUSED)
        tel.set_gauge(keys.GRID_POOL_WORKERS, ctx.jobs)
        try:
            futures = []
            try:
                for index, job in enumerate(to_run, start=1):
                    payload = job.payload
                    if index in faults:
                        payload = {
                            **payload,
                            "grid_fault": faults[index],
                            "grid_attempt": 1,
                        }
                    futures.append((job, pool.submit(_execute_job, payload)))
            except BrokenProcessPool as exc:
                # A warm pool's workers start immediately, so a cell
                # that kills its worker can poison the pool while the
                # parent is still submitting — submit() then raises
                # instead of the future.  Same structured translation
                # as the collect loop below.
                tel.count(keys.GRID_WORKER_FAILURES)
                self._flush_completed(futures)
                raise WorkerError(
                    "grid worker process died abruptly "
                    f"(while submitting cell {job.cell.label()}): {exc}",
                    phase="pool",
                ) from exc
            # Collect in submission order: the telemetry merge and the
            # cache fill become deterministic regardless of scheduling.
            for job, future in futures:
                try:
                    out = future.result()
                except BrokenProcessPool as exc:
                    # A dead worker poisons every outstanding future, so
                    # the cell named here is the first affected one in
                    # submission order, not necessarily the killer.
                    tel.count(keys.GRID_WORKER_FAILURES)
                    self._flush_completed(futures)
                    raise WorkerError(
                        "grid worker process died abruptly "
                        f"(first affected cell {job.cell.label()}): {exc}",
                        phase="pool",
                    ) from exc
                except Exception as exc:
                    tel.count(keys.GRID_WORKER_FAILURES)
                    self._flush_completed(futures)
                    raise WorkerError(
                        f"grid cell {job.cell.label()} failed in worker: {exc}",
                        phase="grid-cell",
                    ) from exc
                job.result = out["result"]
                job.worker_pid = out["pid"]
                self._persist(job)
                if out["telemetry"] is not None:
                    tel.merge_snapshot(out["telemetry"], parent_span=parent_span)
        except BaseException:
            # Warm reuse is strictly the happy path: any failure —
            # broken pool, worker exception, interrupt — retires the
            # pool so no zombie task can bleed into the next grid.
            # (Shared-data segments survive; they are read-only inputs.)
            tel.count(keys.GRID_POOL_RETIRED)
            grid_pool.retire_pool()
            raise

    def _flush_completed(self, futures) -> None:
        """Abort-path sweep: persist every future that did complete.

        The submission-order collect loop may be stuck on job k while
        jobs k+1.. already finished; without this sweep their results
        would be lost when the grid raises.
        """
        for job, future in futures:
            if job.result is not None:
                continue
            if not future.done() or future.cancelled():
                continue
            try:
                if future.exception() is not None:
                    continue
                out = future.result()
            except Exception:  # pragma: no cover - racing a dying pool
                continue
            job.result = out["result"]
            job.worker_pid = out["pid"]
            self._persist(job)

    # -- keep-going scheduler -----------------------------------------

    def _run_jobs_resilient(
        self, to_run: list[_Job], tel, parent_span, descriptors: tuple = ()
    ) -> None:
        """Supervised per-job processes with retry, watchdog, quarantine.

        Every job gets its own process, pipe and heartbeat slot.  The
        parent runs an event loop over the pipes: results are collected
        as they land (each immediately persisted), failures are retried
        with exponential backoff under the shared
        :class:`~repro.faults.CellRetryPolicy` budget, wedged workers
        are killed by the deadline/heartbeat watchdog, and non-finite
        results get one step-size-backoff retry before quarantine.
        Telemetry snapshots are buffered and merged in submission order
        after the loop, so the merge stays deterministic even though
        completion order is not.
        """
        ctx = self.ctx
        policy = ctx.retry if ctx.retry is not None else CellRetryPolicy()
        mp_ctx = _fork_context()
        faults = self._grid_faults(to_run)
        states = [
            _CellState(job=job, index=i, fault=faults.get(i))
            for i, job in enumerate(to_run, start=1)
        ]
        pending: deque[_CellState] = deque(states)
        delayed: list[tuple[float, int, _CellState]] = []
        running: dict[Any, _CellState] = {}
        snapshots: dict[int, dict[str, Any]] = {}
        budget = policy.max_restarts
        max_workers = min(max(1, ctx.jobs), len(to_run))
        push_seq = 0
        if policy.heartbeat_timeout is not None:
            beat_interval = max(0.01, min(policy.heartbeat_timeout / 4.0, 0.5))
        else:
            beat_interval = 0.5

        def _spawn(state: _CellState) -> None:
            state.attempts += 1
            payload = dict(state.job.payload)
            if state.step_size is not None:
                payload["step_size"] = state.step_size
            if state.fault is not None:
                payload["grid_fault"] = state.fault
                payload["grid_attempt"] = state.attempts
            recv_conn, send_conn = mp_ctx.Pipe(duplex=False)
            heartbeat = mp_ctx.Value("d", time.time())
            proc = mp_ctx.Process(
                target=_resilient_worker,
                args=(payload, send_conn, heartbeat, beat_interval, descriptors),
                daemon=True,
            )
            proc.start()
            send_conn.close()
            now = time.monotonic()
            if state.first_spawn is None:
                state.first_spawn = now
            state.proc, state.conn, state.heartbeat = proc, recv_conn, heartbeat
            state.spawned_at = now
            state.pids.append(proc.pid)
            running[recv_conn] = state

        def _reap(state: _CellState) -> None:
            proc = state.proc
            try:
                state.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            if proc is None:
                return
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - refuses to die
                proc.kill()
                proc.join()
            state.proc = state.conn = state.heartbeat = None

        def _quarantine(
            state: _CellState, kind: str, *, budget_exhausted: bool
        ) -> None:
            job = state.job
            elapsed = time.monotonic() - (state.first_spawn or time.monotonic())
            failure = CellFailure(
                task=job.cell.task,
                dataset=job.cell.dataset,
                architecture=job.cell.architecture,
                strategy=job.cell.strategy,
                kind=kind,
                phase="collect" if kind == "divergence" else "train",
                attempts=state.attempts,
                error_chain=tuple(state.errors),
                elapsed_seconds=elapsed,
                worker_pids=tuple(state.pids),
                budget_exhausted=budget_exhausted,
                covers=tuple(c.label() for c in job.covers),
            )
            job.failure = failure
            job.source = "quarantined"
            tel.count(keys.GRID_QUARANTINE_CELLS, len(job.covers))
            if budget_exhausted:
                tel.count(keys.GRID_QUARANTINE_BUDGET_EXHAUSTED)

        def _failed(state: _CellState, kind: str, entry: dict[str, Any]) -> None:
            nonlocal budget, push_seq
            entry = {**entry, "attempt": state.attempts, "kind": kind}
            state.errors.append(entry)
            if kind == "crash":
                tel.count(keys.GRID_RETRY_CRASHES)
            elif kind == "stall":
                tel.count(keys.GRID_RETRY_STALLS)
            elif kind == "divergence":
                tel.count(keys.GRID_RETRY_DIVERGENCES)
            else:
                tel.count(keys.GRID_WORKER_FAILURES)
            if kind == "divergence":
                retry_ok = state.divergence_retries < policy.divergence_retries
            else:
                retry_ok = state.attempts < policy.max_attempts
            if not retry_ok:
                _quarantine(state, kind, budget_exhausted=False)
                return
            if budget <= 0:
                _quarantine(state, kind, budget_exhausted=True)
                return
            budget -= 1
            if kind == "divergence":
                state.divergence_retries += 1
                current = (
                    state.step_size
                    if state.step_size is not None
                    else state.job.payload["step_size"]
                )
                state.step_size = current * policy.step_backoff
            delay = policy.retry_delay(state.resubmissions)
            state.resubmissions += 1
            tel.count(keys.GRID_RETRY_ATTEMPTS)
            tel.count(keys.GRID_RETRY_BACKOFF_SECONDS, delay)
            push_seq += 1
            heapq.heappush(delayed, (time.monotonic() + delay, push_seq, state))

        def _collect(state: _CellState) -> None:
            try:
                msg = state.conn.recv()
            except (EOFError, OSError):
                msg = None
            proc = state.proc
            _reap(state)
            if msg is None:
                exitcode = proc.exitcode if proc is not None else None
                _failed(
                    state,
                    "crash",
                    {
                        "type": "WorkerCrash",
                        "message": (
                            f"worker pid {state.pids[-1]} died without a result "
                            f"(exit code {exitcode})"
                        ),
                    },
                )
                return
            if not msg.get("ok"):
                _failed(
                    state,
                    "exception",
                    {
                        "type": msg.get("type", "Exception"),
                        "message": msg.get("message", ""),
                    },
                )
                return
            job = state.job
            result = msg["result"]
            if not _result_is_finite(result):
                step = (
                    state.step_size
                    if state.step_size is not None
                    else job.payload["step_size"]
                )
                err = DivergenceError(
                    f"non-finite loss from grid cell {job.cell.label()} "
                    f"at step size {step:g}",
                    cell=job.cell.label(),
                    step_size=step,
                    attempt=state.attempts,
                )
                _failed(
                    state, "divergence", {"type": "DivergenceError", **err.describe()}
                )
                return
            if state.step_size is not None:
                # The divergence sentinel changed the step: the store
                # key must describe the run that actually produced this
                # result.
                job.payload = {**job.payload, "step_size": state.step_size}
                job.config = self._config(job.payload)
            job.result = result
            job.worker_pid = msg["pid"]
            self._persist(job)
            if msg.get("telemetry") is not None:
                snapshots[id(job)] = msg["telemetry"]

        def _watchdog() -> None:
            now_m = time.monotonic()
            now_w = time.time()
            wedged = []
            for state in running.values():
                if (
                    policy.deadline is not None
                    and now_m - state.spawned_at > policy.deadline
                ):
                    wedged.append((state, "deadline", now_m - state.spawned_at))
                elif (
                    policy.heartbeat_timeout is not None
                    and now_w - state.heartbeat.value > policy.heartbeat_timeout
                ):
                    wedged.append((state, "heartbeat", now_w - state.heartbeat.value))
            for state, why, silence in wedged:
                running.pop(state.conn, None)
                proc = state.proc
                if proc is not None and proc.is_alive():
                    proc.terminate()
                _reap(state)
                _failed(
                    state,
                    "stall",
                    {
                        "type": "WorkerStall",
                        "message": (
                            f"worker pid {state.pids[-1]} killed by the {why} "
                            f"watchdog after {silence:.1f}s"
                        ),
                    },
                )

        def _tick_timeout() -> float:
            candidates = [0.5]
            now_m = time.monotonic()
            if delayed:
                candidates.append(delayed[0][0] - now_m)
            now_w = time.time()
            for state in running.values():
                if policy.deadline is not None:
                    candidates.append(policy.deadline - (now_m - state.spawned_at))
                if policy.heartbeat_timeout is not None:
                    candidates.append(
                        policy.heartbeat_timeout - (now_w - state.heartbeat.value)
                    )
            return max(0.02, min(candidates))

        try:
            while pending or delayed or running:
                now_m = time.monotonic()
                while delayed and delayed[0][0] <= now_m:
                    pending.append(heapq.heappop(delayed)[2])
                while pending and len(running) < max_workers:
                    _spawn(pending.popleft())
                if not running:
                    if delayed:
                        time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                    continue
                for conn in _conn_wait(list(running), timeout=_tick_timeout()):
                    state = running.pop(conn)
                    _collect(state)
                _watchdog()
        finally:
            for state in list(running.values()):
                proc = state.proc
                if proc is not None and proc.is_alive():  # pragma: no cover - abort
                    proc.kill()
                _reap(state)
        # Deterministic merge: submission order, final attempts only.
        for job in to_run:
            snap = snapshots.get(id(job))
            if snap is not None:
                tel.merge_snapshot(snap, parent_span=parent_span)

    # -- merge and provenance -----------------------------------------

    def _merge(self, cells: list[GridCell], jobs: list[_Job], tel) -> None:
        """Fold job results (and quarantines) into the context."""
        ctx = self.ctx
        for job in jobs:
            if job.result is None:
                failure = job.failure
                assert failure is not None, (
                    "job finished with neither result nor failure"
                )
                ctx.failures[job.cell.key] = failure
                if ctx.store is not None:
                    ctx.store.save_failure(job.config, failure)
                continue
            ctx._cache[job.cell.key] = job.result
            tel.count(keys.GRID_CELLS_EXECUTED if job.source == "executed" else keys.GRID_CELLS_RESUMED)
            if len(job.covers) > 1:
                tel.count(keys.GRID_CELLS_DEDUPED, len(job.covers) - 1)

    def _record(self, cell: GridCell, source: str, pid: int | None) -> None:
        ctx = self.ctx
        result = ctx._cache[cell.key]
        manifest = build_manifest(
            result,
            None,
            scale=ctx.scale,
            seed=ctx.seed,
            max_epochs=ctx.sync_max_epochs
            if cell.strategy == "synchronous"
            else ctx.async_max_epochs,
            extra_config={"tolerance": ctx.tolerance},
        )
        record: dict[str, Any] = {
            "cell": {
                "task": cell.task,
                "dataset": cell.dataset,
                "architecture": cell.architecture,
                "strategy": cell.strategy,
            },
            "source": source,
            "manifest": manifest.to_dict(),
        }
        if pid is not None:
            record["worker_pid"] = pid
        self.cell_records.append(record)

    def _record_quarantined(self, cell: GridCell, failure: CellFailure) -> None:
        self.cell_records.append(
            {
                "cell": {
                    "task": cell.task,
                    "dataset": cell.dataset,
                    "architecture": cell.architecture,
                    "strategy": cell.strategy,
                },
                "source": "quarantined",
                "failure": failure.describe(),
            }
        )

    def execute(self, cells: list[GridCell]) -> dict[GridCell, TrainResult]:
        """Produce every requested cell; returns cell -> result.

        Quarantined cells (keep-going mode) are absent from the result
        map; their :class:`CellFailure` lands in ``ctx.failures`` and
        as a ``source="quarantined"`` record in the grid manifest.
        """
        ctx = self.ctx
        tel = ensure_telemetry(ctx.telemetry)
        if ctx.resume and ctx.store is None:
            raise ConfigurationError("resume=True requires a result store")
        # Stable de-duplication of the request itself.
        unique: list[GridCell] = []
        seen: set[tuple] = set()
        for cell in cells:
            if cell.key not in seen:
                seen.add(cell.key)
                unique.append(cell)
        cells = unique

        start = time.perf_counter()
        with tel.span("grid.execute", jobs=ctx.jobs, cells=len(cells)) as span:
            tel.count(keys.GRID_CELLS_REQUESTED, len(cells))
            cached = {cell for cell in cells if cell.key in ctx._cache}
            jobs = self._plan(cells)
            for job in jobs:
                self._try_resume(job)
            self._run_jobs(jobs, tel, span if tel.enabled else None)
            self._merge(cells, jobs, tel)

            # Derive every requested cell in the parent.  Synchronous
            # re-costing shares the base's curve object, exactly like
            # the serial path.
            job_by_cell = {}
            for job in jobs:
                for covered in job.covers:
                    job_by_cell[covered.key] = job
            results: dict[GridCell, TrainResult] = {}
            for cell in cells:
                failure = ctx.failure_for(*cell.key)
                if failure is not None and cell.key not in ctx._cache:
                    self._record_quarantined(cell, failure)
                    continue
                job = job_by_cell.get(cell.key)
                if cell in cached:
                    source = "cached"
                elif cell.strategy == "synchronous" and (
                    job is None or cell.key != job.cell.key
                ):
                    source = "recosted"
                    tel.count(keys.GRID_CELLS_RECOSTED)
                else:
                    source = job.source if job is not None else "recosted"
                results[cell] = ctx.run(
                    cell.task, cell.dataset, cell.architecture, cell.strategy
                )
                self._record(
                    cell, source, job.worker_pid if job is not None else None
                )
        tel.set_gauge(keys.GRID_JOBS, ctx.jobs)
        tel.set_gauge(keys.GRID_WALL_SECONDS, time.perf_counter() - start)
        return results
