"""Shared-memory dataset segments for the parallel experiment grid.

Profiling the grid executor (ROADMAP open item 3, BENCH_3/BENCH_4)
showed that parallel runs were *slower* than serial at ``--jobs 4``:
every worker re-materialised every dataset it touched, so the fan-out
paid ``jobs x`` dataset generation on top of process spawn.  This module
removes that cost with the same idiom the Hogwild shm backend uses
(``repro.parallel.shm``): the parent copies each loaded dataset's
arrays into :mod:`multiprocessing.shared_memory` segments **once**,
publishes a small picklable descriptor per dataset, and every worker
maps the segments read-only.

Lifecycle
---------

* The parent calls :func:`ensure_published` with the ``(name, scale,
  seed, mlp)`` specs the grid needs.  Publishing is incremental and
  idempotent: already-published datasets are skipped, new ones are
  added to the process-wide registry.
* Publishing also installs the shm-backed read-only ``Dataset`` view
  into the dataset registry cache (:func:`repro.datasets.registry.cache_put`),
  so **forked** children inherit the views for free — zero copies, zero
  attach calls.
* On spawn platforms (or after an exec) workers receive the descriptors
  via the pool initializer and call :func:`attach_descriptors`, which
  maps each segment by name.  The call is a no-op for any dataset whose
  cache slot is already populated (the fork-inheritance fast path).
* Teardown (:func:`shutdown_shared_data`, also registered ``atexit``)
  first evicts the installed cache views, then closes and unlinks every
  segment — in that order, so no live cache entry can ever point at
  freed memory.  The CI leak checks (``ls /dev/shm/psm_*``) hold on
  every exit path, including quarantine and ``KeyboardInterrupt``.

Workers never write the shared arrays: every view is created with
``writeable = False``, and the training stack treats datasets as
immutable (model state is per-run, datasets are inputs).
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Iterable, Sequence

import numpy as np

from ..datasets import registry as dataset_registry
from ..datasets.synthetic import Dataset
from ..linalg.csr import CSRMatrix

__all__ = [
    "SharedArraySpec",
    "SharedDatasetDescriptor",
    "SharedDatasetRegistry",
    "DatasetSpec",
    "ensure_published",
    "active_registry",
    "attach_descriptors",
    "shutdown_shared_data",
]

# (dataset name, scale, seed, mlp-variant?) — the unit of publication.
DatasetSpec = tuple[str, str, "int | None", bool]


@dataclass(frozen=True)
class SharedArraySpec:
    """One named array inside a shared dataset: where and what it is."""

    segment: str
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedDatasetDescriptor:
    """Everything a worker needs to rebuild a dataset over shm segments.

    Picklable (spawn-safe): segment *names* plus array metadata plus the
    small frozen profile dataclass — never the segments themselves.
    """

    spec: DatasetSpec
    dataset_name: str
    kind: str  # "dense" | "csr"
    shape: tuple[int, int]
    arrays: dict[str, SharedArraySpec]
    profile: Any  # DatasetProfile (frozen dataclass, picklable)


@dataclass
class _PublishedDataset:
    descriptor: SharedDatasetDescriptor
    segments: list[shared_memory.SharedMemory] = field(default_factory=list)
    nbytes: int = 0


def _share_array(arr: np.ndarray) -> tuple[shared_memory.SharedMemory, SharedArraySpec]:
    """Copy *arr* into a fresh shm segment; return it with its metadata."""
    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    return shm, SharedArraySpec(shm.name, tuple(arr.shape), str(arr.dtype))


def _view_from(spec: SharedArraySpec, shm: shared_memory.SharedMemory) -> np.ndarray:
    """A read-only ndarray over an (already attached) segment."""
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    view.flags.writeable = False
    return view


def _build_dataset(
    desc: SharedDatasetDescriptor, views: dict[str, np.ndarray]
) -> Dataset:
    """Reconstruct the Dataset from read-only views (no array copies).

    ``CSRMatrix.__init__`` runs the arrays through ``ascontiguousarray``;
    because the views already carry the canonical dtypes and are
    contiguous, that call returns the same read-only objects untouched.
    """
    if desc.kind == "csr":
        X: Any = CSRMatrix(
            views["indptr"], views["indices"], views["data"], desc.shape, check=False
        )
    else:
        X = views["X"]
    return Dataset(name=desc.dataset_name, X=X, y=views["y"], profile=desc.profile)


class SharedDatasetRegistry:
    """Parent-side owner of published shared-memory datasets.

    Owns the segments (close + unlink on :meth:`close`) and the cache
    installations it performed.  Publication is incremental: one
    registry serves the whole process, growing as new grids request new
    datasets.
    """

    def __init__(self) -> None:
        self._published: dict[DatasetSpec, _PublishedDataset] = {}
        self._closed = False

    # -- publication -------------------------------------------------------

    def publish(
        self, name: str, scale: str, seed: int | None, *, mlp: bool = False
    ) -> SharedDatasetDescriptor:
        """Publish one dataset (idempotent); install the shm view locally."""
        spec: DatasetSpec = (name, scale, seed, mlp)
        if spec in self._published:
            return self._published[spec].descriptor
        if self._closed:
            raise RuntimeError("shared-dataset registry is closed")
        ds = (
            dataset_registry.load_mlp(name, scale, seed)
            if mlp
            else dataset_registry.load(name, scale, seed)
        )
        entry = _PublishedDataset(descriptor=None)  # type: ignore[arg-type]
        arrays: dict[str, SharedArraySpec] = {}
        raw: dict[str, np.ndarray] = {"y": np.asarray(ds.y)}
        if isinstance(ds.X, CSRMatrix):
            kind = "csr"
            raw.update(indptr=ds.X.indptr, indices=ds.X.indices, data=ds.X.data)
        else:
            kind = "dense"
            raw["X"] = np.asarray(ds.X)
        try:
            for label, arr in raw.items():
                shm, aspec = _share_array(arr)
                entry.segments.append(shm)
                entry.nbytes += arr.nbytes
                arrays[label] = aspec
        except BaseException:
            for shm in entry.segments:
                shm.close()
                shm.unlink()
            raise
        desc = SharedDatasetDescriptor(
            spec=spec,
            dataset_name=ds.name,
            kind=kind,
            shape=(int(ds.X.shape[0]), int(ds.X.shape[1])),
            arrays=arrays,
            profile=ds.profile,
        )
        entry.descriptor = desc
        views = {
            label: _view_from(arrays[label], entry.segments[i])
            for i, label in enumerate(raw)
        }
        dataset_registry.cache_put(
            name, scale, seed, _build_dataset(desc, views), mlp=mlp
        )
        self._published[spec] = entry
        return desc

    # -- introspection -----------------------------------------------------

    def descriptors(self) -> tuple[SharedDatasetDescriptor, ...]:
        return tuple(p.descriptor for p in self._published.values())

    def specs(self) -> frozenset[DatasetSpec]:
        return frozenset(self._published)

    @property
    def dataset_count(self) -> int:
        return len(self._published)

    @property
    def segment_count(self) -> int:
        return sum(len(p.segments) for p in self._published.values())

    @property
    def bytes_shared(self) -> int:
        return sum(p.nbytes for p in self._published.values())

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        """Evict installed views, then close + unlink every segment."""
        if self._closed:
            return
        self._closed = True
        for (name, scale, seed, mlp) in self._published:
            dataset_registry.cache_evict(name, scale, seed, mlp=mlp)
        for entry in self._published.values():
            for shm in entry.segments:
                try:
                    shm.close()
                    shm.unlink()
                except (FileNotFoundError, OSError):  # already gone: fine
                    pass
        self._published.clear()


# -- process-wide registry -------------------------------------------------

_REGISTRY: SharedDatasetRegistry | None = None
_ATEXIT_REGISTERED = False


def ensure_published(
    specs: Iterable[DatasetSpec],
) -> tuple[SharedDatasetRegistry | None, int]:
    """Publish any not-yet-shared datasets; return ``(registry, newly_published)``.

    A dataset that fails to load (unknown name, bad profile) is skipped:
    the worker that needs it will raise the same error it always did,
    and the grid reports it against the right cell.  Returns ``(None,
    0)`` when shared memory itself is unavailable on the platform.
    """
    global _REGISTRY, _ATEXIT_REGISTERED
    if _REGISTRY is None:
        _REGISTRY = SharedDatasetRegistry()
    if not _ATEXIT_REGISTERED:
        atexit.register(shutdown_shared_data)
        _ATEXIT_REGISTERED = True
    published = 0
    for name, scale, seed, mlp in specs:
        try:
            before = _REGISTRY.dataset_count
            _REGISTRY.publish(name, scale, seed, mlp=mlp)
            published += _REGISTRY.dataset_count - before
        except OSError:
            # shm unavailable / exhausted: fall back to per-worker
            # materialisation for everything not yet published.
            break
        except Exception:
            continue  # unloadable dataset: let the owning cell report it
    return _REGISTRY, published


def active_registry() -> SharedDatasetRegistry | None:
    """The process-wide registry, or None before first publication."""
    return _REGISTRY


def shutdown_shared_data() -> None:
    """Close and unlink every published segment (idempotent)."""
    global _REGISTRY
    if _REGISTRY is not None:
        _REGISTRY.close()
        _REGISTRY = None


# -- worker side -----------------------------------------------------------

# Attached segments are kept alive for the worker's lifetime: the numpy
# views borrow their buffers, so the SharedMemory objects must not be
# garbage collected underneath them.
_ATTACHED: list[shared_memory.SharedMemory] = []


def attach_descriptors(descriptors: Sequence[SharedDatasetDescriptor]) -> int:
    """Map published datasets into this process's dataset cache.

    Fork children inherit the parent's cache installations and skip every
    descriptor; spawn children attach each segment by name.  Returns the
    number of datasets newly attached.
    """
    attached = 0
    for desc in descriptors:
        name, scale, seed, mlp = desc.spec
        if dataset_registry.cache_contains(name, scale, seed, mlp=mlp):
            continue  # fork-inherited (or locally generated): keep it
        try:
            views: dict[str, np.ndarray] = {}
            segments: list[shared_memory.SharedMemory] = []
            for label, aspec in desc.arrays.items():
                shm = shared_memory.SharedMemory(name=aspec.segment)
                segments.append(shm)
                views[label] = _view_from(aspec, shm)
            dataset = _build_dataset(desc, views)
        except (FileNotFoundError, OSError):
            for shm in segments:
                shm.close()
            continue  # parent tore down already: regenerate locally on demand
        _ATTACHED.extend(segments)
        dataset_registry.cache_put(name, scale, seed, dataset, mlp=mlp)
        attached += 1
    return attached
