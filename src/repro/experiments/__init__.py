"""Experiment drivers: one module per table/figure of the paper."""

from .common import ExperimentContext, infinity_or
from .executor import ARCHITECTURES, STRATEGIES, GridCell, GridExecutor
from .fig1_space import Fig1Cell, Fig1Result, run_fig1_space
from .pool import shutdown_grid_pool, warm_pool_info
from .shared_data import SharedDatasetRegistry, active_registry, shutdown_shared_data
from .fig6 import DEFAULT_ARCHITECTURES, Fig6Point, Fig6Result, run_fig6
from .fig7 import Fig7Panel, Fig7Result, run_fig7
from .fig89 import Fig89Result, SpeedupEntry, run_fig8, run_fig9
from .resilience import FAILURE_KINDS, CellFailure, render_failure_section
from .tolerances import LadderEntry, ToleranceLadder, run_tolerance_ladder
from .report import ReproductionReport, Verdict, reproduce_all
from .table1 import Table1Check, Table1Result, run_table1
from .store import ResultStore, config_key
from .table2 import Table2Result, Table2Row, run_table2
from .table3 import Table3Result, Table3Row, run_table3
from .tuned import TUNED_STEPS, lookup_step

__all__ = [
    "ExperimentContext",
    "infinity_or",
    "GridCell",
    "GridExecutor",
    "ResultStore",
    "config_key",
    "CellFailure",
    "FAILURE_KINDS",
    "render_failure_section",
    "ARCHITECTURES",
    "STRATEGIES",
    "shutdown_grid_pool",
    "warm_pool_info",
    "SharedDatasetRegistry",
    "active_registry",
    "shutdown_shared_data",
    "TUNED_STEPS",
    "lookup_step",
    "run_table1",
    "Table1Result",
    "Table1Check",
    "run_table2",
    "Table2Result",
    "Table2Row",
    "run_table3",
    "Table3Result",
    "Table3Row",
    "run_fig6",
    "run_fig1_space",
    "run_tolerance_ladder",
    "ToleranceLadder",
    "LadderEntry",
    "reproduce_all",
    "ReproductionReport",
    "Verdict",
    "Fig1Result",
    "Fig1Cell",
    "Fig6Result",
    "Fig6Point",
    "DEFAULT_ARCHITECTURES",
    "run_fig7",
    "Fig7Result",
    "Fig7Panel",
    "run_fig8",
    "run_fig9",
    "Fig89Result",
    "SpeedupEntry",
]
