"""Fig. 6 — synchronous speedup vs. MLP architecture size (real-sim).

The paper grows the deep net on real-sim and shows the cpu-par/cpu-seq
speedup climbing from ~2x (all weight-gradient GEMMs below ViennaCL's
parallelisation threshold) to ~26x for a very large net, while the
gpu-over-cpu-par speedup stays roughly flat because "the largest
configuration does not fit in the GPU memory" / the input layer stays
serial.

This is a pure hardware-efficiency experiment: no optimisation is run,
only one epoch's kernel trace per architecture, priced on the three
backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datasets import load_mlp
from ..linalg import axpy, recording
from ..models.mlp import MLP
from ..sgd.runner import full_scale_factor
from ..utils.rng import derive_rng
from ..utils.tables import render_bar_chart, render_table
from ..utils.units import FLOAT64_BYTES
from .common import ExperimentContext

__all__ = ["Fig6Point", "Fig6Result", "run_fig6", "DEFAULT_ARCHITECTURES"]

#: The sweep: Table I's real-sim net up to a very large configuration.
DEFAULT_ARCHITECTURES: tuple[tuple[int, ...], ...] = (
    (50, 10, 5, 2),
    (50, 50, 25, 2),
    (50, 200, 100, 2),
    (50, 800, 400, 2),
    (50, 2048, 1024, 2),
    (50, 4096, 2048, 2),
)


@dataclass(frozen=True)
class Fig6Point:
    """Speedups of one MLP architecture."""

    arch: tuple[int, ...]
    tpi_cpu_seq: float
    tpi_cpu_par: float
    tpi_gpu: float

    @property
    def label(self) -> str:
        """Architecture label like ``50-200-100-2``."""
        return "-".join(str(a) for a in self.arch)

    @property
    def speedup_par_over_seq(self) -> float:
        """cpu-seq / cpu-par time ratio (the climbing series)."""
        return self.tpi_cpu_seq / self.tpi_cpu_par

    @property
    def speedup_gpu_over_par(self) -> float:
        """cpu-par / gpu time ratio (the roughly flat series)."""
        return self.tpi_cpu_par / self.tpi_gpu


@dataclass
class Fig6Result:
    """The sweep's points plus rendering and shape checks."""

    points: list[Fig6Point] = field(default_factory=list)

    def render(self) -> str:
        """Table + ASCII bars of both speedup series."""
        headers = ["architecture", "tpi seq (ms)", "tpi par (ms)", "tpi gpu (ms)", "par/seq", "gpu/par"]
        rows = [
            [
                p.label,
                p.tpi_cpu_seq * 1e3,
                p.tpi_cpu_par * 1e3,
                p.tpi_gpu * 1e3,
                p.speedup_par_over_seq,
                p.speedup_gpu_over_par,
            ]
            for p in self.points
        ]
        table = render_table(headers, rows, title="Fig. 6: MLP speedup sweep (real-sim)")
        bars = render_bar_chart(
            [p.label for p in self.points],
            [p.speedup_par_over_seq for p in self.points],
            title="cpu-par over cpu-seq speedup",
            unit="x",
        )
        return table + "\n\n" + bars

    # -- paper shape checks -----------------------------------------------

    def speedup_grows_with_width(self) -> bool:
        """The parallel-CPU speedup must grow as layers cross the
        ViennaCL threshold (Fig. 6's headline shape)."""
        s = [p.speedup_par_over_seq for p in self.points]
        return s[-1] > 4.0 * s[0] and all(b >= a * 0.8 for a, b in zip(s, s[1:]))

    def small_net_speedup_near_two(self, lo: float = 1.2, hi: float = 3.5) -> bool:
        """The Table I architecture sits near the paper's ~2x."""
        return lo <= self.points[0].speedup_par_over_seq <= hi


def run_fig6(
    ctx: ExperimentContext | None = None,
    architectures: tuple[tuple[int, ...], ...] = DEFAULT_ARCHITECTURES,
) -> Fig6Result:
    """Price one epoch of each MLP architecture on the three backends."""
    ctx = ctx or ExperimentContext()
    ds = load_mlp("real-sim", ctx.scale, ctx.seed)
    factor = full_scale_factor(ds, "mlp")
    result = Fig6Result()
    for arch in architectures:
        model = MLP((ds.n_features,) + tuple(arch[1:]))
        params = model.init_params(derive_rng(ctx.seed, f"fig6/{arch}"))
        with recording() as tr:
            grad = model.full_grad(ds.X, ds.y, params)
            axpy(
                -0.1,
                grad,
                params,
                name="model_update",
                cost_scales=False,
                parallelism_scales=False,
            )
        trace = tr.scaled(factor)
        full_n = factor * ds.n_examples
        ws = full_n * ds.n_features * FLOAT64_BYTES + model.n_params * FLOAT64_BYTES
        result.points.append(
            Fig6Point(
                arch=(ds.n_features,) + tuple(arch[1:]),
                tpi_cpu_seq=ctx.cpu.sync_epoch_time(trace, 1, ws),
                tpi_cpu_par=ctx.cpu.sync_epoch_time(
                    trace, ctx.cpu.spec.max_threads, ws
                ),
                tpi_gpu=ctx.gpu.sync_epoch_time(trace),
            )
        )
    return result
