"""One-call reproduction: every table/figure plus paper-vs-ours verdicts.

:func:`reproduce_all` runs all the drivers over a shared
:class:`~repro.experiments.common.ExperimentContext` (so training runs
are reused across artifacts) and returns a structured
:class:`ReproductionReport` with the rendered artifacts, the
side-by-side ratio comparisons against the paper's published values,
and a named verdict for every shape claim.  The EXPERIMENTS.md
generator (`scripts/run_experiments.py`) is a thin wrapper around this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..utils.tables import render_table
from .common import ExperimentContext
from .fig6 import Fig6Result, run_fig6
from .fig7 import Fig7Result, run_fig7
from .fig89 import Fig89Result, run_fig8, run_fig9
from .paper_values import PAPER_TABLE2, PAPER_TABLE3
from .table1 import Table1Result, run_table1
from .table2 import Table2Result, run_table2
from .table3 import Table3Result, run_table3

__all__ = ["Verdict", "ReproductionReport", "reproduce_all"]


@dataclass(frozen=True)
class Verdict:
    """One named shape claim and whether the regeneration satisfied it."""

    name: str
    reproduced: bool
    detail: str = ""


@dataclass
class ReproductionReport:
    """Everything a full reproduction run produces."""

    table1: Table1Result
    table2: Table2Result
    table3: Table3Result
    fig6: Fig6Result
    fig7: Fig7Result
    fig8: Fig89Result
    fig9: Fig89Result
    verdicts: list[Verdict] = field(default_factory=list)

    @property
    def all_reproduced(self) -> bool:
        """Whether every shape claim held."""
        return all(v.reproduced for v in self.verdicts)

    def verdict(self, name: str) -> Verdict:
        """Look up one claim by name."""
        for v in self.verdicts:
            if v.name == name:
                return v
        raise KeyError(name)

    def comparison_table2(self) -> str:
        """Paper-vs-ours ratio table for Table II."""
        rows = []
        for p in PAPER_TABLE2:
            try:
                r = self.table2.row(p.task, p.dataset)
            except KeyError:
                continue  # cell outside the regenerated grid
            rows.append(
                [
                    p.task, p.dataset,
                    p.epochs, r.epochs,
                    p.speedup_seq_over_par, r.speedup_seq_over_par,
                    p.speedup_par_over_gpu, r.speedup_par_over_gpu,
                ]
            )
        return render_table(
            ["task", "dataset", "ep (paper)", "ep (ours)",
             "seq/par (paper)", "seq/par (ours)",
             "par/gpu (paper)", "par/gpu (ours)"],
            rows,
            title="Table II: paper vs ours",
        )

    def comparison_table3(self) -> str:
        """Paper-vs-ours ratio table for Table III."""
        rows = []
        for p in PAPER_TABLE3:
            try:
                r = self.table3.row(p.task, p.dataset)
            except KeyError:
                continue  # cell outside the regenerated grid
            rows.append(
                [
                    p.task, p.dataset,
                    p.speedup_seq_over_par, r.speedup_seq_over_par,
                    p.ratio_gpu_over_par, r.ratio_gpu_over_par,
                ]
            )
        return render_table(
            ["task", "dataset", "seq/par (paper)", "seq/par (ours)",
             "gpu/par (paper)", "gpu/par (ours)"],
            rows,
            title="Table III: paper vs ours",
        )

    def render_verdicts(self) -> str:
        """Monospace verdict summary."""
        rows = [
            [v.name, "reproduced" if v.reproduced else "NOT reproduced", v.detail]
            for v in self.verdicts
        ]
        return render_table(["claim", "verdict", "detail"], rows, title="Shape claims")


def _collect_verdicts(report: ReproductionReport) -> list[Verdict]:
    t2, t3, f6, f7 = report.table2, report.table3, report.fig6, report.fig7
    gpu_wins = t3.gpu_wins_only_on_small_dense()
    out = [
        Verdict("table1/statistics-in-band", report.table1.all_ok()),
        Verdict("table2/gpu-always-fastest", t2.gpu_always_fastest()),
        Verdict("table2/parallel-always-helps", t2.parallel_always_helps()),
        Verdict(
            "table2/mlp-speedup-capped-near-2x",
            t2.mlp_speedup_band(),
            "ViennaCL GEMM threshold",
        ),
        Verdict(
            "table3/cpu-wins-on-large-sparse",
            all(ds in ("covtype", "w8a") for _t, ds in gpu_wins),
            f"GPU wins at {sorted(gpu_wins)} (small-dataset scale artifact)"
            if gpu_wins
            else "CPU wins everywhere",
        ),
        Verdict(
            "table3/dense-coherence-storm",
            t3.dense_parallel_slower_per_iter(),
            "covtype parallel Hogwild slower per iteration",
        ),
        Verdict("table3/hogbatch-parallel-speedup", t3.mlp_parallel_speedup_band()),
        Verdict(
            "fig6/speedup-grows-with-width",
            f6.speedup_grows_with_width() and f6.small_net_speedup_near_two(),
            f"{f6.points[0].speedup_par_over_seq:.1f}x -> "
            f"{f6.points[-1].speedup_par_over_seq:.1f}x",
        ),
        Verdict(
            "fig7/no-single-winner",
            f7.winner_is_task_dataset_dependent(),
            str(
                {
                    w: sum(1 for x in f7.winners().values() if x == w)
                    for w in ("sync-gpu", "async-cpu")
                }
            ),
        ),
        Verdict("fig8/ours-not-dominated-by-bidmach", report.fig8.ours_not_dominated()),
        Verdict(
            "fig9/superior-to-tensorflow",
            all(
                report.fig9.get("mlp", d, "ours-sync")
                > report.fig9.get("mlp", d, "tensorflow")
                for d in {e.dataset for e in report.fig9.entries}
            ),
        ),
    ]
    return out


def reproduce_all(ctx: ExperimentContext | None = None) -> ReproductionReport:
    """Run every table/figure driver and collect the verdicts."""
    ctx = ctx or ExperimentContext()
    # One prefetch covers every driver below; each also prefetches its
    # own (by then fully cached) slice.
    ctx.prefetch(ctx.grid_cells())
    report = ReproductionReport(
        table1=run_table1(ctx),
        table2=run_table2(ctx),
        table3=run_table3(ctx),
        fig6=run_fig6(ctx),
        fig7=run_fig7(ctx),
        fig8=run_fig8(ctx),
        fig9=run_fig9(ctx),
    )
    report.verdicts = _collect_verdicts(report)
    return report
