"""A warm worker pool kept alive across experiment-grid runs.

Cold-starting a ``ProcessPoolExecutor`` per :meth:`GridExecutor.execute`
call charged every grid the full interpreter spawn + import cost for
each worker, which BENCH_3/BENCH_4 showed eating the entire parallel
win (0.79x "speedup" at jobs=4).  This module keeps **one** pool alive
at module level and hands it to consecutive grids whose requirements
match.

A pool is reusable only when nothing the workers snapshotted at fork
time has drifted:

* same worker count (``ctx.jobs``),
* same shared-data setting, and
* every dataset the new grid needs was already published when the
  pool's workers were created (fork children see the parent's memory
  *as of the fork* — a segment published afterwards is invisible to
  them, so a grown dataset set retires the pool and builds a fresh one
  against the enlarged registry).

The executor retires the pool on **any** failure path (broken pool,
worker exception, ``KeyboardInterrupt``) — warm reuse is strictly the
happy path, so error semantics stay identical to the old
pool-per-call code.  :func:`shutdown_grid_pool` (also ``atexit``) tears
down the pool *and* the shared-data registry, in that order.
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from . import shared_data

__all__ = ["acquire_pool", "retire_pool", "shutdown_grid_pool", "warm_pool_info"]


@dataclass
class _WarmPool:
    pool: ProcessPoolExecutor
    jobs: int
    shared: bool
    specs: frozenset  # dataset specs published when the workers were forked
    generation: int


_STATE: _WarmPool | None = None
_GENERATION = 0
_ATEXIT_REGISTERED = False


def _compatible(state: _WarmPool, jobs: int, shared: bool, specs: frozenset) -> bool:
    if state.jobs != jobs or state.shared != shared:
        return False
    # Without shared data, workers materialise datasets on demand — any
    # grid fits; with it, every needed dataset must predate the fork.
    return (not shared) or specs <= state.specs


def acquire_pool(
    jobs: int,
    *,
    shared: bool,
    specs: Iterable[shared_data.DatasetSpec],
    mp_context: Any,
    initializer: Callable[..., None],
    initargs: tuple,
) -> tuple[ProcessPoolExecutor, bool]:
    """A pool warm for (*jobs*, *shared*, *specs*); ``(pool, created)``.

    Reuses the live pool when compatible, otherwise retires it and
    builds a fresh one.  ``max_workers`` is always *jobs* — workers
    spawn lazily on first submit, so a warm pool costs nothing until
    used.
    """
    global _STATE, _GENERATION, _ATEXIT_REGISTERED
    specs = frozenset(specs)
    if _STATE is not None and _compatible(_STATE, jobs, shared, specs):
        return _STATE.pool, False
    retire_pool()
    if not _ATEXIT_REGISTERED:
        atexit.register(shutdown_grid_pool)
        _ATEXIT_REGISTERED = True
    registry = shared_data.active_registry()
    published = registry.specs() if (shared and registry is not None) else specs
    _GENERATION += 1
    _STATE = _WarmPool(
        pool=ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=mp_context,
            initializer=initializer,
            initargs=initargs,
        ),
        jobs=jobs,
        shared=shared,
        specs=frozenset(published),
        generation=_GENERATION,
    )
    return _STATE.pool, True


def retire_pool() -> None:
    """Shut the warm pool down (idempotent; shared data stays published)."""
    global _STATE
    if _STATE is None:
        return
    state, _STATE = _STATE, None
    state.pool.shutdown(wait=True, cancel_futures=True)


def warm_pool_info() -> dict | None:
    """Introspection for tests and bench scripts; None when no pool is warm."""
    if _STATE is None:
        return None
    return {
        "jobs": _STATE.jobs,
        "shared_data": _STATE.shared,
        "datasets": len(_STATE.specs),
        "generation": _STATE.generation,
    }


def shutdown_grid_pool() -> None:
    """Retire the warm pool, then unlink the shared-data segments."""
    retire_pool()
    shared_data.shutdown_shared_data()
