"""Table III — asynchronous SGD performance to 1% convergence error.

Unlike the synchronous case, statistical efficiency here depends on the
architecture (the concurrency of the interleaving), so each cell runs
its own optimisation.  Non-convergent configurations are reported as
infinity, exactly like the paper's Table III.

Degraded mode: async cells quarantine independently, so on a
keep-going grid a row may be *partially* gapped — the quarantined
architecture's columns render as ``-`` while the surviving ones keep
their numbers — with the details in the failure-report section
(docs/RESILIENCE.md).

Measured staleness: the asynchrony *simulator* behind the table's
cells parameterises staleness; the parameter-server backend *measures*
it (``ps.staleness_bucket.*``, one observation per answered pull
round).  :meth:`Table3Result.attach_staleness` folds run manifests
from ``--backend ps`` runs into an extra section under the table, so
the simulated concurrency column and the measured lag distribution can
be read side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from ..telemetry import keys
from ..utils.tables import render_table
from .common import ExperimentContext, infinity_or
from .resilience import CellFailure, nan_to_gap, render_failure_section

__all__ = [
    "Table3Row",
    "Table3Result",
    "StalenessRow",
    "staleness_rows",
    "run_table3",
]


@dataclass(frozen=True)
class Table3Row:
    """One (task, dataset) row of Table III.  Times in seconds."""

    task: str
    dataset: str
    ttc_gpu: float
    ttc_cpu_seq: float
    ttc_cpu_par: float
    tpi_gpu: float
    tpi_cpu_seq: float
    tpi_cpu_par: float
    epochs_gpu: float
    epochs_cpu_seq: float
    epochs_cpu_par: float

    @property
    def is_gap(self) -> bool:
        """True when any architecture of this row was quarantined."""
        return any(
            math.isnan(v) for v in (self.tpi_gpu, self.tpi_cpu_seq, self.tpi_cpu_par)
        )

    @property
    def speedup_seq_over_par(self) -> float:
        """cpu-seq / cpu-par time-per-iteration ratio."""
        return self.tpi_cpu_seq / self.tpi_cpu_par

    @property
    def ratio_gpu_over_par(self) -> float:
        """gpu / cpu-par time-per-iteration ratio (paper's last column:
        < 1 means the GPU iterates faster, > 1 slower)."""
        return self.tpi_gpu / self.tpi_cpu_par

    @property
    def cpu_wins_time_to_convergence(self) -> bool:
        """Paper headline: async CPU always beats GPU to convergence."""
        best_cpu = min(self.ttc_cpu_seq, self.ttc_cpu_par)
        return best_cpu <= self.ttc_gpu


@dataclass(frozen=True)
class StalenessRow:
    """Measured staleness of one parameter-server run manifest.

    The buckets are the run's ``ps.staleness_bucket.*`` counters: how
    many answered pull rounds observed each work-item lag against the
    slowest live worker — the measured counterpart of the simulator's
    staleness parameter behind the table's async cells.
    """

    task: str
    dataset: str
    nodes: int
    max_staleness: int | None
    #: Answered pull round-trips (``ps.pull_rounds``).
    pull_rounds: float
    #: Applied updates (``sgd.updates_applied``).
    updates: float
    #: Shards answered from the worker cache (``ps.shard_cache_hits``).
    cache_hits: float
    #: Shard payloads actually shipped (``ps.pulls``).
    shard_payloads: float
    #: ``(bucket suffix, observations)`` in ascending lag order.
    buckets: tuple[tuple[str, float], ...]

    @property
    def rounds_per_update(self) -> float:
        """Pull round-trips one applied update cost."""
        return self.pull_rounds / self.updates if self.updates else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of answered shards that shipped no payload."""
        total = self.cache_hits + self.shard_payloads
        return self.cache_hits / total if total else 0.0


def _bucket_order(suffix: str) -> float:
    """Sort key placing ``le_0 < le_1 < ... < gt_64``."""
    kind, _, edge = suffix.partition("_")
    return float(edge) + (0.5 if kind == "gt" else 0.0)


def staleness_rows(manifest: dict[str, Any]) -> list[StalenessRow]:
    """Extract measured-staleness rows from a manifest dict.

    Accepts a single run manifest (``repro.telemetry/manifest/v1``) or
    an aggregate grid manifest (its ``cells`` are scanned).  Manifests
    without ``ps.*`` staleness counters yield no rows — a table fed a
    non-PS manifest degrades to the plain rendering.
    """
    cells = manifest.get("cells")
    if cells is not None:  # grid manifest: recurse into the cells
        rows: list[StalenessRow] = []
        for cell in cells:
            inner = cell.get("manifest")
            if inner:
                rows.extend(staleness_rows(inner))
        return rows

    counters = dict(manifest.get("counters") or {})
    measured = (manifest.get("results") or {}).get("measured") or {}
    if not counters:
        # Uninstrumented run: the measured record still carries totals.
        counters = dict(measured.get("counters") or {})
    buckets = sorted(
        (
            (k[len(keys.PS_STALENESS_BUCKET_PREFIX) :], float(v))
            for k, v in counters.items()
            if k.startswith(keys.PS_STALENESS_BUCKET_PREFIX)
        ),
        key=lambda kv: _bucket_order(kv[0]),
    )
    if not buckets:
        return []
    config = manifest.get("config") or {}
    return [
        StalenessRow(
            task=str(config.get("task", "?")),
            dataset=str(config.get("dataset", "?")),
            nodes=int(measured.get("nodes", config.get("nodes", 0)) or 0),
            max_staleness=measured.get("max_staleness"),
            pull_rounds=float(counters.get(keys.PS_PULL_ROUNDS, 0.0)),
            updates=float(counters.get(keys.UPDATES_APPLIED, 0.0)),
            cache_hits=float(counters.get(keys.PS_SHARD_CACHE_HITS, 0.0)),
            shard_payloads=float(counters.get(keys.PS_PULLS, 0.0)),
            buckets=tuple(buckets),
        )
    ]


@dataclass
class Table3Result:
    """All rows plus rendering and shape checks."""

    rows: list[Table3Row] = field(default_factory=list)
    #: Quarantine records behind the gapped columns (keep-going only).
    failures: list[CellFailure] = field(default_factory=list)
    #: Measured-staleness rows attached from PS run manifests.
    staleness: list[StalenessRow] = field(default_factory=list)

    def row(self, task: str, dataset: str) -> Table3Row:
        """Look up one row."""
        for r in self.rows:
            if r.task == task and r.dataset == dataset:
                return r
        raise KeyError((task, dataset))

    def render(self) -> str:
        """Monospace rendering in the paper's Table III layout."""
        headers = [
            "task",
            "dataset",
            "ttc gpu (s)",
            "ttc cpu-seq (s)",
            "ttc cpu-par (s)",
            "tpi gpu (ms)",
            "tpi cpu-seq (ms)",
            "tpi cpu-par (ms)",
            "ep gpu",
            "ep seq",
            "ep par",
            "seq/par",
            "gpu/par",
        ]
        body = [
            [
                r.task,
                r.dataset,
                *(
                    nan_to_gap(v)
                    for v in (
                        r.ttc_gpu,
                        r.ttc_cpu_seq,
                        r.ttc_cpu_par,
                        r.tpi_gpu * 1e3,
                        r.tpi_cpu_seq * 1e3,
                        r.tpi_cpu_par * 1e3,
                        r.epochs_gpu,
                        r.epochs_cpu_seq,
                        r.epochs_cpu_par,
                        r.speedup_seq_over_par,
                        r.ratio_gpu_over_par,
                    )
                ),
            ]
            for r in self.rows
        ]
        table = render_table(
            headers, body, title="Table III: Asynchronous SGD performance (1% error)"
        )
        return (
            table
            + render_failure_section(self.failures)
            + self._render_staleness_section()
        )

    def attach_staleness(self, manifest: dict) -> int:
        """Fold one manifest's measured-staleness rows into the table.

        Returns how many rows the manifest contributed (0 for a run
        without ``ps.*`` counters).
        """
        rows = staleness_rows(manifest)
        self.staleness.extend(rows)
        return len(rows)

    def _render_staleness_section(self) -> str:
        """The measured lag distribution from attached PS manifests."""
        if not self.staleness:
            return ""
        suffixes: list[str] = []
        for row in self.staleness:
            for suffix, _ in row.buckets:
                if suffix not in suffixes:
                    suffixes.append(suffix)
        suffixes.sort(key=_bucket_order)
        headers = [
            "task",
            "dataset",
            "nodes",
            "cap",
            "rounds/upd",
            "cache-hit %",
            *(s.replace("_", " ") for s in suffixes),
        ]
        body = []
        for row in self.staleness:
            counts = dict(row.buckets)
            total = sum(counts.values())
            shares = [
                f"{100.0 * counts[s] / total:.1f}%" if s in counts and total else "-"
                for s in suffixes
            ]
            body.append(
                [
                    row.task,
                    row.dataset,
                    row.nodes,
                    "inf" if row.max_staleness is None else row.max_staleness,
                    f"{row.rounds_per_update:.2f}",
                    f"{100.0 * row.cache_hit_rate:.1f}",
                    *shares,
                ]
            )
        return "\n\n" + render_table(
            headers,
            body,
            title=(
                "Measured PS staleness (ps.staleness_bucket.*: share of "
                "pull rounds by observed work-item lag)"
            ),
        )

    # -- paper shape checks -----------------------------------------------

    def cpu_always_wins(self) -> bool:
        """Paper: '(parallel) CPU is (always) faster than GPU in time to
        convergence' for asynchronous SGD."""
        return all(r.cpu_wins_time_to_convergence for r in self.rows if not r.is_gap)

    def gpu_wins_only_on_small_dense(self) -> set[tuple[str, str]]:
        """Cells where the GPU won time-to-convergence.

        At reduced dataset scale the simulated device staleness cannot
        reach the paper's absolute in-flight window on the two smallest
        datasets, so GPU wins there are an expected scale artifact; any
        win on the large sparse datasets would be a real shape failure.
        The returned set lets callers assert exactly that.
        """
        return {
            (r.task, r.dataset)
            for r in self.rows
            if not r.is_gap and not r.cpu_wins_time_to_convergence
        }

    def dense_parallel_slower_per_iter(self) -> bool:
        """Paper: on fully dense data (covtype) coherence storms make
        parallel Hogwild slower per iteration than sequential."""
        rows = [
            r
            for r in self.rows
            if r.dataset == "covtype" and r.task in ("lr", "svm") and not r.is_gap
        ]
        return all(r.speedup_seq_over_par < 1.0 for r in rows)

    def mlp_parallel_speedup_band(self, lo: float = 8.0) -> bool:
        """Paper: Hogbatch cpu-par over cpu-seq speedup is 15-23x."""
        mlp = [r for r in self.rows if r.task == "mlp" and not r.is_gap]
        return all(r.speedup_seq_over_par >= lo for r in mlp)


def run_table3(ctx: ExperimentContext | None = None) -> Table3Result:
    """Regenerate Table III at the context's scale."""
    ctx = ctx or ExperimentContext()
    ctx.prefetch(ctx.grid_cells(strategies=("asynchronous",)))
    result = Table3Result()
    for task in ctx.tasks:
        for dataset in ctx.datasets:
            runs = {
                arch: ctx.try_run(task, dataset, arch, "asynchronous")
                for arch in ("gpu", "cpu-seq", "cpu-par")
            }
            for arch, run in runs.items():
                if run is None:
                    failure = ctx.failure_for(task, dataset, arch, "asynchronous")
                    if failure is not None and failure not in result.failures:
                        result.failures.append(failure)

            def ttc(run):
                return math.nan if run is None else run.time_to(ctx.tolerance)

            def tpi(run):
                return math.nan if run is None else run.time_per_iter

            def epochs(run):
                if run is None:
                    return math.nan
                return infinity_or(run.epochs_to(ctx.tolerance))

            result.rows.append(
                Table3Row(
                    task=task,
                    dataset=dataset,
                    ttc_gpu=ttc(runs["gpu"]),
                    ttc_cpu_seq=ttc(runs["cpu-seq"]),
                    ttc_cpu_par=ttc(runs["cpu-par"]),
                    tpi_gpu=tpi(runs["gpu"]),
                    tpi_cpu_seq=tpi(runs["cpu-seq"]),
                    tpi_cpu_par=tpi(runs["cpu-par"]),
                    epochs_gpu=epochs(runs["gpu"]),
                    epochs_cpu_seq=epochs(runs["cpu-seq"]),
                    epochs_cpu_par=epochs(runs["cpu-par"]),
                )
            )
    return result
