"""Table III — asynchronous SGD performance to 1% convergence error.

Unlike the synchronous case, statistical efficiency here depends on the
architecture (the concurrency of the interleaving), so each cell runs
its own optimisation.  Non-convergent configurations are reported as
infinity, exactly like the paper's Table III.

Degraded mode: async cells quarantine independently, so on a
keep-going grid a row may be *partially* gapped — the quarantined
architecture's columns render as ``-`` while the surviving ones keep
their numbers — with the details in the failure-report section
(docs/RESILIENCE.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..utils.tables import render_table
from .common import ExperimentContext, infinity_or
from .resilience import CellFailure, nan_to_gap, render_failure_section

__all__ = ["Table3Row", "Table3Result", "run_table3"]


@dataclass(frozen=True)
class Table3Row:
    """One (task, dataset) row of Table III.  Times in seconds."""

    task: str
    dataset: str
    ttc_gpu: float
    ttc_cpu_seq: float
    ttc_cpu_par: float
    tpi_gpu: float
    tpi_cpu_seq: float
    tpi_cpu_par: float
    epochs_gpu: float
    epochs_cpu_seq: float
    epochs_cpu_par: float

    @property
    def is_gap(self) -> bool:
        """True when any architecture of this row was quarantined."""
        return any(
            math.isnan(v) for v in (self.tpi_gpu, self.tpi_cpu_seq, self.tpi_cpu_par)
        )

    @property
    def speedup_seq_over_par(self) -> float:
        """cpu-seq / cpu-par time-per-iteration ratio."""
        return self.tpi_cpu_seq / self.tpi_cpu_par

    @property
    def ratio_gpu_over_par(self) -> float:
        """gpu / cpu-par time-per-iteration ratio (paper's last column:
        < 1 means the GPU iterates faster, > 1 slower)."""
        return self.tpi_gpu / self.tpi_cpu_par

    @property
    def cpu_wins_time_to_convergence(self) -> bool:
        """Paper headline: async CPU always beats GPU to convergence."""
        best_cpu = min(self.ttc_cpu_seq, self.ttc_cpu_par)
        return best_cpu <= self.ttc_gpu


@dataclass
class Table3Result:
    """All rows plus rendering and shape checks."""

    rows: list[Table3Row] = field(default_factory=list)
    #: Quarantine records behind the gapped columns (keep-going only).
    failures: list[CellFailure] = field(default_factory=list)

    def row(self, task: str, dataset: str) -> Table3Row:
        """Look up one row."""
        for r in self.rows:
            if r.task == task and r.dataset == dataset:
                return r
        raise KeyError((task, dataset))

    def render(self) -> str:
        """Monospace rendering in the paper's Table III layout."""
        headers = [
            "task",
            "dataset",
            "ttc gpu (s)",
            "ttc cpu-seq (s)",
            "ttc cpu-par (s)",
            "tpi gpu (ms)",
            "tpi cpu-seq (ms)",
            "tpi cpu-par (ms)",
            "ep gpu",
            "ep seq",
            "ep par",
            "seq/par",
            "gpu/par",
        ]
        body = [
            [
                r.task,
                r.dataset,
                *(
                    nan_to_gap(v)
                    for v in (
                        r.ttc_gpu,
                        r.ttc_cpu_seq,
                        r.ttc_cpu_par,
                        r.tpi_gpu * 1e3,
                        r.tpi_cpu_seq * 1e3,
                        r.tpi_cpu_par * 1e3,
                        r.epochs_gpu,
                        r.epochs_cpu_seq,
                        r.epochs_cpu_par,
                        r.speedup_seq_over_par,
                        r.ratio_gpu_over_par,
                    )
                ),
            ]
            for r in self.rows
        ]
        table = render_table(
            headers, body, title="Table III: Asynchronous SGD performance (1% error)"
        )
        return table + render_failure_section(self.failures)

    # -- paper shape checks -----------------------------------------------

    def cpu_always_wins(self) -> bool:
        """Paper: '(parallel) CPU is (always) faster than GPU in time to
        convergence' for asynchronous SGD."""
        return all(r.cpu_wins_time_to_convergence for r in self.rows if not r.is_gap)

    def gpu_wins_only_on_small_dense(self) -> set[tuple[str, str]]:
        """Cells where the GPU won time-to-convergence.

        At reduced dataset scale the simulated device staleness cannot
        reach the paper's absolute in-flight window on the two smallest
        datasets, so GPU wins there are an expected scale artifact; any
        win on the large sparse datasets would be a real shape failure.
        The returned set lets callers assert exactly that.
        """
        return {
            (r.task, r.dataset)
            for r in self.rows
            if not r.is_gap and not r.cpu_wins_time_to_convergence
        }

    def dense_parallel_slower_per_iter(self) -> bool:
        """Paper: on fully dense data (covtype) coherence storms make
        parallel Hogwild slower per iteration than sequential."""
        rows = [
            r
            for r in self.rows
            if r.dataset == "covtype" and r.task in ("lr", "svm") and not r.is_gap
        ]
        return all(r.speedup_seq_over_par < 1.0 for r in rows)

    def mlp_parallel_speedup_band(self, lo: float = 8.0) -> bool:
        """Paper: Hogbatch cpu-par over cpu-seq speedup is 15-23x."""
        mlp = [r for r in self.rows if r.task == "mlp" and not r.is_gap]
        return all(r.speedup_seq_over_par >= lo for r in mlp)


def run_table3(ctx: ExperimentContext | None = None) -> Table3Result:
    """Regenerate Table III at the context's scale."""
    ctx = ctx or ExperimentContext()
    ctx.prefetch(ctx.grid_cells(strategies=("asynchronous",)))
    result = Table3Result()
    for task in ctx.tasks:
        for dataset in ctx.datasets:
            runs = {
                arch: ctx.try_run(task, dataset, arch, "asynchronous")
                for arch in ("gpu", "cpu-seq", "cpu-par")
            }
            for arch, run in runs.items():
                if run is None:
                    failure = ctx.failure_for(task, dataset, arch, "asynchronous")
                    if failure is not None and failure not in result.failures:
                        result.failures.append(failure)

            def ttc(run):
                return math.nan if run is None else run.time_to(ctx.tolerance)

            def tpi(run):
                return math.nan if run is None else run.time_per_iter

            def epochs(run):
                if run is None:
                    return math.nan
                return infinity_or(run.epochs_to(ctx.tolerance))

            result.rows.append(
                Table3Row(
                    task=task,
                    dataset=dataset,
                    ttc_gpu=ttc(runs["gpu"]),
                    ttc_cpu_seq=ttc(runs["cpu-seq"]),
                    ttc_cpu_par=ttc(runs["cpu-par"]),
                    tpi_gpu=tpi(runs["gpu"]),
                    tpi_cpu_seq=tpi(runs["cpu-seq"]),
                    tpi_cpu_par=tpi(runs["cpu-par"]),
                    epochs_gpu=epochs(runs["gpu"]),
                    epochs_cpu_seq=epochs(runs["cpu-seq"]),
                    epochs_cpu_par=epochs(runs["cpu-par"]),
                )
            )
    return result
