"""Fig. 1 — the complete exploratory cube, including the light circles.

The paper's Fig. 1 draws the eight (strategy x architecture x sparsity)
combinations and notes that practice implements only a subset — GPU
solutions are synchronous-over-dense, CPU solutions asynchronous-over-
sparse — promising to "explore the complete space and map the remaining
combinations experimentally".  This driver does exactly that for a
chosen task: every corner of the cube is trained and timed, so the
never-implemented corners (asynchronous GPU over dense data, Hogwild
over a densified sparse dataset, ...) get numbers too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..sgd.runner import train
from ..utils.tables import render_table
from .common import ExperimentContext

__all__ = ["Fig1Cell", "Fig1Result", "run_fig1_space"]


@dataclass(frozen=True)
class Fig1Cell:
    """One corner of the paper's exploratory cube."""

    strategy: str
    architecture: str
    representation: str
    time_per_iter: float
    epochs: float
    time_to_convergence: float

    @property
    def label(self) -> str:
        """'sync/gpu/dense'-style corner name."""
        short = {"synchronous": "sync", "asynchronous": "async"}[self.strategy]
        return f"{short}/{self.architecture}/{self.representation}"


@dataclass
class Fig1Result:
    """The mapped cube for one (task, dataset)."""

    task: str
    dataset: str
    tolerance: float
    cells: list[Fig1Cell] = field(default_factory=list)

    def cell(self, strategy: str, architecture: str, representation: str) -> Fig1Cell:
        """Look up one corner."""
        for c in self.cells:
            if (c.strategy, c.architecture, c.representation) == (
                strategy, architecture, representation,
            ):
                return c
        raise KeyError((strategy, architecture, representation))

    def best(self) -> Fig1Cell:
        """The winning corner by time to convergence."""
        finite = [c for c in self.cells if math.isfinite(c.time_to_convergence)]
        if not finite:
            raise ValueError("no corner converged")
        return min(finite, key=lambda c: c.time_to_convergence)

    def render(self) -> str:
        """Monospace table over all mapped corners."""
        rows = [
            [
                c.label,
                c.time_per_iter * 1e3,
                int(c.epochs) if math.isfinite(c.epochs) else c.epochs,
                c.time_to_convergence,
            ]
            for c in sorted(self.cells, key=lambda c: c.time_to_convergence)
        ]
        return render_table(
            ["corner", "time/iter (ms)", "epochs", "time to conv (s)"],
            rows,
            title=(
                f"Fig. 1 design space: {self.task} on {self.dataset} "
                f"({int(self.tolerance * 100)}% error)"
            ),
        )

    # -- paper shape checks -----------------------------------------------

    def dark_circles_beat_light_ones(self) -> bool:
        """The combinations practice implements (sync anywhere over the
        natural format; async CPU over sparse) must collectively beat
        the unimplemented corners — i.e. the best corner is a dark one.
        """
        best = self.best()
        dark = (
            best.strategy == "synchronous" and best.representation == "auto"
        ) or (
            best.strategy == "asynchronous"
            and best.architecture in ("cpu-seq", "cpu-par")
            and best.representation == "auto"
        )
        return dark


def run_fig1_space(
    task: str = "lr",
    dataset: str = "real-sim",
    ctx: ExperimentContext | None = None,
) -> Fig1Result:
    """Train and time every corner of the cube for (task, dataset).

    Representations: ``auto`` (the dataset's natural format — the dark
    circles) and the flipped format (the light ones).  MLP is excluded
    (its pipeline is dense by construction).
    """
    if task == "mlp":
        raise ValueError("the representation axis applies to lr/svm")
    ctx = ctx or ExperimentContext()
    flipped = "dense"  # all profiles except covtype are sparse-natural
    if dataset == "covtype":
        flipped = "sparse"
    result = Fig1Result(task=task, dataset=dataset, tolerance=ctx.tolerance)
    for strategy in ("synchronous", "asynchronous"):
        for architecture in ("cpu-par", "gpu"):
            for representation in ("auto", flipped):
                run = train(
                    task,
                    dataset,
                    architecture=architecture,
                    strategy=strategy,
                    scale=ctx.scale,
                    seed=ctx.seed,
                    step_size=ctx.step_for(task, dataset, strategy, architecture),
                    max_epochs=(
                        ctx.sync_max_epochs
                        if strategy == "synchronous"
                        else ctx.async_max_epochs
                    ),
                    early_stop_tolerance=ctx.tolerance,
                    representation=representation,
                )
                epochs = run.epochs_to(ctx.tolerance)
                result.cells.append(
                    Fig1Cell(
                        strategy=strategy,
                        architecture=architecture,
                        representation=representation,
                        time_per_iter=run.time_per_iter,
                        epochs=math.inf if epochs is None else float(epochs),
                        time_to_convergence=run.time_to(ctx.tolerance),
                    )
                )
    return result
