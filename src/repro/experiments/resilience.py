"""Structured failure records for the resilient experiment grid.

A keep-going grid run never lets one dead, wedged or diverging cell
abort the whole evaluation: the cell is retried under a
:class:`repro.faults.CellRetryPolicy` and, once its budget is spent,
*quarantined* — recorded as a :class:`CellFailure` in the context, the
result store and the grid manifest, while every healthy cell proceeds
untouched.  Table/figure drivers render quarantined cells as explicit
gap markers plus the failure-report section produced by
:func:`render_failure_section`.  See docs/RESILIENCE.md for the full
failure-handling matrix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

__all__ = ["FAILURE_KINDS", "CellFailure", "nan_to_gap", "render_failure_section"]

#: How a quarantined cell failed, in documentation order:
#: ``crash`` — the worker process died without returning a result;
#: ``stall`` — the deadline/heartbeat watchdog killed a wedged worker;
#: ``exception`` — the cell raised inside the worker;
#: ``divergence`` — the result kept coming back with non-finite losses
#: even after step-size backoff.
FAILURE_KINDS: tuple[str, ...] = ("crash", "stall", "exception", "divergence")


@dataclass(frozen=True)
class CellFailure:
    """One quarantined grid cell: who failed, how, and what it cost.

    Attributes
    ----------
    task / dataset / architecture / strategy:
        Identity of the *executed* cell (for a synchronous group this
        is the shared ``cpu-seq`` base; ``covers`` lists every
        requested cell the quarantine gaps out).
    kind:
        One of :data:`FAILURE_KINDS` — the final attempt's failure mode.
    phase:
        Where the last attempt failed: ``"spawn"``, ``"train"`` or
        ``"collect"``.
    attempts:
        Executions consumed before giving up.
    error_chain:
        One ``{"type", "message", "attempt", "kind"}`` record per failed
        attempt, oldest first — the exception chain across retries.
    elapsed_seconds:
        Wall clock from the first spawn to the quarantine decision,
        backoff waits included.
    worker_pids:
        Pid of each attempt's worker process (``None`` when the process
        died before reporting one).
    budget_exhausted:
        True when the quarantine was forced by the grid-wide shared
        retry budget rather than the cell's own attempt cap.
    """

    task: str
    dataset: str
    architecture: str
    strategy: str
    kind: str
    phase: str
    attempts: int
    error_chain: tuple[dict[str, Any], ...] = ()
    elapsed_seconds: float = 0.0
    worker_pids: tuple[int | None, ...] = ()
    budget_exhausted: bool = False
    covers: tuple[str, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "error_chain", tuple(self.error_chain))
        object.__setattr__(self, "worker_pids", tuple(self.worker_pids))
        object.__setattr__(self, "covers", tuple(self.covers))

    def label(self) -> str:
        return f"{self.task}/{self.dataset}/{self.architecture}/{self.strategy}"

    def describe(self) -> dict[str, Any]:
        """Plain-dict form for stores and manifests (JSON-ready)."""
        return {
            "cell": {
                "task": self.task,
                "dataset": self.dataset,
                "architecture": self.architecture,
                "strategy": self.strategy,
            },
            "kind": self.kind,
            "phase": self.phase,
            "attempts": self.attempts,
            "error_chain": [dict(e) for e in self.error_chain],
            "elapsed_seconds": self.elapsed_seconds,
            "worker_pids": list(self.worker_pids),
            "budget_exhausted": self.budget_exhausted,
            "covers": list(self.covers),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CellFailure":
        """Rebuild a failure from its :meth:`describe` form."""
        cell = data["cell"]
        return cls(
            task=cell["task"],
            dataset=cell["dataset"],
            architecture=cell["architecture"],
            strategy=cell["strategy"],
            kind=data["kind"],
            phase=data["phase"],
            attempts=data["attempts"],
            error_chain=tuple(data.get("error_chain", ())),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            worker_pids=tuple(data.get("worker_pids", ())),
            budget_exhausted=data.get("budget_exhausted", False),
            covers=tuple(data.get("covers", ())),
        )

    def summary(self) -> str:
        """One-line human rendering for failure-report sections."""
        last = self.error_chain[-1] if self.error_chain else None
        reason = f"{last['type']}: {last['message']}" if last else self.kind
        tail = " (shared retry budget exhausted)" if self.budget_exhausted else ""
        return (
            f"{self.label()}: {self.kind} after {self.attempts} attempt(s) "
            f"in phase {self.phase!r}, {self.elapsed_seconds:.1f}s — {reason}{tail}"
        )


def nan_to_gap(value: Any) -> Any:
    """Map a quarantined cell's NaN field to ``None`` — the ``-`` marker.

    Drivers keep gap fields as NaN inside their (float-typed, frozen)
    row dataclasses and convert at render time; ``inf`` — a *measured*
    never-converged run, the paper's own notation — passes through
    untouched.
    """
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def render_failure_section(failures: list[CellFailure]) -> str:
    """The degraded-mode failure report appended to table/figure renders.

    Empty string when there is nothing to report, so healthy renders
    are byte-identical to what they always were.
    """
    if not failures:
        return ""
    lines = [
        "",
        f"quarantined cells ({len(failures)} — grid ran with --keep-going; "
        "'-' marks the gaps above):",
    ]
    seen: set[str] = set()
    for failure in failures:
        if failure.label() in seen:
            continue
        seen.add(failure.label())
        lines.append(f"  ! {failure.summary()}")
        if failure.covers and set(failure.covers) != {failure.label()}:
            lines.append(
                "      gaps: " + ", ".join(failure.covers)
            )
    return "\n".join(lines)
