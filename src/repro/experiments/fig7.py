"""Fig. 7 — loss vs. time: synchronous GPU vs. asynchronous CPU.

The paper's head-to-head between the two *optimal* configurations: the
synchronous strategy on its best architecture (GPU) against the
asynchronous strategy on its best (CPU), same initial model, tuned
hyper-parameters, loss measured against wall-clock time.  The paper's
conclusion — and this driver's shape check — is that **neither side
wins everywhere**: the winner is task- and dataset-dependent, mirroring
the classic BGD-vs-SGD trade-off.

Degraded mode: a panel needs both sides.  On a keep-going grid, a
panel whose sync-GPU run — or both async CPU candidates — was
quarantined is listed as a gap (``-`` columns, winner ``quarantined``)
instead of aborting the figure; if only one async candidate was lost,
the surviving one stands in (docs/RESILIENCE.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..sgd.runner import TrainResult
from ..utils.tables import render_line_chart, render_table
from .common import ExperimentContext
from .resilience import CellFailure, render_failure_section

__all__ = ["Fig7Panel", "Fig7Result", "run_fig7"]


@dataclass
class Fig7Panel:
    """One task/dataset panel of the 15-panel figure."""

    task: str
    dataset: str
    sync_gpu: TrainResult
    async_cpu: TrainResult
    tolerance: float

    @property
    def sync_time(self) -> float:
        """Sync-GPU time to the panel tolerance (sec)."""
        return self.sync_gpu.time_to(self.tolerance)

    @property
    def async_time(self) -> float:
        """Async-CPU time to the panel tolerance (sec)."""
        return self.async_cpu.time_to(self.tolerance)

    @property
    def winner(self) -> str:
        """Which strategy converges first on this panel."""
        s, a = self.sync_time, self.async_time
        if math.isinf(s) and math.isinf(a):
            return "none"
        return "sync-gpu" if s <= a else "async-cpu"

    def render(self) -> str:
        """ASCII loss-vs-time chart for the panel."""
        sx, sy = self.sync_gpu.loss_vs_time()
        ax, ay = self.async_cpu.loss_vs_time()
        return render_line_chart(
            {
                "sync-gpu": (sx.tolist(), sy.tolist()),
                f"async-{self.async_cpu.architecture}": (ax.tolist(), ay.tolist()),
            },
            title=f"Fig. 7 panel: {self.task} / {self.dataset}",
            logx=True,
        )


@dataclass
class Fig7Result:
    """All panels plus the winners summary."""

    panels: list[Fig7Panel] = field(default_factory=list)
    #: (task, dataset) pairs with no renderable panel (quarantined).
    gaps: list[tuple[str, str]] = field(default_factory=list)
    #: Quarantine records behind the gaps (keep-going grids only).
    failures: list[CellFailure] = field(default_factory=list)

    def panel(self, task: str, dataset: str) -> Fig7Panel:
        """Look up one panel."""
        for p in self.panels:
            if p.task == task and p.dataset == dataset:
                return p
        raise KeyError((task, dataset))

    def winners(self) -> dict[tuple[str, str], str]:
        """(task, dataset) -> winning strategy."""
        return {(p.task, p.dataset): p.winner for p in self.panels}

    def render(self) -> str:
        """Winners table (the panel charts are available per panel)."""
        headers = ["task", "dataset", "sync-gpu t1% (s)", "async-cpu t1% (s)", "winner"]
        rows = [
            [p.task, p.dataset, p.sync_time, p.async_time, p.winner]
            for p in self.panels
        ]
        rows += [
            [task, dataset, None, None, "quarantined"] for task, dataset in self.gaps
        ]
        table = render_table(
            headers, rows, title="Fig. 7: synchronous GPU vs asynchronous CPU"
        )
        return table + render_failure_section(self.failures)

    # -- paper shape check ---------------------------------------------------

    def winner_is_task_dataset_dependent(self) -> bool:
        """Paper: 'Synchronous GPU achieves better convergence for
        certain dataset/task pairs, while asynchronous CPU is better
        for others' — both strategies must win somewhere."""
        ws = set(self.winners().values()) - {"none"}
        return len(ws) >= 2


def run_fig7(ctx: ExperimentContext | None = None) -> Fig7Result:
    """Regenerate the Fig. 7 comparison at the context's scale."""
    ctx = ctx or ExperimentContext()
    # Sync GPU cells plus both async CPU candidates best_async_cpu picks
    # between.
    ctx.prefetch(
        ctx.grid_cells(strategies=("synchronous",), architectures=("gpu",))
        + ctx.grid_cells(
            strategies=("asynchronous",), architectures=("cpu-seq", "cpu-par")
        )
    )
    result = Fig7Result()
    for task in ctx.tasks:
        for dataset in ctx.datasets:
            sync_gpu = ctx.try_run(task, dataset, "gpu", "synchronous")
            seq = ctx.try_run(task, dataset, "cpu-seq", "asynchronous")
            par = ctx.try_run(task, dataset, "cpu-par", "asynchronous")
            if seq is not None and par is not None:
                async_cpu = ctx.best_async_cpu(task, dataset)
            else:
                async_cpu = seq if seq is not None else par
            if sync_gpu is None or async_cpu is None:
                result.gaps.append((task, dataset))
                for cell in (
                    (task, dataset, "gpu", "synchronous"),
                    (task, dataset, "cpu-seq", "asynchronous"),
                    (task, dataset, "cpu-par", "asynchronous"),
                ):
                    failure = ctx.failure_for(*cell)
                    if failure is not None and failure not in result.failures:
                        result.failures.append(failure)
                continue
            result.panels.append(
                Fig7Panel(
                    task=task,
                    dataset=dataset,
                    sync_gpu=sync_gpu,
                    async_cpu=async_cpu,
                    tolerance=ctx.tolerance,
                )
            )
    return result
