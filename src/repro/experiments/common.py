"""Shared machinery for the per-table/per-figure experiment drivers.

An :class:`ExperimentContext` fixes the scale, seed, machine models and
step-size table, and caches training runs so a driver that needs the
same configuration twice (e.g. Table II and Fig. 7 both need the
synchronous GPU runs) pays for it once.

Synchronous statistical efficiency is architecture-independent
(Section IV-A), so one optimisation run serves all three architectures;
only the hardware costing differs.  Asynchronous configurations are
re-run per architecture because the interleaving schedule — and hence
the measured loss curve — changes with the concurrency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace as dc_replace

from ..datasets import DATASET_NAMES
from ..hardware import CpuModel, GpuModel
from ..sgd.runner import TrainResult, train
from ..telemetry.session import AnyTelemetry, ensure_telemetry
from ..utils.errors import ConfigurationError
from .tuned import lookup_step

__all__ = ["ExperimentContext", "infinity_or"]


def infinity_or(value: float | None) -> float:
    """Map ``None`` (never converged) to ``inf`` — the paper's notation."""
    if value is None:
        return math.inf
    return value


@dataclass
class ExperimentContext:
    """Execution environment shared by all experiment drivers."""

    scale: str = "small"
    seed: int | None = None
    tolerance: float = 0.01
    sync_max_epochs: int = 2000
    async_max_epochs: int = 300
    datasets: tuple[str, ...] = DATASET_NAMES
    tasks: tuple[str, ...] = ("lr", "svm", "mlp")
    cpu: CpuModel = field(default_factory=CpuModel)
    gpu: GpuModel = field(default_factory=GpuModel)
    step_overrides: dict[tuple[str, str, str, str], float] = field(
        default_factory=dict
    )
    #: Observability sink shared by every run this context executes
    #: (``None`` = disabled).  Cached configurations are only measured
    #: the first time they execute.
    telemetry: AnyTelemetry | None = None
    _cache: dict[tuple, TrainResult] = field(default_factory=dict, repr=False)

    def step_for(
        self, task: str, dataset: str, strategy: str, architecture: str = "*"
    ) -> float:
        """Tuned step size for a configuration (override > table > default)."""
        for key in (
            (task, dataset, strategy, architecture),
            (task, dataset, strategy, "*"),
        ):
            if key in self.step_overrides:
                return self.step_overrides[key]
        tuned = lookup_step(task, dataset, strategy, architecture)
        if tuned is not None:
            return tuned
        from ..sgd.runner import default_step_size

        return default_step_size(task, strategy)

    def run(
        self, task: str, dataset: str, architecture: str, strategy: str
    ) -> TrainResult:
        """Train (or fetch from cache) one configuration."""
        if strategy == "synchronous":
            return self._run_sync(task, dataset, architecture)
        key = (task, dataset, architecture, strategy)
        if key not in self._cache:
            tel = ensure_telemetry(self.telemetry)
            with tel.span(
                "experiment.run",
                task=task,
                dataset=dataset,
                architecture=architecture,
                strategy=strategy,
            ):
                self._cache[key] = train(
                    task,
                    dataset,
                    architecture=architecture,
                    strategy=strategy,
                    scale=self.scale,
                    seed=self.seed,
                    step_size=self.step_for(task, dataset, strategy, architecture),
                    max_epochs=self.async_max_epochs,
                    early_stop_tolerance=self.tolerance,
                    telemetry=self.telemetry,
                )
        return self._cache[key]

    def _run_sync(self, task: str, dataset: str, architecture: str) -> TrainResult:
        """One optimisation run, re-costed per architecture."""
        key = (task, dataset, architecture, "synchronous")
        if key in self._cache:
            return self._cache[key]
        base_key = (task, dataset, "cpu-seq", "synchronous")
        if base_key not in self._cache:
            tel = ensure_telemetry(self.telemetry)
            with tel.span(
                "experiment.run",
                task=task,
                dataset=dataset,
                architecture="cpu-seq",
                strategy="synchronous",
            ):
                self._cache[base_key] = train(
                    task,
                    dataset,
                    architecture="cpu-seq",
                    strategy="synchronous",
                    scale=self.scale,
                    seed=self.seed,
                    step_size=self.step_for(task, dataset, "synchronous"),
                    max_epochs=self.sync_max_epochs,
                    early_stop_tolerance=self.tolerance,
                    cpu_model=self.cpu,
                    gpu_model=self.gpu,
                    telemetry=self.telemetry,
                )
        base = self._cache[base_key]
        if architecture == "cpu-seq":
            return base
        if base.epoch_trace is None:
            raise ConfigurationError("synchronous run lost its epoch trace")
        if architecture == "cpu-par":
            tpi = self.cpu.sync_epoch_time(
                base.epoch_trace,
                self.cpu.spec.max_threads,
                self._ws(task, dataset),
                self.telemetry,
            )
        elif architecture == "gpu":
            tpi = self.gpu.sync_epoch_time(base.epoch_trace, self.telemetry)
        else:
            raise ConfigurationError(f"unknown architecture {architecture!r}")
        result = dc_replace(base, architecture=architecture, time_per_iter=tpi)
        self._cache[key] = result
        return result

    def _ws(self, task: str, dataset: str) -> float:
        from ..datasets import load, load_mlp
        from ..models import make_model
        from ..sgd.runner import working_set_bytes

        ds = load_mlp(dataset, self.scale, self.seed) if task == "mlp" else load(
            dataset, self.scale, self.seed
        )
        return working_set_bytes(ds, make_model(task, ds), task)

    def best_async_cpu(self, task: str, dataset: str) -> TrainResult:
        """The optimal asynchronous CPU configuration (Fig. 7's left side).

        The paper notes that on dense low-dimensional data sequential
        CPU wins while parallel CPU wins on sparse data; we simply take
        the faster of the two at the context tolerance.
        """
        seq = self.run(task, dataset, "cpu-seq", "asynchronous")
        par = self.run(task, dataset, "cpu-par", "asynchronous")
        return seq if seq.time_to(self.tolerance) <= par.time_to(self.tolerance) else par
