"""Shared machinery for the per-table/per-figure experiment drivers.

An :class:`ExperimentContext` fixes the scale, seed, machine models and
step-size table, and caches training runs so a driver that needs the
same configuration twice (e.g. Table II and Fig. 7 both need the
synchronous GPU runs) pays for it once.

Synchronous statistical efficiency is architecture-independent
(Section IV-A), so one optimisation run serves all three architectures;
only the hardware costing differs.  Asynchronous configurations are
re-run per architecture because the interleaving schedule — and hence
the measured loss curve — changes with the concurrency.

With ``jobs > 1`` (or a result store attached) a driver can
:meth:`~ExperimentContext.prefetch` the cells it is about to walk: the
:class:`~repro.experiments.executor.GridExecutor` fans the independent
optimisation runs over worker processes (and/or replays them from the
store) into this context's cache, after which the driver's serial
``run`` calls are all hits.  Results are bit-identical to the serial
path; see docs/EXPERIMENTS-PARALLEL.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace as dc_replace

from typing import TYPE_CHECKING

from ..datasets import DATASET_NAMES
from ..hardware import CpuModel, GpuModel
from ..sgd.runner import TrainResult, train
from ..telemetry.session import AnyTelemetry, ensure_telemetry
from ..utils.errors import CellQuarantinedError, ConfigurationError
from .tuned import lookup_step

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults import CellRetryPolicy, FaultPlan
    from .executor import GridCell
    from .resilience import CellFailure
    from .store import ResultStore

__all__ = ["ExperimentContext", "infinity_or"]


def infinity_or(value: float | None) -> float:
    """Map ``None`` (never converged) to ``inf`` — the paper's notation."""
    if value is None:
        return math.inf
    return value


@dataclass
class ExperimentContext:
    """Execution environment shared by all experiment drivers."""

    scale: str = "small"
    seed: int | None = None
    tolerance: float = 0.01
    sync_max_epochs: int = 2000
    async_max_epochs: int = 300
    datasets: tuple[str, ...] = DATASET_NAMES
    tasks: tuple[str, ...] = ("lr", "svm", "mlp")
    cpu: CpuModel = field(default_factory=CpuModel)
    gpu: GpuModel = field(default_factory=GpuModel)
    step_overrides: dict[tuple[str, str, str, str], float] = field(
        default_factory=dict
    )
    #: Observability sink shared by every run this context executes
    #: (``None`` = disabled).  Cached configurations are only measured
    #: the first time they execute.
    telemetry: AnyTelemetry | None = None
    #: Worker processes for :meth:`prefetch`; 1 = everything runs
    #: serially in-process (the historical behaviour).
    jobs: int = 1
    #: Publish loaded datasets into read-only shared-memory segments
    #: that all grid workers map instead of re-materialising them
    #: (``repro.experiments.shared_data``).  A pure placement
    #: optimisation — results are bit-identical either way; ``False``
    #: falls back to per-worker generation (copy-on-write under fork).
    shared_data: bool = True
    #: Optional on-disk store of completed cells
    #: (:class:`~repro.experiments.store.ResultStore`); completed grid
    #: cells are persisted into it, and with :attr:`resume` they are
    #: replayed from it.
    store: "ResultStore | None" = None
    #: Replay store hits instead of recomputing (requires :attr:`store`).
    resume: bool = False
    #: Degraded-mode switch: ``False`` (fail-fast, the historical
    #: behaviour) aborts the grid on the first worker failure;
    #: ``True`` retries failing cells under :attr:`retry` and
    #: quarantines the ones that exhaust their budget, so the grid
    #: always completes.  See docs/RESILIENCE.md.
    keep_going: bool = False
    #: Retry/backoff/deadline policy for keep-going grids
    #: (``None`` = :class:`repro.faults.CellRetryPolicy` defaults).
    retry: "CellRetryPolicy | None" = None
    #: Optional chaos plan: grid-level fault kinds (``cell-kill`` /
    #: ``cell-stall`` / ``cell-nan``) injected into worker processes.
    fault_plan: "FaultPlan | None" = None
    #: Sticky quarantine registry: executed-cell key ->
    #: :class:`~repro.experiments.resilience.CellFailure`.  Populated
    #: by keep-going grids; :meth:`run` refuses quarantined cells and
    #: :meth:`try_run` maps them to ``None``.
    failures: dict[tuple, "CellFailure"] = field(default_factory=dict, repr=False)
    #: Per-cell provenance records accumulated by every :meth:`prefetch`
    #: (input of :func:`repro.telemetry.build_grid_manifest`).
    grid_records: list[dict] = field(default_factory=list, repr=False)
    _cache: dict[tuple, TrainResult] = field(default_factory=dict, repr=False)
    _ws_cache: dict[tuple, float] = field(default_factory=dict, repr=False)

    def step_for(
        self, task: str, dataset: str, strategy: str, architecture: str = "*"
    ) -> float:
        """Tuned step size for a configuration (override > table > default)."""
        for key in (
            (task, dataset, strategy, architecture),
            (task, dataset, strategy, "*"),
        ):
            if key in self.step_overrides:
                return self.step_overrides[key]
        tuned = lookup_step(task, dataset, strategy, architecture)
        if tuned is not None:
            return tuned
        from ..sgd.runner import default_step_size

        return default_step_size(task, strategy)

    def failure_for(
        self, task: str, dataset: str, architecture: str, strategy: str
    ) -> "CellFailure | None":
        """The quarantine record gapping this cell out, if any.

        A quarantined synchronous *base* run (``cpu-seq``) gaps out all
        three synchronous architectures of its (task, dataset) pair,
        because they would have been re-costed from it.
        """
        direct = self.failures.get((task, dataset, architecture, strategy))
        if direct is not None:
            return direct
        if strategy == "synchronous":
            return self.failures.get((task, dataset, "cpu-seq", "synchronous"))
        return None

    def try_run(
        self, task: str, dataset: str, architecture: str, strategy: str
    ) -> TrainResult | None:
        """Degraded-mode :meth:`run`: ``None`` for a quarantined cell.

        Table/figure drivers use this to render partial grids with
        explicit gap markers instead of aborting; on a healthy context
        it is exactly :meth:`run`.
        """
        key = (task, dataset, architecture, strategy)
        if key not in self._cache and self.failure_for(*key) is not None:
            return None
        return self.run(task, dataset, architecture, strategy)

    def run(
        self, task: str, dataset: str, architecture: str, strategy: str
    ) -> TrainResult:
        """Train (or fetch from cache) one configuration.

        Raises :class:`~repro.utils.errors.CellQuarantinedError` for a
        cell a keep-going grid already gave up on — recomputing it
        in-parent would hit the exact failure the executor spent a
        retry budget on.
        """
        cell_key = (task, dataset, architecture, strategy)
        if cell_key not in self._cache:
            failure = self.failure_for(*cell_key)
            if failure is not None:
                raise CellQuarantinedError(
                    f"grid cell {task}/{dataset}/{architecture}/{strategy} was "
                    f"quarantined ({failure.kind} after {failure.attempts} "
                    "attempt(s)); use try_run() for degraded-mode rendering",
                    failure=failure,
                )
        if strategy == "synchronous":
            return self._run_sync(task, dataset, architecture)
        key = (task, dataset, architecture, strategy)
        if key not in self._cache:
            tel = ensure_telemetry(self.telemetry)
            with tel.span(
                "experiment.run",
                task=task,
                dataset=dataset,
                architecture=architecture,
                strategy=strategy,
            ):
                self._cache[key] = train(
                    task,
                    dataset,
                    architecture=architecture,
                    strategy=strategy,
                    scale=self.scale,
                    seed=self.seed,
                    step_size=self.step_for(task, dataset, strategy, architecture),
                    max_epochs=self.async_max_epochs,
                    early_stop_tolerance=self.tolerance,
                    telemetry=self.telemetry,
                )
        return self._cache[key]

    def _run_sync(self, task: str, dataset: str, architecture: str) -> TrainResult:
        """One optimisation run, re-costed per architecture."""
        key = (task, dataset, architecture, "synchronous")
        if key in self._cache:
            return self._cache[key]
        base_key = (task, dataset, "cpu-seq", "synchronous")
        if base_key not in self._cache:
            tel = ensure_telemetry(self.telemetry)
            with tel.span(
                "experiment.run",
                task=task,
                dataset=dataset,
                architecture="cpu-seq",
                strategy="synchronous",
            ):
                self._cache[base_key] = train(
                    task,
                    dataset,
                    architecture="cpu-seq",
                    strategy="synchronous",
                    scale=self.scale,
                    seed=self.seed,
                    step_size=self.step_for(task, dataset, "synchronous"),
                    max_epochs=self.sync_max_epochs,
                    early_stop_tolerance=self.tolerance,
                    cpu_model=self.cpu,
                    gpu_model=self.gpu,
                    telemetry=self.telemetry,
                )
        base = self._cache[base_key]
        if architecture == "cpu-seq":
            return base
        if base.epoch_trace is None:
            raise ConfigurationError("synchronous run lost its epoch trace")
        if architecture == "cpu-par":
            tpi = self.cpu.sync_epoch_time(
                base.epoch_trace,
                self.cpu.spec.max_threads,
                self._ws(task, dataset),
                self.telemetry,
            )
        elif architecture == "gpu":
            tpi = self.gpu.sync_epoch_time(base.epoch_trace, self.telemetry)
        else:
            raise ConfigurationError(f"unknown architecture {architecture!r}")
        result = dc_replace(base, architecture=architecture, time_per_iter=tpi)
        self._cache[key] = result
        return result

    def _ws(self, task: str, dataset: str) -> float:
        key = (task, dataset)
        if key not in self._ws_cache:
            from ..datasets import load, load_mlp
            from ..models import make_model
            from ..sgd.runner import working_set_bytes

            ds = load_mlp(dataset, self.scale, self.seed) if task == "mlp" else load(
                dataset, self.scale, self.seed
            )
            self._ws_cache[key] = working_set_bytes(ds, make_model(task, ds), task)
        return self._ws_cache[key]

    def grid_cells(
        self,
        strategies: tuple[str, ...] = ("synchronous", "asynchronous"),
        architectures: tuple[str, ...] | None = None,
    ) -> "list[GridCell]":
        """Every grid cell this context's task/dataset axes span."""
        from .executor import ARCHITECTURES, GridCell

        archs = ARCHITECTURES if architectures is None else architectures
        return [
            GridCell(task, dataset, architecture, strategy)
            for task in self.tasks
            for dataset in self.datasets
            for strategy in strategies
            for architecture in archs
        ]

    def prefetch(self, cells: "list[GridCell]") -> None:
        """Materialise *cells* into the cache ahead of serial ``run`` calls.

        A no-op on a plain serial context (``jobs=1``, no store): the
        historical code path — train on first ``run`` — is untouched.
        Otherwise the :class:`~repro.experiments.executor.GridExecutor`
        computes the cells (process pool, shared-base dedup, optional
        store resume) with bit-identical results.
        """
        if (
            self.jobs <= 1
            and self.store is None
            and not self.keep_going
            and self.fault_plan is None
        ):
            return
        from .executor import GridExecutor

        executor = GridExecutor(self)
        executor.execute(cells)
        self.grid_records.extend(executor.cell_records)

    def best_async_cpu(self, task: str, dataset: str) -> TrainResult:
        """The optimal asynchronous CPU configuration (Fig. 7's left side).

        The paper notes that on dense low-dimensional data sequential
        CPU wins while parallel CPU wins on sparse data; we simply take
        the faster of the two at the context tolerance.
        """
        seq = self.run(task, dataset, "cpu-seq", "asynchronous")
        par = self.run(task, dataset, "cpu-par", "asynchronous")
        return seq if seq.time_to(self.tolerance) <= par.time_to(self.tolerance) else par
