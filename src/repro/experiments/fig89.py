"""Figs. 8 and 9 — GPU-over-parallel-CPU speedup vs. framework baselines.

Fig. 8 (LR and SVM) compares three systems per dataset: our synchronous
implementation, our asynchronous implementation, and BIDMach (sync).
Fig. 9 (MLP) compares ours-sync, ours-async (Hogbatch) and TensorFlow.
The metric is the hardware-efficiency ratio ``t_cpu_par / t_gpu`` — the
speedup the GPU delivers over 56 CPU threads for one epoch.

Paper shape: our implementations provide similar or *better* GPU
speedup than the frameworks (their kernels are the reference points
proving ours are efficient), with BIDMach's advantage collapsing on
sparse data (its GPU kernels are dense-optimised).

Degraded mode: every bar group hangs off the shared ``cpu-seq``
synchronous run (its epoch trace feeds all per-system timings), so on
a keep-going grid a quarantined base drops its whole (task, dataset)
group — rendered as a ``-`` row plus a failure-report entry instead of
aborting the figure (docs/RESILIENCE.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datasets import load, load_mlp
from ..frameworks import BIDMACH_LIKE, OURS, TENSORFLOW_LIKE, FrameworkExecutor
from ..hardware import AsyncWorkload
from ..models import make_model
from ..sgd.runner import working_set_bytes
from ..utils.tables import render_bar_chart, render_table
from .common import ExperimentContext
from .resilience import CellFailure, render_failure_section

__all__ = ["SpeedupEntry", "Fig89Result", "run_fig8", "run_fig9"]


@dataclass(frozen=True)
class SpeedupEntry:
    """GPU-over-parallel-CPU speedup of one system on one workload."""

    task: str
    dataset: str
    system: str
    speedup: float


@dataclass
class Fig89Result:
    """Speedup entries for one figure."""

    figure: str
    entries: list[SpeedupEntry] = field(default_factory=list)
    #: (task, dataset) groups dropped by a quarantined base run.
    gaps: list[tuple[str, str]] = field(default_factory=list)
    #: Quarantine records behind the gaps (keep-going grids only).
    failures: list[CellFailure] = field(default_factory=list)

    def get(self, task: str, dataset: str, system: str) -> float:
        """Speedup of one (task, dataset, system) bar."""
        for e in self.entries:
            if (e.task, e.dataset, e.system) == (task, dataset, system):
                return e.speedup
        raise KeyError((task, dataset, system))

    def systems(self) -> list[str]:
        """Distinct systems, in first-seen order."""
        seen: list[str] = []
        for e in self.entries:
            if e.system not in seen:
                seen.append(e.system)
        return seen

    def render(self) -> str:
        """Table plus grouped ASCII bars."""
        headers = ["task", "dataset"] + self.systems()
        keys = []
        for e in self.entries:
            if (e.task, e.dataset) not in keys:
                keys.append((e.task, e.dataset))
        rows = [
            [t, d] + [self.get(t, d, s) for s in self.systems()] for t, d in keys
        ]
        rows += [
            [t, d] + [None] * len(self.systems()) for t, d in self.gaps
        ]
        table = render_table(
            headers, rows, title=f"{self.figure}: GPU over parallel-CPU speedup"
        )
        labels = [f"{t}/{d}/{s}" for t, d in keys for s in self.systems()]
        values = [self.get(t, d, s) for t, d in keys for s in self.systems()]
        chart = render_bar_chart(labels, values, unit="x") if values else ""
        out = table + ("\n\n" + chart if chart else "")
        return out + render_failure_section(self.failures)

    # -- paper shape checks -----------------------------------------------

    def ours_not_dominated(self, slack: float = 0.75) -> bool:
        """Our sync speedup is similar or better than the framework's on
        every dataset (the paper's efficiency-validation claim)."""
        framework = [s for s in self.systems() if s not in ("ours-sync", "ours-async")]
        for e in self.entries:
            if e.system != "ours-sync":
                continue
            for fw in framework:
                if e.speedup < slack * self.get(e.task, e.dataset, fw):
                    return False
        return True


def _sync_speedups(
    ctx: ExperimentContext, task: str, dataset: str
) -> dict[str, float] | None:
    """ours-sync / framework speedups, or ``None`` if the base is gone."""
    run = ctx.try_run(task, dataset, "cpu-seq", "synchronous")
    if run is None:
        return None
    assert run.epoch_trace is not None
    ds = load_mlp(dataset, ctx.scale, ctx.seed) if task == "mlp" else load(
        dataset, ctx.scale, ctx.seed
    )
    ws = working_set_bytes(ds, make_model(task, ds), task)
    out: dict[str, float] = {}
    fw_profile = TENSORFLOW_LIKE if task == "mlp" else BIDMACH_LIKE
    for profile, label in ((OURS, "ours-sync"), (fw_profile, fw_profile.name)):
        timing = FrameworkExecutor(profile).timing(run.epoch_trace, ws)
        out[label] = timing.gpu_speedup_over_cpu
    return out


def _async_speedup(ctx: ExperimentContext, task: str, dataset: str) -> float:
    """ours-async: gpu/cpu-par epoch-time ratio from the workload model."""
    ds = load_mlp(dataset, ctx.scale, ctx.seed) if task == "mlp" else load(
        dataset, ctx.scale, ctx.seed
    )
    model = make_model(task, ds)
    if task == "mlp":
        workload = AsyncWorkload.for_batched(ds, model, batch_size=512)
    else:
        workload = AsyncWorkload.for_linear(ds, model)
    t_par = ctx.cpu.async_epoch_time(workload, ctx.cpu.spec.max_threads)
    t_gpu = ctx.gpu.async_epoch_time(workload)
    return t_par / t_gpu


def _run_figure(ctx: ExperimentContext, figure: str, tasks: tuple[str, ...]) -> Fig89Result:
    from .executor import GridCell

    ctx.prefetch(
        [
            GridCell(task, dataset, "cpu-seq", "synchronous")
            for task in tasks
            for dataset in ctx.datasets
        ]
    )
    result = Fig89Result(figure=figure)
    for task in tasks:
        for dataset in ctx.datasets:
            sync = _sync_speedups(ctx, task, dataset)
            if sync is None:
                result.gaps.append((task, dataset))
                failure = ctx.failure_for(task, dataset, "cpu-seq", "synchronous")
                if failure is not None and failure not in result.failures:
                    result.failures.append(failure)
                continue
            for system, speedup in sync.items():
                result.entries.append(SpeedupEntry(task, dataset, system, speedup))
            result.entries.append(
                SpeedupEntry(task, dataset, "ours-async", _async_speedup(ctx, task, dataset))
            )
    return result


def run_fig8(ctx: ExperimentContext | None = None) -> Fig89Result:
    """Fig. 8: LR and SVM speedups vs. BIDMach."""
    ctx = ctx or ExperimentContext()
    return _run_figure(ctx, "Fig. 8", ("lr", "svm"))


def run_fig9(ctx: ExperimentContext | None = None) -> Fig89Result:
    """Fig. 9: MLP speedups vs. TensorFlow."""
    ctx = ctx or ExperimentContext()
    return _run_figure(ctx, "Fig. 9", ("mlp",))
