"""Table II — synchronous SGD performance to 1% convergence error.

For every (task, dataset) pair the driver reports exactly the paper's
columns: time to convergence on gpu / cpu-seq / cpu-par, time per
iteration on the three backends, the (architecture-independent) epoch
count, and the two speedups cpu-seq/cpu-par and cpu-par/gpu.

Degraded mode: on a keep-going grid a quarantined (task, dataset) base
run yields a gap row — every numeric column renders as ``-`` — plus an
entry in the failure-report section, instead of aborting the table
(docs/RESILIENCE.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..utils.tables import render_table
from .common import ExperimentContext
from .resilience import CellFailure, nan_to_gap, render_failure_section

__all__ = ["Table2Row", "Table2Result", "run_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One (task, dataset) row of Table II.  Times in seconds."""

    task: str
    dataset: str
    ttc_gpu: float
    ttc_cpu_seq: float
    ttc_cpu_par: float
    tpi_gpu: float
    tpi_cpu_seq: float
    tpi_cpu_par: float
    epochs: float

    @property
    def is_gap(self) -> bool:
        """True for a quarantined (keep-going) row: no numbers to show."""
        return math.isnan(self.tpi_cpu_seq)

    @property
    def speedup_seq_over_par(self) -> float:
        """cpu-seq / cpu-par time-per-iteration ratio (paper column 9)."""
        return self.tpi_cpu_seq / self.tpi_cpu_par

    @property
    def speedup_par_over_gpu(self) -> float:
        """cpu-par / gpu time-per-iteration ratio (paper column 10)."""
        return self.tpi_cpu_par / self.tpi_gpu


@dataclass
class Table2Result:
    """All rows plus rendering and shape checks."""

    rows: list[Table2Row] = field(default_factory=list)
    #: Quarantine records behind the gap rows (keep-going grids only).
    failures: list[CellFailure] = field(default_factory=list)

    def row(self, task: str, dataset: str) -> Table2Row:
        """Look up one row."""
        for r in self.rows:
            if r.task == task and r.dataset == dataset:
                return r
        raise KeyError((task, dataset))

    def render(self) -> str:
        """Monospace rendering in the paper's Table II layout."""
        headers = [
            "task",
            "dataset",
            "ttc gpu (s)",
            "ttc cpu-seq (s)",
            "ttc cpu-par (s)",
            "tpi gpu (ms)",
            "tpi cpu-seq (ms)",
            "tpi cpu-par (ms)",
            "epochs",
            "seq/par",
            "par/gpu",
        ]
        body = [
            [
                r.task,
                r.dataset,
                *(
                    nan_to_gap(v)
                    for v in (
                        r.ttc_gpu,
                        r.ttc_cpu_seq,
                        r.ttc_cpu_par,
                        r.tpi_gpu * 1e3,
                        r.tpi_cpu_seq * 1e3,
                        r.tpi_cpu_par * 1e3,
                        int(r.epochs) if math.isfinite(r.epochs) else r.epochs,
                        r.speedup_seq_over_par,
                        r.speedup_par_over_gpu,
                    )
                ),
            ]
            for r in self.rows
        ]
        table = render_table(
            headers, body, title="Table II: Synchronous SGD performance (1% error)"
        )
        return table + render_failure_section(self.failures)

    # -- paper shape checks -----------------------------------------------

    def gpu_always_fastest(self) -> bool:
        """Paper: 'GPU is always faster than parallel CPU in time per
        iteration and, thus, in time to convergence.'"""
        return all(
            r.tpi_gpu < r.tpi_cpu_par and r.ttc_gpu <= r.ttc_cpu_par
            for r in self.rows
            if not r.is_gap and math.isfinite(r.ttc_cpu_par)
        )

    def parallel_always_helps(self) -> bool:
        """Paper: 'the parallel implementations always achieve
        convergence faster' (than sequential)."""
        return all(r.tpi_cpu_par < r.tpi_cpu_seq for r in self.rows if not r.is_gap)

    def mlp_speedup_band(self, lo: float = 1.5, hi: float = 3.5) -> bool:
        """Paper: MLP cpu-seq/cpu-par speedup ~2x (ViennaCL GEMM policy)."""
        mlp = [r for r in self.rows if r.task == "mlp" and not r.is_gap]
        return all(lo <= r.speedup_seq_over_par <= hi for r in mlp)


def run_table2(ctx: ExperimentContext | None = None) -> Table2Result:
    """Regenerate Table II at the context's scale."""
    ctx = ctx or ExperimentContext()
    ctx.prefetch(ctx.grid_cells(strategies=("synchronous",)))
    result = Table2Result()
    for task in ctx.tasks:
        for dataset in ctx.datasets:
            runs = {
                arch: ctx.try_run(task, dataset, arch, "synchronous")
                for arch in ("gpu", "cpu-seq", "cpu-par")
            }
            if any(run is None for run in runs.values()):
                # All three share one quarantined base run: gap row.
                failure = ctx.failure_for(task, dataset, "cpu-seq", "synchronous")
                if failure is not None and failure not in result.failures:
                    result.failures.append(failure)
                result.rows.append(
                    Table2Row(task, dataset, *([math.nan] * 7))
                )
                continue
            epochs = runs["gpu"].epochs_to(ctx.tolerance)
            result.rows.append(
                Table2Row(
                    task=task,
                    dataset=dataset,
                    ttc_gpu=runs["gpu"].time_to(ctx.tolerance),
                    ttc_cpu_seq=runs["cpu-seq"].time_to(ctx.tolerance),
                    ttc_cpu_par=runs["cpu-par"].time_to(ctx.tolerance),
                    tpi_gpu=runs["gpu"].time_per_iter,
                    tpi_cpu_seq=runs["cpu-seq"].time_per_iter,
                    tpi_cpu_par=runs["cpu-par"].time_per_iter,
                    epochs=math.inf if epochs is None else float(epochs),
                )
            )
    return result
