"""Resumable on-disk store of completed experiment-grid cells.

One file per completed cell, named by the SHA-256 of the cell's
canonical configuration (task, dataset, architecture, strategy, plus
every knob that changes the numbers: scale, seed, epoch budget, step
size, tolerance).  A grid interrupted at cell k restarts with
``--resume`` and replays cells 0..k-1 from disk instead of recomputing
them; any configuration change hashes to different keys, so a stale
store can never leak wrong results into a new grid.

Writes are atomic (temp file + ``os.replace`` in the store directory),
so a cell file is either absent or complete — a worker killed
mid-write leaves nothing behind that a resume could trip over.
Unreadable or corrupt files are treated as cache misses and the cell
is recomputed.

Quarantined cells (keep-going grids, docs/RESILIENCE.md) are recorded
next to the results as ``<key>.failure.json`` files holding the
structured :class:`~repro.experiments.resilience.CellFailure`.
Failure files are *post-mortems, not results*: ``load`` never returns
them, ``len()`` does not count them, and a resumed grid ignores them —
a failed cell is retried on resume, not skipped.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from ..sgd.runner import TrainResult
from ..sgd.serialize import result_from_dict, result_to_dict
from ..utils.errors import ConfigurationError
from .resilience import CellFailure

__all__ = ["ResultStore", "config_key"]

_STORE_SCHEMA = "repro.experiments/result-store/v1"
_FAILURE_SCHEMA = "repro.experiments/cell-failure/v1"
_REFERENCE_SCHEMA = "repro.experiments/reference-losses/v1"
_REFERENCE_FILE = "references.json"


def config_key(config: dict[str, Any]) -> str:
    """Stable hash of a cell configuration.

    The canonical form is JSON with sorted keys, so dict insertion
    order never changes the key; any value change does.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultStore:
    """Directory of completed cells, keyed by configuration hash."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def contains(self, config: dict[str, Any]) -> bool:
        """True when a (readable) result for *config* is on disk."""
        return self.load(config) is not None

    def load(self, config: dict[str, Any]) -> TrainResult | None:
        """The stored result for *config*, or ``None`` on miss/corruption."""
        path = self._path(config_key(config))
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or doc.get("schema") != _STORE_SCHEMA:
            return None
        try:
            return result_from_dict(doc["result"])
        except (KeyError, TypeError, ValueError, ConfigurationError):
            return None

    def save(
        self,
        config: dict[str, Any],
        result: TrainResult,
        *,
        include_trace: bool = False,
    ) -> Path:
        """Persist *result* under *config*'s key, atomically.

        ``include_trace=True`` keeps the epoch trace in the file — the
        executor needs it on synchronous base runs so a resumed grid
        can re-cost them for the other architectures.
        """
        key = config_key(config)
        path = self._path(key)
        doc = {
            "schema": _STORE_SCHEMA,
            "key": key,
            "config": config,
            "result": result_to_dict(result, include_trace=include_trace),
        }
        self._write_atomic(key, path, doc)
        return path

    def _failure_path(self, key: str) -> Path:
        return self.root / f"{key}.failure.json"

    def save_failure(self, config: dict[str, Any], failure: CellFailure) -> Path:
        """Persist a quarantine post-mortem under *config*'s key, atomically.

        Written next to the results so one directory is the complete
        record of a grid run — what finished and what was given up on.
        """
        key = config_key(config)
        path = self._failure_path(key)
        doc = {
            "schema": _FAILURE_SCHEMA,
            "key": key,
            "config": config,
            "failure": failure.describe(),
        }
        self._write_atomic(key, path, doc)
        return path

    def load_failure(self, config: dict[str, Any]) -> CellFailure | None:
        """The stored quarantine record for *config*, or ``None``."""
        path = self._failure_path(config_key(config))
        return self._read_failure(path)

    def failures(self) -> list[CellFailure]:
        """Every quarantine record in the store, in stable path order."""
        records = []
        for path in sorted(self.root.glob("*.failure.json")):
            failure = self._read_failure(path)
            if failure is not None:
                records.append(failure)
        return records

    def _read_failure(self, path: Path) -> CellFailure | None:
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or doc.get("schema") != _FAILURE_SCHEMA:
            return None
        try:
            return CellFailure.from_dict(doc["failure"])
        except (KeyError, TypeError, ValueError):
            return None

    # -- shared reference optima ------------------------------------------

    @property
    def _reference_path(self) -> Path:
        return self.root / _REFERENCE_FILE

    def references(self) -> dict[str, float]:
        """Every persisted reference optimum, keyed by reference key."""
        try:
            doc = json.loads(self._reference_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(doc, dict) or doc.get("schema") != _REFERENCE_SCHEMA:
            return {}
        refs = doc.get("references")
        if not isinstance(refs, dict):
            return {}
        return {
            str(k): float(v)
            for k, v in refs.items()
            if isinstance(v, (int, float))
        }

    def load_reference(self, key: str) -> float | None:
        """The persisted reference optimum for *key*, or ``None``."""
        return self.references().get(key)

    def save_reference(self, key: str, value: float) -> None:
        """Merge one reference optimum into ``references.json``, atomically.

        The grid dedupes per-cell reference solves through this file:
        step-size family members of one (task, dataset) share a single
        solve, and a resumed grid never re-solves at all.
        """
        merged = self.references()
        if merged.get(key) == value:
            return
        merged[key] = float(value)
        doc = {"schema": _REFERENCE_SCHEMA, "references": merged}
        self._write_atomic("references", self._reference_path, doc)

    def _write_atomic(self, key: str, path: Path, doc: dict[str, Any]) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=key[:16] + ".", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        """Completed results on disk (post-mortems and references excluded)."""
        return sum(
            1
            for path in self.root.glob("*.json")
            if not path.name.endswith(".failure.json")
            and path.name != _REFERENCE_FILE
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.root)!r}, entries={len(self)})"
