"""The paper's published measurements (Tables II and III), as data.

Used by the EXPERIMENTS.md generator and the benchmark reports to put
our regenerated numbers side by side with the paper's.  Times are in
the paper's units: seconds for time-to-convergence, milliseconds for
time-per-iteration; ``inf`` marks the paper's non-convergent entries.

Source: Ma, Rusu, Torres — IPDPS 2019, Tables II and III (1% error).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["PaperSyncRow", "PaperAsyncRow", "PAPER_TABLE2", "PAPER_TABLE3"]

INF = math.inf


@dataclass(frozen=True)
class PaperSyncRow:
    """One Table II row: synchronous SGD at 1% error."""

    task: str
    dataset: str
    ttc_gpu_s: float
    ttc_cpu_seq_s: float
    ttc_cpu_par_s: float
    tpi_gpu_ms: float
    tpi_cpu_seq_ms: float
    tpi_cpu_par_ms: float
    epochs: int
    speedup_seq_over_par: float
    speedup_par_over_gpu: float


@dataclass(frozen=True)
class PaperAsyncRow:
    """One Table III row: asynchronous SGD at 1% error."""

    task: str
    dataset: str
    ttc_gpu_s: float
    ttc_cpu_seq_s: float
    ttc_cpu_par_s: float
    tpi_gpu_ms: float
    tpi_cpu_seq_ms: float
    tpi_cpu_par_ms: float
    epochs_gpu: float
    epochs_cpu_seq: float
    epochs_cpu_par: float
    speedup_seq_over_par: float
    ratio_gpu_over_par: float


def _t2(task, ds, *v) -> PaperSyncRow:
    return PaperSyncRow(task, ds, *v)


def _t3(task, ds, *v) -> PaperAsyncRow:
    return PaperAsyncRow(task, ds, *v)


#: Table II — synchronous SGD performance to 1% convergence error.
PAPER_TABLE2: tuple[PaperSyncRow, ...] = (
    _t2("lr", "covtype", 1.05, 145.11, 1.29, 15.0, 2073.0, 18.42, 70, 112.54, 1.23),
    _t2("lr", "w8a", 0.37, 148.88, 0.46, 4.87, 1959.0, 6.05, 76, 323.80, 1.24),
    _t2("lr", "real-sim", 3.10, 1537.90, 7.67, 4.43, 2197.0, 10.96, 700, 200.46, 2.47),
    _t2("lr", "rcv1", 31.69, 2227.05, 48.06, 44.82, 3150.0, 67.98, 707, 46.34, 1.52),
    _t2("lr", "news", 0.65, 240.21, 3.68, 6.37, 2355.0, 36.08, 102, 65.27, 5.66),
    _t2("svm", "covtype", 10.22, 1344.65, 13.50, 14.27, 1878.0, 18.85, 716, 99.63, 1.32),
    _t2("svm", "w8a", 0.78, 342.85, 0.80, 4.13, 1814.0, 4.23, 189, 428.84, 1.02),
    _t2("svm", "real-sim", 0.23, 75.59, 0.46, 6.22, 2043.0, 12.43, 37, 164.36, 2.00),
    _t2("svm", "rcv1", 1.13, 111.61, 2.61, 29.74, 2937.0, 68.69, 38, 42.76, 2.31),
    _t2("svm", "news", 0.30, 98.42, 1.69, 6.67, 2187.0, 37.56, 45, 58.23, 5.63),
    _t2("mlp", "covtype", 1498.0, 19398.0, 10009.0, 919.0, 11908.0, 6145.0, 1629, 1.94, 6.68),
    _t2("mlp", "w8a", 83.57, 909.0, 388.0, 107.0, 1161.0, 495.0, 783, 2.34, 4.64),
    _t2("mlp", "real-sim", 21.99, 229.0, 93.98, 130.0, 1365.0, 556.0, 168, 2.46, 4.26),
    _t2("mlp", "rcv1", 48.91, 1146.0, 241.0, 1193.0, 16960.0, 5880.0, 41, 2.89, 4.93),
    _t2("mlp", "news", 4.03, 35.04, 16.08, 40.23, 357.0, 164.0, 98, 2.17, 4.08),
)

#: Table III — asynchronous SGD performance to 1% convergence error.
PAPER_TABLE3: tuple[PaperAsyncRow, ...] = (
    _t3("lr", "covtype", 1.97, 0.60, 1.51, 15.0, 150.0, 251.0, 135, 4, 6, 0.60, 0.06),
    _t3("lr", "w8a", 0.22, 0.27, 0.18, 2.8, 15.0, 5.9, 80, 18, 27, 2.54, 0.47),
    _t3("lr", "real-sim", 2.48, 1.35, 0.52, 27.0, 25.0, 8.1, 92, 54, 61, 3.09, 3.33),
    _t3("lr", "rcv1", 18.29, 20.37, 4.64, 226.0, 345.0, 71.0, 81, 59, 65, 4.86, 3.18),
    _t3("lr", "news", INF, 5.47, INF, 65.0, 53.0, 8.7, INF, 103, INF, 6.09, 7.47),
    _t3("svm", "covtype", 0.96, 0.16, 0.35, 15.0, 53.0, 77.0, 63, 3, 4, 0.69, 0.19),
    # Table III prints svm/w8a's GPU time-per-iteration as 2.6 ms, which
    # contradicts the same row's gpu/cpu-par ratio column (1.18 = 6.6/5.6);
    # we store the value consistent with the ratio.
    _t3("svm", "w8a", INF, 0.54, 1.89, 6.6, 2.2, 5.6, INF, 239, 333, 0.39, 1.18),
    _t3("svm", "real-sim", 3.46, 1.82, 1.28, 14.0, 11.0, 7.6, 247, 164, 166, 1.45, 1.84),
    _t3("svm", "rcv1", 10.25, 22.71, 7.57, 94.0, 216.0, 68.0, 109, 105, 111, 3.18, 1.38),
    _t3("svm", "news", INF, 20.01, 1.79, 50.0, 47.0, 8.4, INF, 425, 211, 5.60, 5.95),
    _t3("mlp", "covtype", 2106.0, 6365.0, 288.0, 6056.0, 19058.0, 814.0, 344, 334, 354, 23.42, 7.44),
    _t3("mlp", "w8a", 495.0, 1284.0, 986.0, 635.0, 1668.0, 92.61, 776, 770, 10635, 18.01, 6.85),
    _t3("mlp", "real-sim", 140.0, 317.0, 11.14, 715.0, 1925.0, 107.0, 196, 165, 108, 18.04, 6.70),
    _t3("mlp", "rcv1", 352.0, 724.0, 34.47, 8326.0, 17234.0, 858.0, 42, 42, 40, 20.08, 9.70),
    _t3("mlp", "news", 18.25, 47.35, 1.12, 234.0, 512.0, 34.04, 78, 91, 32, 15.06, 6.87),
)
