"""Feature grouping for the MLP task (Table I's architecture column).

To keep the fully-connected nets within GPU memory, the paper reduces
high-dimensional datasets before MLP training:

    "we define the number of input neurons as 50 for real-sim and rcv,
    and 300 for w8a and news.  The features are grouped and reorganized
    by averaging the values of hundreds of consecutive features to match
    the input layer size of the MLP architecture.  As a result, most of
    the data sparsities increase on the transformed datasets."
    (Section IV-A)

:func:`group_features` implements exactly that: the feature axis is cut
into ``n_groups`` contiguous buckets and each bucket's values are
averaged (zeros included in the denominator, i.e. a mean over the full
bucket width).  The routine reports the resulting density so the
reproduction of Table I's "MLP sparsity" column can be checked against
the paper's numbers.
"""

from __future__ import annotations

import numpy as np

from ..linalg.csr import CSRMatrix
from ..utils.errors import ConfigurationError
from .synthetic import Dataset

__all__ = ["group_features", "mlp_dataset"]


def group_features(X, n_groups: int) -> np.ndarray:
    """Average consecutive feature buckets down to *n_groups* columns.

    Parameters
    ----------
    X:
        Dense ndarray or :class:`CSRMatrix` of shape ``(n, d)``.
    n_groups:
        Target width; must satisfy ``1 <= n_groups <= d``.  When
        ``n_groups == d`` the data is returned unchanged (densified),
        matching the paper's treatment of covtype (54) and w8a (300)
        whose MLP input equals their native dimensionality.

    Returns
    -------
    ndarray of shape ``(n, n_groups)``.
    """
    n, d = X.shape
    if not 1 <= n_groups <= d:
        raise ConfigurationError(f"n_groups must be in [1, {d}], got {n_groups}")
    # Bucket j covers columns [edges[j], edges[j+1]); widths differ by at
    # most one when d % n_groups != 0.
    edges = np.linspace(0, d, n_groups + 1).astype(np.int64)
    widths = np.diff(edges).astype(np.float64)
    if np.any(widths <= 0):
        raise ConfigurationError(
            f"n_groups={n_groups} creates empty buckets for d={d}"
        )
    col_to_group = np.repeat(np.arange(n_groups), np.diff(edges))

    if isinstance(X, CSRMatrix):
        if n_groups == d:
            return X.to_dense()
        out = np.zeros((n, n_groups), dtype=np.float64)
        rows = np.repeat(np.arange(n), X.row_nnz)
        np.add.at(out, (rows, col_to_group[X.indices]), X.data)
        out /= widths[None, :]
        return out

    X = np.asarray(X, dtype=np.float64)
    if n_groups == d:
        # Copy even in the identity case: callers (mlp_dataset) post-
        # process the result in place and must never alias the input.
        return np.array(X, order="C", copy=True)
    out = np.zeros((n, n_groups), dtype=np.float64)
    np.add.at(out.T, col_to_group, X.T)
    out /= widths[None, :]
    return out


def mlp_dataset(dataset: Dataset) -> Dataset:
    """Return the MLP-ready version of *dataset*.

    The feature matrix is grouped to the profile's MLP input width and
    densified (the paper: "We use a dense format to represent all the
    transformed sparse datasets when executing MLP").  Rows are then
    re-normalised to unit L2 norm: the source tf-idf features are
    unit-normalised, and averaging hundreds of mostly-zero columns
    would otherwise shrink the input magnitudes by orders of magnitude
    (stalling sigmoid training at any reasonable step size).  The
    profile is rewritten to reflect the realised post-transform
    statistics.
    """
    width = min(dataset.profile.mlp_input_width, dataset.n_features)
    Xg = group_features(dataset.X, width)
    norms = np.linalg.norm(Xg, axis=1, keepdims=True)
    np.divide(Xg, norms, out=Xg, where=norms > 0)
    row_nnz = np.count_nonzero(Xg, axis=1)
    from dataclasses import replace

    new_profile = replace(
        dataset.profile,
        n_features=width,
        nnz_min=int(row_nnz.min()) if row_nnz.size else 0,
        nnz_avg=float(row_nnz.mean()) if row_nnz.size else 0.0,
        nnz_max=int(row_nnz.max()) if row_nnz.size else 0,
        dense=True,
        mlp_arch=(width,) + dataset.profile.mlp_arch[1:],
    )
    return Dataset(
        name=f"{dataset.name}-mlp",
        X=np.ascontiguousarray(Xg),
        y=dataset.y.copy(),
        profile=new_profile,
    )
