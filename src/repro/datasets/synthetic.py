"""Synthetic dataset generation matched to a :class:`DatasetProfile`.

The generators produce learnable binary-classification data whose
*structural statistics* match the profile:

* **Sparse** datasets draw feature occurrences from a Zipf popularity
  distribution (text corpora like rcv1/news are strongly power-law),
  with per-example nnz counts from a clipped log-normal whose mean and
  max/mean dispersion match Table I.  Values are positive tf-idf-like
  magnitudes, row-normalised so the examples have comparable norms.
* **Dense** datasets (covtype) mix standardised continuous features with
  binary indicator blocks, mimicking covtype's 10 quantitative + 44
  one-hot columns.

Labels come from a ground-truth hyperplane over the generated features
plus sign-flip noise, so the convex tasks (LR/SVM) have a well-defined
optimum the convergence protocol can target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from ..linalg.csr import CSRMatrix
from ..utils.errors import ConfigurationError
from ..utils.rng import derive_rng
from .profiles import DatasetProfile

__all__ = ["Dataset", "generate", "generate_sparse", "generate_dense"]

Matrix = Union[np.ndarray, CSRMatrix]


@dataclass
class Dataset:
    """A generated (or loaded) training set.

    Attributes
    ----------
    name:
        Dataset name (profile name, possibly suffixed by the scale).
    X:
        Feature matrix — :class:`CSRMatrix` for sparse datasets, a dense
        C-contiguous float64 ndarray for dense ones.
    y:
        Labels in {-1.0, +1.0}.
    profile:
        The (possibly scaled) profile the data was generated from.
    """

    name: str
    X: Matrix
    y: np.ndarray
    profile: DatasetProfile
    _dense_cache: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        n = self.X.shape[0]
        if self.y.shape != (n,):
            raise ConfigurationError(
                f"labels shape {self.y.shape} inconsistent with X rows {n}"
            )

    @property
    def n_examples(self) -> int:
        """Number of training examples."""
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        """Number of features."""
        return self.X.shape[1]

    @property
    def is_sparse(self) -> bool:
        """True when X is stored in CSR format."""
        return isinstance(self.X, CSRMatrix)

    @property
    def nnz(self) -> int:
        """Stored non-zeros (``n*d`` for dense)."""
        if self.is_sparse:
            return self.X.nnz
        return int(self.X.size)

    @property
    def density(self) -> float:
        """Fraction of non-zero cells."""
        if self.is_sparse:
            return self.X.density
        return float(np.count_nonzero(self.X)) / max(1, self.X.size)

    def to_dense(self) -> np.ndarray:
        """Dense float64 view of X (cached; raises for huge matrices)."""
        if not self.is_sparse:
            return self.X
        if self._dense_cache is None:
            cells = self.n_examples * self.n_features
            if cells > 200_000_000:
                raise ConfigurationError(
                    f"dense representation would need {cells} cells; "
                    "use a smaller scale (the paper likewise could not "
                    "densify rcv1/news, Table I)"
                )
            self._dense_cache = self.X.to_dense()
        return self._dense_cache

    def as_csr(self) -> CSRMatrix:
        """CSR view of X (converts dense datasets)."""
        if self.is_sparse:
            return self.X
        return CSRMatrix.from_dense(self.X)

    def summary(self) -> dict[str, float]:
        """Table I-style statistics of the realised data."""
        if self.is_sparse:
            row_nnz = self.X.row_nnz
        else:
            row_nnz = np.count_nonzero(self.X, axis=1)
        return {
            "n_examples": float(self.n_examples),
            "n_features": float(self.n_features),
            "nnz_min": float(row_nnz.min()) if row_nnz.size else 0.0,
            "nnz_avg": float(row_nnz.mean()) if row_nnz.size else 0.0,
            "nnz_max": float(row_nnz.max()) if row_nnz.size else 0.0,
            "sparsity_pct": 100.0 * self.density,
            "positive_fraction": float(np.mean(self.y > 0)),
        }


# ---------------------------------------------------------------------------


def _zipf_popularity(d: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf feature-occurrence probabilities, shuffled over column ids.

    Shuffling matters: real feature files do not sort columns by
    frequency, so hot features land on scattered cache lines — the
    coherence model measures conflicts from the realised layout.
    """
    ranks = np.arange(1, d + 1, dtype=np.float64)
    p = ranks ** (-exponent)
    p /= p.sum()
    rng.shuffle(p)
    return p


def _sample_row_nnz(profile: DatasetProfile, n: int, rng: np.random.Generator) -> np.ndarray:
    """Per-example nnz counts matching the profile's min/avg/max.

    A log-normal matches the heavy upper tail of document lengths; sigma
    is chosen so the distribution's max over *n* draws lands near the
    profile's nnz_max, then counts are clipped into [min, max].
    """
    avg = max(profile.nnz_avg, 1.0)
    disp = max(profile.nnz_dispersion, 1.0)
    if disp <= 1.0 + 1e-9:
        counts = np.full(n, int(round(avg)), dtype=np.int64)
    else:
        # max of n lognormal draws ~ exp(mu + sigma * sqrt(2 ln n));
        # solve for sigma so that max/mean ~ disp.
        z = np.sqrt(2.0 * np.log(max(n, 2)))
        sigma = min(2.0, np.log(disp) / z + 0.25)
        mu = np.log(avg) - 0.5 * sigma**2
        counts = np.round(rng.lognormal(mu, sigma, size=n)).astype(np.int64)
    lo = max(profile.nnz_min, 0)
    hi = min(profile.nnz_max, profile.n_features)
    counts = np.clip(counts, lo, hi)
    # Guarantee the extremes appear so the realised dispersion matches.
    if n >= 2 and hi > lo:
        counts[rng.integers(n)] = hi
        counts[rng.integers(n)] = max(lo, 1) if lo > 0 else lo
    return counts


def generate_sparse(
    profile: DatasetProfile, seed: int | None = None
) -> Dataset:
    """Generate a sparse CSR dataset matching *profile*."""
    n, d = profile.n_examples, profile.n_features
    rng = derive_rng(seed, f"dataset/{profile.name}/structure")
    val_rng = derive_rng(seed, f"dataset/{profile.name}/values")
    lab_rng = derive_rng(seed, f"dataset/{profile.name}/labels")

    popularity = _zipf_popularity(d, profile.zipf_exponent, rng)
    counts = _sample_row_nnz(profile, n, rng)

    # Draw with replacement (fast) then dedupe per row; low densities make
    # collisions rare, and we top up short rows from a uniform pool.
    slack = np.maximum(counts + 4, (counts * 1.3).astype(np.int64))
    total = int(slack.sum())
    draws = rng.choice(d, size=total, replace=True, p=popularity)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(slack, out=offsets[1:])

    indptr = np.zeros(n + 1, dtype=np.int64)
    rows_idx: list[np.ndarray] = []
    for i in range(n):
        want = int(counts[i])
        if want == 0:
            rows_idx.append(np.empty(0, dtype=np.int64))
            continue
        uniq = np.unique(draws[offsets[i] : offsets[i + 1]])
        if uniq.size >= want:
            # Keep a popularity-weighted subset: the first draws are
            # already popularity-weighted, so take the unique values of
            # the first `want`-ish draws.
            uniq = np.unique(draws[offsets[i] : offsets[i] + want])
        rows_idx.append(uniq.astype(np.int64))
        indptr[i + 1] = uniq.size
    np.cumsum(indptr[1:], out=indptr[1:])

    nnz = int(indptr[-1])
    indices = np.concatenate(rows_idx) if rows_idx else np.empty(0, dtype=np.int64)
    # tf-idf magnitudes: a lognormal term frequency scaled by the inverse
    # document frequency of the feature.  The paper's text datasets
    # (real-sim, rcv1, news20) are distributed tf-idf weighted; the idf
    # factor also keeps the Hessian reasonably conditioned (hot features
    # would otherwise dominate the spectrum and stall batch GD).
    data = val_rng.lognormal(mean=0.0, sigma=0.4, size=nnz)
    if nnz:
        doc_freq = np.minimum(1.0, np.maximum(popularity * max(counts.mean(), 1.0), 1.0 / n))
        data *= np.log1p(1.0 / doc_freq[indices])
    X = CSRMatrix(indptr, indices.astype(np.int32), data, (n, d), check=False)
    row_norms = np.sqrt(np.maximum(_row_sq_norms(X), 1e-12))
    X = CSRMatrix(
        X.indptr,
        X.indices,
        X.data / np.repeat(row_norms, X.row_nnz),
        (n, d),
        check=False,
    )

    y = _labels_from_hyperplane(X, profile, lab_rng)
    return Dataset(name=profile.name, X=X, y=y, profile=profile)


def _row_sq_norms(X: CSRMatrix) -> np.ndarray:
    sq = X.data * X.data
    out = np.zeros(X.n_rows)
    nonempty = X.row_nnz > 0
    if np.any(nonempty):
        out[nonempty] = np.add.reduceat(sq, X.indptr[:-1][nonempty])
    return out


def generate_dense(profile: DatasetProfile, seed: int | None = None) -> Dataset:
    """Generate a dense dataset matching *profile* (covtype-like).

    Roughly the first fifth of the columns are continuous standardised
    measurements; the remainder are {0,1} indicators with a small
    positive rate jittered per column, echoing covtype's soil-type /
    wilderness-area one-hot blocks.  Indicator columns are offset by a
    tiny epsilon so the matrix is *fully* dense, matching covtype's
    100% sparsity entry in Table I.
    """
    n, d = profile.n_examples, profile.n_features
    rng = derive_rng(seed, f"dataset/{profile.name}/dense")
    lab_rng = derive_rng(seed, f"dataset/{profile.name}/labels")

    n_cont = max(1, d // 5)
    X = np.empty((n, d), dtype=np.float64)
    X[:, :n_cont] = rng.standard_normal((n, n_cont))
    rates = rng.uniform(0.02, 0.3, size=d - n_cont)
    X[:, n_cont:] = (rng.random((n, d - n_cont)) < rates).astype(np.float64)
    # covtype is declared 100% dense: indicators carry a baseline value.
    X[:, n_cont:] = X[:, n_cont:] * 0.9 + 0.1
    X /= np.sqrt(d)  # comparable example norms across dimensionalities

    Xc = CSRMatrix.from_dense(X)
    y = _labels_from_hyperplane(Xc, profile, lab_rng)
    return Dataset(name=profile.name, X=np.ascontiguousarray(X), y=y, profile=profile)


def _labels_from_hyperplane(
    X: CSRMatrix, profile: DatasetProfile, rng: np.random.Generator
) -> np.ndarray:
    """Balanced, noisy labels from a random ground-truth hyperplane.

    The hyperplane is *block-constant* over the contiguous feature
    groups the MLP transform will average (topic-like structure:
    adjacent features share a latent direction).  This makes the same
    labels learnable from both views — the raw features (LR/SVM) and
    the grouped features (MLP) — as they are for the paper's real
    datasets, where all three tasks converge on every dataset.
    """
    n_groups = max(1, min(profile.mlp_input_width, X.n_cols))
    edges = np.linspace(0, X.n_cols, n_groups + 1).astype(np.int64)
    group_values = rng.standard_normal(n_groups)
    w_star = np.repeat(group_values, np.diff(edges))
    margin = X.matvec(w_star)
    # Rank-based split: exactly half the examples positive even when
    # margins tie (rows with identical sparsity patterns are common at
    # small scales).  Ties are broken by a deterministic jitter so the
    # boundary is not degenerate.
    jitter = rng.normal(scale=1e-9, size=X.n_rows)
    order = np.argsort(margin + jitter, kind="stable")
    y = np.empty(X.n_rows, dtype=np.float64)
    y[order[: X.n_rows // 2]] = -1.0
    y[order[X.n_rows // 2 :]] = 1.0
    flips = rng.random(X.n_rows) < profile.label_noise
    y[flips] *= -1.0
    # Avoid degenerate single-class sets on tiny samples.
    if np.all(y == y[0]) and y.size > 1:
        y[: y.size // 2] *= -1.0
    return y


def generate(profile: DatasetProfile, seed: int | None = None) -> Dataset:
    """Generate a dataset of the kind (dense/sparse) the profile declares."""
    if profile.dense:
        return generate_dense(profile, seed)
    return generate_sparse(profile, seed)
