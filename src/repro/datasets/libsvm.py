"""LIBSVM text-format reader/writer.

The paper's datasets are distributed in LIBSVM format [5] — lines of

    <label> <index>:<value> <index>:<value> ...

with 1-based feature indices.  This module lets the genuine files be
dropped into the reproduction in place of the synthetic data, and lets
generated datasets be exported for cross-checking against other tools.

Labels are normalised to {-1, +1}: inputs using {0,1} or {1,2}
conventions (covtype.binary uses {1,2}) are remapped with the smaller
value becoming -1.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, TextIO

import numpy as np

from ..linalg.csr import CSRMatrix
from ..utils.errors import DataFormatError
from .profiles import DatasetProfile
from .synthetic import Dataset

__all__ = ["read_libsvm", "write_libsvm", "parse_libsvm_lines"]


def parse_libsvm_lines(
    lines: Iterable[str], n_features: int | None = None
) -> tuple[CSRMatrix, np.ndarray]:
    """Parse an iterable of LIBSVM lines into ``(CSRMatrix, labels)``.

    Parameters
    ----------
    lines:
        Text lines; blank lines and ``#`` comments are skipped.
    n_features:
        Total feature count; inferred as the maximum seen index when
        omitted.
    """
    labels: list[float] = []
    rows: list[tuple[np.ndarray, np.ndarray]] = []
    max_index = 0
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        try:
            label = float(parts[0])
        except ValueError as exc:
            raise DataFormatError(f"line {lineno}: bad label {parts[0]!r}") from exc
        idx: list[int] = []
        val: list[float] = []
        prev = 0
        for tok in parts[1:]:
            try:
                k, v = tok.split(":", 1)
                j = int(k)
                x = float(v)
            except ValueError as exc:
                raise DataFormatError(f"line {lineno}: bad pair {tok!r}") from exc
            if j < 1:
                raise DataFormatError(f"line {lineno}: index {j} must be >= 1")
            if j <= prev:
                raise DataFormatError(
                    f"line {lineno}: indices must be strictly increasing"
                )
            prev = j
            if x != 0.0:
                idx.append(j - 1)
                val.append(x)
        labels.append(label)
        rows.append((np.asarray(idx, dtype=np.int64), np.asarray(val)))
        if idx:
            max_index = max(max_index, idx[-1] + 1)

    d = n_features if n_features is not None else max_index
    if d < max_index:
        raise DataFormatError(
            f"n_features={d} smaller than max seen index {max_index}"
        )
    X = CSRMatrix.from_rows(rows, n_cols=d)
    y = _normalise_labels(np.asarray(labels, dtype=np.float64))
    return X, y


def _normalise_labels(y: np.ndarray) -> np.ndarray:
    """Map arbitrary binary label encodings onto {-1, +1}."""
    uniq = np.unique(y)
    if uniq.size > 2:
        raise DataFormatError(
            f"expected binary labels, found {uniq.size} classes: {uniq[:5]}"
        )
    if uniq.size == 1:
        return np.where(y == uniq[0], 1.0, -1.0) if uniq[0] > 0 else np.full_like(y, -1.0)
    _, hi = uniq
    return np.where(y == hi, 1.0, -1.0)


def read_libsvm(
    path: str | Path | TextIO,
    n_features: int | None = None,
    name: str | None = None,
) -> Dataset:
    """Read a LIBSVM file into a :class:`Dataset` with a realised profile."""
    if hasattr(path, "read"):
        X, y = parse_libsvm_lines(path, n_features)  # type: ignore[arg-type]
        src_name = name or "libsvm"
    else:
        p = Path(path)
        with p.open("r", encoding="utf-8") as fh:
            X, y = parse_libsvm_lines(fh, n_features)
        src_name = name or p.stem
    row_nnz = X.row_nnz
    profile = DatasetProfile(
        name=src_name,
        n_examples=X.n_rows,
        n_features=X.n_cols,
        nnz_min=int(row_nnz.min()) if row_nnz.size else 0,
        nnz_avg=float(row_nnz.mean()) if row_nnz.size else 0.0,
        nnz_max=int(row_nnz.max()) if row_nnz.size else 0,
        mlp_arch=(min(300, X.n_cols), 10, 5, 2),
        mlp_sparsity_pct=100.0 * X.density,
    )
    return Dataset(name=src_name, X=X, y=y, profile=profile)


def write_libsvm(dataset: Dataset, path: str | Path | TextIO) -> None:
    """Write a dataset in LIBSVM format (1-based indices)."""
    X = dataset.as_csr()

    def _emit(fh: io.TextIOBase) -> None:
        for i in range(X.n_rows):
            idx, val = X.row(i)
            pairs = " ".join(f"{int(j) + 1}:{v:.10g}" for j, v in zip(idx, val))
            label = int(dataset.y[i]) if dataset.y[i] in (-1.0, 1.0) else dataset.y[i]
            fh.write(f"{label} {pairs}".rstrip() + "\n")

    if hasattr(path, "write"):
        _emit(path)  # type: ignore[arg-type]
    else:
        with Path(path).open("w", encoding="utf-8") as fh:
            _emit(fh)
