"""Datasets: Table I profiles, synthetic generators, LIBSVM IO, transforms."""

from .analysis import DatasetAnalysis, analyze, gini
from .libsvm import parse_libsvm_lines, read_libsvm, write_libsvm
from .profiles import DATASET_NAMES, PAPER_PROFILES, DatasetProfile, get_profile
from .ratings import RatingsDataset, generate_ratings
from .registry import (
    SCALES,
    ScaleSpec,
    clear_cache,
    load,
    load_mlp,
    scaled_profile,
    table1,
)
from .synthetic import Dataset, generate, generate_dense, generate_sparse
from .transform import group_features, mlp_dataset

__all__ = [
    "DatasetProfile",
    "PAPER_PROFILES",
    "DATASET_NAMES",
    "get_profile",
    "Dataset",
    "generate",
    "generate_sparse",
    "generate_dense",
    "RatingsDataset",
    "generate_ratings",
    "DatasetAnalysis",
    "analyze",
    "gini",
    "read_libsvm",
    "write_libsvm",
    "parse_libsvm_lines",
    "group_features",
    "mlp_dataset",
    "ScaleSpec",
    "SCALES",
    "load",
    "load_mlp",
    "scaled_profile",
    "clear_cache",
    "table1",
]
