"""Structural analysis of datasets: the statistics behind the phenomena.

Every hardware effect the paper measures traces back to a handful of
structural statistics of the data; this module computes them from any
dataset (synthetic or loaded), so users can predict where their own
data sits on the paper's axes before running anything:

* the **nnz histogram** and its dispersion — GPU warp divergence;
* the **column-popularity tail** (Gini coefficient, head frequencies) —
  Hogwild coherence conflicts;
* the **pairwise support overlap** — Cyclades schedulability;
* cache-relevant **footprints** (CSR vs dense bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg.csr import CSRMatrix
from ..utils.rng import derive_rng
from ..utils.stats import dispersion_ratio, percentile_summary
from ..utils.tables import render_table
from ..utils.units import format_bytes
from .synthetic import Dataset

__all__ = ["DatasetAnalysis", "analyze", "gini"]


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = uniform, ->1 skewed)."""
    v = np.sort(np.asarray(values, dtype=np.float64).ravel())
    v = v[v >= 0]
    if v.size == 0 or v.sum() == 0:
        return 0.0
    n = v.size
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


@dataclass(frozen=True)
class DatasetAnalysis:
    """The structural report for one dataset."""

    name: str
    n_examples: int
    n_features: int
    density: float
    nnz_summary: dict[str, float]
    nnz_dispersion: float
    popularity_gini: float
    top_feature_frequency: float
    mean_pairwise_overlap: float
    csr_bytes: int
    dense_bytes: int

    def render(self) -> str:
        """Monospace report."""
        rows = [
            ["examples", self.n_examples],
            ["features", self.n_features],
            ["density", f"{self.density:.4%}"],
            ["nnz/example (median)", self.nnz_summary["median"]],
            ["nnz/example (max)", self.nnz_summary["max"]],
            ["nnz dispersion (max/mean)", self.nnz_dispersion],
            ["feature-popularity Gini", self.popularity_gini],
            ["hottest feature doc-freq", f"{self.top_feature_frequency:.3%}"],
            ["mean pairwise overlap", f"{self.mean_pairwise_overlap:.4f}"],
            ["CSR footprint", format_bytes(self.csr_bytes)],
            ["dense footprint", format_bytes(self.dense_bytes)],
        ]
        return render_table(
            ["statistic", "value"], rows, title=f"Structure of {self.name}"
        )

    # -- axis placement (what the paper's findings predict) ----------------

    @property
    def gpu_async_divergence_risk(self) -> bool:
        """High row-length dispersion -> warp-divergence penalty."""
        return self.nnz_dispersion > 3.0

    @property
    def hogwild_conflict_risk(self) -> bool:
        """Dense data or hot features -> coherence-storm territory."""
        return self.density > 0.25 or self.top_feature_frequency > 0.10

    @property
    def cyclades_schedulable(self) -> bool:
        """Low overlap -> conflict-free batches exist."""
        return self.mean_pairwise_overlap < 0.05


def _pairwise_overlap(X: CSRMatrix, samples: int, rng) -> float:
    """Mean Jaccard-style overlap of random example pairs' supports."""
    n = X.n_rows
    if n < 2 or X.nnz == 0:
        return 0.0
    total = 0.0
    count = 0
    for _ in range(samples):
        i, j = rng.integers(0, n, size=2)
        if i == j:
            continue
        a, _ = X.row(int(i))
        b, _ = X.row(int(j))
        if a.size == 0 or b.size == 0:
            count += 1
            continue
        inter = np.intersect1d(a, b, assume_unique=True).size
        union = a.size + b.size - inter
        total += inter / union
        count += 1
    return total / max(1, count)


def analyze(dataset: Dataset, overlap_samples: int = 512, seed: int = 0) -> DatasetAnalysis:
    """Compute the structural report for *dataset*."""
    X = dataset.as_csr()
    rng = derive_rng(seed, f"analysis/{dataset.name}")
    row_nnz = X.row_nnz.astype(np.float64)
    freqs = X.column_frequencies()
    return DatasetAnalysis(
        name=dataset.name,
        n_examples=dataset.n_examples,
        n_features=dataset.n_features,
        density=dataset.density,
        nnz_summary=percentile_summary(row_nnz),
        nnz_dispersion=dispersion_ratio(row_nnz),
        popularity_gini=gini(freqs),
        top_feature_frequency=float(freqs.max()) if freqs.size else 0.0,
        mean_pairwise_overlap=_pairwise_overlap(X, overlap_samples, rng),
        csr_bytes=X.memory_bytes,
        dense_bytes=X.dense_bytes,
    )
