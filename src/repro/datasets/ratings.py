"""Synthetic rating matrices for the matrix-factorisation extension.

Generates observed ``(user, item, rating)`` triples from a ground-truth
low-rank model plus noise, with Zipf-distributed item popularity — the
skew that makes recommender Hogwild interesting (hot items' factors are
the contended cache lines, exactly as hot features are for the linear
tasks; cuMF [38] schedules around precisely this).

The triples are packed into the CSR encoding
:class:`~repro.models.matfac.MatrixFactorization` expects: one row per
observed rating with non-zeros at columns ``u`` and ``n_users + i``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..linalg.csr import CSRMatrix
from ..utils.errors import ConfigurationError
from ..utils.rng import derive_rng

__all__ = ["RatingsDataset", "generate_ratings"]


@dataclass
class RatingsDataset:
    """Observed ratings in MF-ready encoding."""

    name: str
    X: CSRMatrix
    y: np.ndarray
    n_users: int
    n_items: int
    rank: int

    @property
    def n_ratings(self) -> int:
        """Number of observed entries."""
        return self.X.n_rows

    @property
    def density(self) -> float:
        """Observed fraction of the full rating matrix."""
        return self.n_ratings / (self.n_users * self.n_items)

    def item_popularity(self) -> np.ndarray:
        """Observed ratings per item (the Hogwild conflict driver)."""
        counts = np.zeros(self.n_items, dtype=np.int64)
        for r in range(self.X.n_rows):
            idx, _ = self.X.row(r)
            counts[int(idx[1]) - self.n_users] += 1
        return counts


def generate_ratings(
    n_users: int = 400,
    n_items: int = 300,
    n_ratings: int = 8_000,
    rank: int = 6,
    noise: float = 0.1,
    zipf_exponent: float = 1.0,
    seed: int | None = None,
    name: str = "synthetic-ratings",
) -> RatingsDataset:
    """Sample a low-rank-plus-noise rating set with popularity skew.

    Ratings are ``U_u . V_i + noise`` for ground-truth factors drawn
    i.i.d. Gaussian (scaled so ratings are O(1)); users are sampled
    uniformly, items from a Zipf law.  Duplicate (user, item) pairs are
    removed, so the realised count can be slightly below *n_ratings*.
    """
    if n_users < 1 or n_items < 1:
        raise ConfigurationError("n_users and n_items must be positive")
    if n_ratings < 1:
        raise ConfigurationError("n_ratings must be positive")
    if rank < 1:
        raise ConfigurationError("rank must be >= 1")

    rng = derive_rng(seed, f"ratings/{name}")
    U = rng.standard_normal((n_users, rank)) / np.sqrt(rank)
    V = rng.standard_normal((n_items, rank)) / np.sqrt(rank)

    item_weights = np.arange(1, n_items + 1, dtype=np.float64) ** (-zipf_exponent)
    item_weights /= item_weights.sum()
    rng.shuffle(item_weights)

    # over-sample, dedupe (user, item) pairs, trim
    draws = int(n_ratings * 1.3) + 16
    users = rng.integers(0, n_users, size=draws)
    items = rng.choice(n_items, size=draws, p=item_weights)
    pairs = np.unique(users * n_items + items)
    rng.shuffle(pairs)
    pairs = pairs[:n_ratings]
    users = (pairs // n_items).astype(np.int64)
    items = (pairs % n_items).astype(np.int64)

    ratings = np.einsum("ij,ij->i", U[users], V[items])
    ratings += noise * rng.standard_normal(ratings.shape[0])

    rows = [
        (np.asarray([u, n_users + i], dtype=np.int64), np.ones(2))
        for u, i in zip(users, items)
    ]
    X = CSRMatrix.from_rows(rows, n_cols=n_users + n_items)
    return RatingsDataset(
        name=name, X=X, y=ratings, n_users=n_users, n_items=n_items, rank=rank
    )
