"""Dataset profiles: the statistical identity of the paper's Table I.

The paper evaluates on five LIBSVM datasets (covtype, w8a, real-sim,
rcv1, news20).  We cannot ship those files (and at full scale — rcv1 is
1.2 GB sparse / 256 GB dense — they exceed a laptop reproduction), so
each dataset is described by a :class:`DatasetProfile` capturing every
statistic the paper's phenomena depend on:

* example count ``n_examples`` and dimensionality ``n_features``;
* the per-example nnz distribution (min / average / max) — its *mean*
  sets the sparsity axis and its *dispersion* drives the GPU
  warp-divergence results;
* the MLP input width and architecture (Table I's last column);
* the post-feature-grouping MLP sparsity percentage.

:meth:`DatasetProfile.scaled` derives a laptop-sized instance that holds
density and nnz-dispersion fixed while shrinking row/column counts, so
every shape-level conclusion transfers (see DESIGN.md section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..utils.errors import ConfigurationError
from ..utils.units import FLOAT64_BYTES, INT32_BYTES

__all__ = ["DatasetProfile", "PAPER_PROFILES", "DATASET_NAMES", "get_profile"]


@dataclass(frozen=True)
class DatasetProfile:
    """Statistical description of one experimental dataset.

    ``nnz_min/avg/max`` describe the per-example non-zero counts; for a
    fully dense dataset all three equal ``n_features``.
    """

    name: str
    n_examples: int
    n_features: int
    nnz_min: int
    nnz_avg: float
    nnz_max: int
    mlp_arch: tuple[int, ...]
    mlp_sparsity_pct: float
    #: True when the canonical representation is dense (covtype).
    dense: bool = False
    #: Zipf exponent of the feature-popularity distribution used by the
    #: synthetic generator (text datasets are heavier-tailed).
    zipf_exponent: float = 1.1
    #: Cap on any single feature's document frequency.  A raw Zipf head
    #: over few features would give absurd frequencies (a feature in
    #: 70% of examples); real LIBSVM files have flatter heads, and the
    #: Hogwild coherence behaviour is extremely sensitive to this
    #: statistic (it sets the hot-line write rate).  ``None`` = no cap.
    head_freq_cap: float | None = None
    #: Label noise rate for the generator's ground-truth hyperplane.
    label_noise: float = 0.05

    def __post_init__(self) -> None:
        if self.n_examples <= 0 or self.n_features <= 0:
            raise ConfigurationError(f"{self.name}: sizes must be positive")
        if not (0 <= self.nnz_min <= self.nnz_avg <= self.nnz_max <= self.n_features):
            raise ConfigurationError(
                f"{self.name}: need 0 <= nnz_min <= nnz_avg <= nnz_max <= d"
            )
        if len(self.mlp_arch) < 2:
            raise ConfigurationError(f"{self.name}: MLP arch needs >= 2 layers")

    # -- Table I derived statistics -----------------------------------------

    @property
    def sparsity_pct(self) -> float:
        """nnz_avg / n_features as a percentage (Table I, LR & SVM)."""
        return 100.0 * self.nnz_avg / self.n_features

    @property
    def nnz_dispersion(self) -> float:
        """max/avg row-nnz ratio — the warp-divergence driver."""
        return self.nnz_max / max(self.nnz_avg, 1e-12)

    @property
    def total_nnz(self) -> float:
        """Expected total non-zeros."""
        return self.n_examples * self.nnz_avg

    @property
    def sparse_bytes(self) -> float:
        """Approximate CSR footprint (Table I 'size (s)')."""
        return self.total_nnz * (FLOAT64_BYTES + INT32_BYTES) + (
            (self.n_examples + 1) * 8
        )

    @property
    def dense_bytes(self) -> float:
        """Dense float64 footprint (Table I 'size (d)')."""
        return float(self.n_examples) * self.n_features * FLOAT64_BYTES

    @property
    def mlp_input_width(self) -> int:
        """Input-layer width after feature grouping (Table I)."""
        return self.mlp_arch[0]

    # -- scaling --------------------------------------------------------------

    def scaled(self, max_examples: int, max_features: int) -> "DatasetProfile":
        """Return a smaller profile preserving density and dispersion.

        Rows are capped at *max_examples*; columns at *max_features*.
        The nnz triple is rescaled with the column count so the density
        (sparsity percentage) and the max/avg dispersion ratio are
        preserved; the MLP input width is capped at the column count.
        """
        if max_examples <= 0 or max_features <= 0:
            raise ConfigurationError("scaled() caps must be positive")
        n = min(self.n_examples, max_examples)
        d = min(self.n_features, max_features)
        if d == self.n_features:
            nnz_min, nnz_avg, nnz_max = self.nnz_min, self.nnz_avg, self.nnz_max
        else:
            ratio = d / self.n_features
            nnz_avg = max(1.0, self.nnz_avg * ratio)
            nnz_min = min(int(round(self.nnz_min * ratio)), int(nnz_avg))
            nnz_max = min(d, max(int(round(nnz_avg * self.nnz_dispersion)), int(nnz_avg) + 1))
        arch = (min(self.mlp_arch[0], d),) + self.mlp_arch[1:]
        return replace(
            self,
            n_examples=n,
            n_features=d,
            nnz_min=int(nnz_min),
            nnz_avg=float(nnz_avg),
            nnz_max=int(nnz_max),
            mlp_arch=arch,
        )


def _p(
    name: str,
    n: int,
    d: int,
    nnz: tuple[int, float, int],
    arch: tuple[int, ...],
    mlp_sparsity: float,
    dense: bool = False,
    zipf: float = 1.1,
    noise: float = 0.05,
    head_cap: float | None = None,
) -> DatasetProfile:
    return DatasetProfile(
        name=name,
        n_examples=n,
        n_features=d,
        nnz_min=nnz[0],
        nnz_avg=nnz[1],
        nnz_max=nnz[2],
        mlp_arch=arch,
        mlp_sparsity_pct=mlp_sparsity,
        dense=dense,
        zipf_exponent=zipf,
        head_freq_cap=head_cap,
        label_noise=noise,
    )


#: The five datasets exactly as described in the paper's Table I.  The
#: head-frequency caps are calibration constants (DESIGN.md section 6):
#: they pin the hottest feature's document frequency to values that make
#: the coherence model land in Table III's measured band.
PAPER_PROFILES: dict[str, DatasetProfile] = {
    "covtype": _p(
        "covtype", 581_012, 54, (54, 54.0, 54), (54, 10, 5, 2), 100.0, dense=True
    ),
    "w8a": _p(
        "w8a", 64_700, 300, (0, 11.64, 114), (300, 10, 5, 2), 3.88,
        zipf=0.9, head_cap=0.15,
    ),
    "real-sim": _p(
        "real-sim", 72_309, 20_958, (1, 51.0, 3_484), (50, 10, 5, 2), 42.64,
        head_cap=0.10,
    ),
    "rcv1": _p(
        "rcv1", 677_399, 47_236, (4, 73.0, 1_224), (50, 10, 5, 2), 64.38,
        head_cap=0.10,
    ),
    "news": _p(
        "news", 19_996, 1_355_191, (1, 455.0, 16_423), (300, 10, 5, 2), 22.50,
        zipf=1.2, head_cap=0.05,
    ),
}

#: Canonical iteration order (matches the row order of Tables I-III).
DATASET_NAMES: tuple[str, ...] = ("covtype", "w8a", "real-sim", "rcv1", "news")


def get_profile(name: str) -> DatasetProfile:
    """Look up a paper dataset profile by name."""
    try:
        return PAPER_PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {sorted(PAPER_PROFILES)}"
        ) from None
