"""Dataset registry: named scales, generation caching, Table I rendering.

The experiment drivers all obtain data through :func:`load`, which maps
``(dataset name, scale, seed)`` to a generated-and-cached
:class:`~repro.datasets.synthetic.Dataset`.  Scales:

* ``"tiny"``  — unit-test sized (hundreds of rows), fast enough for
  property tests;
* ``"small"`` — the default benchmark scale (a few thousand rows) at
  which all paper phenomena are visible;
* ``"medium"``— larger sweeps for the ablation benchmarks;
* ``"paper"`` — the full Table I dimensions.  Generation works but
  needs the memory/time of a workstation; none of the shipped tests or
  benchmarks use it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.errors import ConfigurationError
from ..utils.tables import render_table
from ..utils.units import format_bytes
from .profiles import DATASET_NAMES, DatasetProfile, get_profile
from .synthetic import Dataset, generate
from .transform import mlp_dataset

__all__ = [
    "ScaleSpec",
    "SCALES",
    "load",
    "load_mlp",
    "clear_cache",
    "cache_put",
    "cache_contains",
    "cache_evict",
    "table1",
]


@dataclass(frozen=True)
class ScaleSpec:
    """Caps applied to the paper profiles at a named scale."""

    name: str
    max_examples: int
    max_features: int


SCALES: dict[str, ScaleSpec] = {
    "tiny": ScaleSpec("tiny", max_examples=256, max_features=512),
    "small": ScaleSpec("small", max_examples=3_000, max_features=6_000),
    "medium": ScaleSpec("medium", max_examples=12_000, max_features=24_000),
    "paper": ScaleSpec("paper", max_examples=1_000_000, max_features=2_000_000),
}

_CACHE: dict[tuple[str, str, int | None], Dataset] = {}
_MLP_CACHE: dict[tuple[str, str, int | None], Dataset] = {}


def scaled_profile(name: str, scale: str = "small") -> DatasetProfile:
    """The profile of *name* after applying the *scale* caps."""
    if scale not in SCALES:
        raise ConfigurationError(f"unknown scale {scale!r}; available: {sorted(SCALES)}")
    spec = SCALES[scale]
    return get_profile(name).scaled(spec.max_examples, spec.max_features)


def load(name: str, scale: str = "small", seed: int | None = None) -> Dataset:
    """Load (generate and cache) a dataset at a named scale."""
    key = (name, scale, seed)
    if key not in _CACHE:
        _CACHE[key] = generate(scaled_profile(name, scale), seed=seed)
    return _CACHE[key]


def load_mlp(name: str, scale: str = "small", seed: int | None = None) -> Dataset:
    """Load the MLP-transformed (feature-grouped, dense) variant."""
    key = (name, scale, seed)
    if key not in _MLP_CACHE:
        _MLP_CACHE[key] = mlp_dataset(load(name, scale, seed))
    return _MLP_CACHE[key]


def clear_cache() -> None:
    """Drop all cached datasets (tests use this to bound memory)."""
    _CACHE.clear()
    _MLP_CACHE.clear()


def cache_put(
    name: str, scale: str, seed: int | None, dataset: Dataset, *, mlp: bool = False
) -> None:
    """Install *dataset* under the cache key that :func:`load` would use.

    The grid executor's shared-data layer uses this to substitute
    shared-memory-backed views for locally generated arrays; every later
    :func:`load`/:func:`load_mlp` in the process then returns the view.
    """
    (_MLP_CACHE if mlp else _CACHE)[(name, scale, seed)] = dataset


def cache_contains(
    name: str, scale: str, seed: int | None, *, mlp: bool = False
) -> bool:
    """Whether a dataset is already cached under this key."""
    return (name, scale, seed) in (_MLP_CACHE if mlp else _CACHE)


def cache_evict(name: str, scale: str, seed: int | None, *, mlp: bool = False) -> None:
    """Drop one cache entry (no-op when absent).

    Shared-data teardown must evict its views *before* unlinking the
    backing segments, otherwise a later cache hit would hand out arrays
    over freed memory.
    """
    (_MLP_CACHE if mlp else _CACHE).pop((name, scale, seed), None)


def table1(scale: str = "small", seed: int | None = None) -> str:
    """Render the realised datasets in the layout of the paper's Table I."""
    headers = [
        "dataset",
        "#examples",
        "#features",
        "nnz/exp (min-max, avg)",
        "size (s/d)",
        "LR&SVM sparsity (%)",
        "MLP sparsity (%)",
        "MLP architecture",
    ]
    rows = []
    for name in DATASET_NAMES:
        ds = load(name, scale, seed)
        mlp = load_mlp(name, scale, seed)
        s = ds.summary()
        ms = mlp.summary()
        csr = ds.as_csr()
        arch = "-".join(str(w) for w in mlp.profile.mlp_arch)
        rows.append(
            [
                name,
                int(s["n_examples"]),
                int(s["n_features"]),
                f"{int(s['nnz_min'])} to {int(s['nnz_max'])} ({s['nnz_avg']:.0f})",
                f"{format_bytes(csr.memory_bytes)} / {format_bytes(csr.dense_bytes)}",
                s["sparsity_pct"],
                ms["sparsity_pct"],
                arch,
            ]
        )
    return render_table(headers, rows, title=f"Table I (scale={scale})")
