"""Distributed parameter-server backend: sharded, asynchronous, measured.

Where :mod:`repro.parallel` shares the model through one memory buffer,
this package splits it into shards owned by a server process and moves
every read and write over a length-prefixed binary TCP protocol — the
multi-node half of the paper's synchronous-vs-asynchronous question,
in the lineage of Keuper & Pfreundt's distributed ASGD and Zhao & Li's
fast-async parameter server.  A bounded-staleness gate spans the space
between the two regimes: ``max_staleness=0`` is lock-step (and, with
one worker, bit-identical to serial SGD), ``None`` is unbounded
fast-async.

Entry points: :func:`train_ps` (surfaced as
``repro.train(..., backend="ps")``), :class:`PsSchedule`,
:class:`ShardServer` for tests and tools, and the wire protocol in
:mod:`repro.distributed.protocol`.  See ``docs/DISTRIBUTED.md``.
"""

from .protocol import WireProtocolError
from .server import ShardServer, default_ps_shards, shard_bounds
from .train import PsSchedule, PsTrainResult, default_ps_nodes, train_ps

__all__ = [
    "PsSchedule",
    "PsTrainResult",
    "ShardServer",
    "WireProtocolError",
    "default_ps_nodes",
    "default_ps_shards",
    "shard_bounds",
    "train_ps",
]
