"""Distributed parameter-server backend: sharded, asynchronous, measured.

Where :mod:`repro.parallel` shares the model through one memory buffer,
this package splits it into shards owned by a server process and moves
every read and write over a length-prefixed binary TCP protocol — the
multi-node half of the paper's synchronous-vs-asynchronous question,
in the lineage of Keuper & Pfreundt's distributed ASGD and Zhao & Li's
fast-async parameter server.  A bounded-staleness gate spans the space
between the two regimes: ``max_staleness=0`` is lock-step (and, with
one worker, bit-identical to serial SGD), ``None`` is unbounded
fast-async.

The tier survives its own server: :class:`CheckpointPolicy` makes the
:class:`ShardServer` persist atomic versioned shard snapshots,
:class:`RemoteServerHandle` supervises a server in its own process and
answers a crash (``server-kill``) or wedge (``server-stall``) with
checkpoint-restore failover, and the workers heal dropped, delayed or
CRC-rejected frames (:class:`~repro.distributed.lossy.FaultyWire`) by
reconnect-and-resume.

Entry points: :func:`train_ps` (surfaced as
``repro.train(..., backend="ps")``), :class:`PsSchedule`,
:class:`ShardServer` for tests and tools, and the wire protocol in
:mod:`repro.distributed.protocol`.  See ``docs/DISTRIBUTED.md``.
"""

from .checkpoint import (
    CheckpointError,
    CheckpointPolicy,
    CheckpointState,
    load_latest,
    read_checkpoint,
    write_checkpoint,
)
from .lossy import WIRE_FAULT_IDENTS, FaultyWire
from .protocol import WireProtocolError
from .server import ShardServer, default_ps_shards, shard_bounds
from .supervisor import LocalServerHandle, RemoteServerHandle
from .train import PsSchedule, PsTrainResult, default_ps_nodes, train_ps

__all__ = [
    "CheckpointError",
    "CheckpointPolicy",
    "CheckpointState",
    "FaultyWire",
    "LocalServerHandle",
    "PsSchedule",
    "PsTrainResult",
    "RemoteServerHandle",
    "ShardServer",
    "WIRE_FAULT_IDENTS",
    "WireProtocolError",
    "default_ps_nodes",
    "default_ps_shards",
    "shard_bounds",
    "train_ps",
    "load_latest",
    "read_checkpoint",
    "write_checkpoint",
]
