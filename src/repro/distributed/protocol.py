"""Length-prefixed binary wire protocol of the parameter-server tier.

Unlike the serving path's newline-delimited JSON (one human-readable
line per request, see :mod:`repro.serving.service`), the training tier
moves raw float64 shard payloads — text framing would double the bytes
and dominate the hot loop with parsing.  Every message is one frame::

    +-------+------+--------+-------------+--------+===========+
    | magic | type | ident  | payload_len | clock  |  payload  |
    |  u8   |  u8  |  u16   |     u32     |  u64   |   bytes   |
    +-------+------+--------+-------------+--------+===========+

(big-endian, 16-byte header).  ``ident`` is a small type-specific slot
— the shard id for PULL/SHARD, the worker id for HELLO, the row count
for PUSH — and ``clock`` carries the message's logical time: the
worker's completed-work-item counter on PULL/PUSH, the shard's version
on SHARD, the epoch on EPOCH_DONE/EPOCH_ACK.  Framing is explicit and
checked: a bad magic byte, an oversized payload or an EOF inside a
frame raises :class:`WireProtocolError` — the failure mode the serving
protocol's ``readline`` cap handled implicitly (and, before this PR,
incorrectly).

Message types
-------------
``HELLO`` (worker -> server)
    Register ``ident`` as this connection's worker id.  Answered by
    ``HELLO_ACK`` whose payload is ``(n_params u64, n_shards u16,
    max_staleness i32)`` (-1 = unbounded).
``PULL`` (worker -> server)
    Request shard ``ident``; ``clock`` is the worker's completed-item
    count, which the bounded-staleness gate compares against the
    slowest live worker before answering.  Answered by ``SHARD``
    carrying the shard's float64 parameters and its version.
``PUSH`` (worker -> server, no ack)
    Apply one work item's delta; ``ident`` is the item's row count,
    ``clock`` the worker's item counter *after* the item.  The payload
    is either sparse (``0x00 | n u32 | indices i64[n] | values
    f64[n]``, global coordinates) or dense (``0x01 | values f64[d]``).
``EPOCH_DONE`` (worker -> server)
    The worker finished epoch ``clock``; the reply (``EPOCH_ACK``,
    sent only once the parent releases the next epoch) doubles as the
    epoch barrier.  ``ident`` of the ack is 1 when the run is over.
``FAULT`` (worker -> server, no ack)
    A planned fault is about to fire (``ident``: 1 kill, 2 stall) —
    counted server-side before the worker dies or wedges.
``BYE`` (worker -> server, no ack)
    Clean disconnect; suppresses the dead-worker reap accounting.
"""

from __future__ import annotations

import socket
import struct

import numpy as np

from ..utils.errors import DataFormatError

__all__ = [
    "MAGIC",
    "MAX_FRAME_BYTES",
    "MSG_HELLO",
    "MSG_HELLO_ACK",
    "MSG_PULL",
    "MSG_SHARD",
    "MSG_PUSH",
    "MSG_EPOCH_DONE",
    "MSG_EPOCH_ACK",
    "MSG_FAULT",
    "MSG_BYE",
    "WireProtocolError",
    "Frame",
    "send_frame",
    "recv_frame",
    "pack_hello_ack",
    "unpack_hello_ack",
    "pack_push",
    "unpack_push",
]

#: First byte of every frame; a connection speaking anything else
#: (an HTTP probe, a JSON client on the wrong port) fails fast.
MAGIC = 0xB5

#: Guard on one frame's payload — far above any real shard (a 2M-param
#: model is 16 MB), small enough to reject unframed garbage promptly.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct("!BBHIQ")  # magic, type, ident, payload_len, clock
_HELLO_ACK = struct.Struct("!QHi")  # n_params, n_shards, max_staleness

MSG_HELLO = 1
MSG_HELLO_ACK = 2
MSG_PULL = 3
MSG_SHARD = 4
MSG_PUSH = 5
MSG_EPOCH_DONE = 6
MSG_EPOCH_ACK = 7
MSG_FAULT = 8
MSG_BYE = 9

_KNOWN_TYPES = frozenset(range(MSG_HELLO, MSG_BYE + 1))


class WireProtocolError(DataFormatError):
    """A malformed frame on the parameter-server wire."""


class Frame:
    """One decoded message (header fields + raw payload)."""

    __slots__ = ("msg_type", "ident", "clock", "payload", "nbytes")

    def __init__(
        self, msg_type: int, ident: int, clock: int, payload: bytes, nbytes: int
    ) -> None:
        self.msg_type = msg_type
        self.ident = ident
        self.clock = clock
        self.payload = payload
        #: Total wire bytes of the frame (header + payload), for the
        #: ``ps.bytes_*`` accounting.
        self.nbytes = nbytes


def send_frame(
    sock: socket.socket,
    msg_type: int,
    *,
    ident: int = 0,
    clock: int = 0,
    payload: bytes = b"",
) -> int:
    """Write one frame; returns the bytes put on the wire."""
    buf = _HEADER.pack(MAGIC, msg_type, ident, len(payload), clock) + payload
    sock.sendall(buf)
    return len(buf)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly *n* bytes; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise WireProtocolError(
                f"connection closed mid-frame ({got} of {n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Frame | None:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    head = _recv_exact(sock, _HEADER.size)
    if head is None:
        return None
    magic, msg_type, ident, length, clock = _HEADER.unpack(head)
    if magic != MAGIC:
        raise WireProtocolError(
            f"bad magic byte 0x{magic:02x} (expected 0x{MAGIC:02x}); "
            "peer is not speaking the parameter-server protocol"
        )
    if msg_type not in _KNOWN_TYPES:
        raise WireProtocolError(f"unknown message type {msg_type}")
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame payload of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    payload = _recv_exact(sock, length) if length else b""
    if length and payload is None:
        raise WireProtocolError("connection closed before the frame payload")
    return Frame(msg_type, ident, clock, payload or b"", _HEADER.size + length)


# -- typed payload helpers --------------------------------------------------


def pack_hello_ack(n_params: int, n_shards: int, max_staleness: int | None) -> bytes:
    return _HELLO_ACK.pack(
        n_params, n_shards, -1 if max_staleness is None else max_staleness
    )


def unpack_hello_ack(payload: bytes) -> tuple[int, int, int | None]:
    n_params, n_shards, staleness = _HELLO_ACK.unpack(payload)
    return n_params, n_shards, None if staleness < 0 else staleness


def pack_push(
    indices: np.ndarray | None, values: np.ndarray
) -> bytes:
    """Encode one delta: sparse ``(indices, values)`` or dense ``values``."""
    if indices is None:
        return b"\x01" + np.ascontiguousarray(values, dtype=np.float64).tobytes()
    idx = np.ascontiguousarray(indices, dtype=np.int64)
    val = np.ascontiguousarray(values, dtype=np.float64)
    return b"\x00" + struct.pack("!I", idx.shape[0]) + idx.tobytes() + val.tobytes()


def unpack_push(payload: bytes) -> tuple[np.ndarray | None, np.ndarray]:
    """Decode a PUSH payload back into ``(indices | None, values)``."""
    if not payload:
        raise WireProtocolError("empty PUSH payload")
    flag = payload[0]
    body = payload[1:]
    if flag == 0x01:
        if len(body) % 8:
            raise WireProtocolError("dense PUSH payload is not float64-aligned")
        return None, np.frombuffer(body, dtype=np.float64)
    if flag != 0x00:
        raise WireProtocolError(f"unknown PUSH flag 0x{flag:02x}")
    if len(body) < 4:
        raise WireProtocolError("truncated sparse PUSH payload")
    (n,) = struct.unpack("!I", body[:4])
    need = 4 + n * 8 + n * 8
    if len(body) != need:
        raise WireProtocolError(
            f"sparse PUSH payload of {len(body)} bytes does not match "
            f"its {n}-entry header (expected {need})"
        )
    idx = np.frombuffer(body[4 : 4 + n * 8], dtype=np.int64)
    val = np.frombuffer(body[4 + n * 8 :], dtype=np.float64)
    return idx, val
