"""Length-prefixed binary wire protocol of the parameter-server tier.

Unlike the serving path's newline-delimited JSON (one human-readable
line per request, see :mod:`repro.serving.service`), the training tier
moves raw float64 shard payloads — text framing would double the bytes
and dominate the hot loop with parsing.  Every message is one frame::

    +-------+------+--------+-------------+--------+-------+===========+
    | magic | type | ident  | payload_len | clock  |  crc  |  payload  |
    |  u8   |  u8  |  u16   |     u32     |  u64   |  u32  |   bytes   |
    +-------+------+--------+-------------+--------+-------+===========+

(big-endian, 20-byte header).  ``ident`` is a small type-specific slot
— the shard id for PULL/SHARD, the worker id for HELLO, the row count
for PUSH — and ``clock`` carries the message's logical time: the
worker's completed-work-item counter on PULL/PUSH, the shard's version
on SHARD, the epoch on EPOCH_DONE/EPOCH_ACK.  ``crc`` is the CRC32 of
the 16 header bytes before it plus the entire payload: a flipped bit
anywhere in the frame is *detected and rejected* as a structured
:class:`WireProtocolError`, never decoded as garbage floats — a
corrupted push can therefore never be silently applied; the receiver
drops the connection and the sender heals by reconnect-and-replay.
Framing is explicit and checked: a bad magic byte, an oversized
payload, a checksum mismatch or an EOF inside a frame raises
:class:`WireProtocolError` — the failure mode the serving protocol's
``readline`` cap handled implicitly (and, before this PR, incorrectly).

Message types
-------------
``HELLO`` (worker -> server)
    Register ``ident`` as this connection's worker id.  An optional
    1-byte payload carries flags — bit 0 set means this is a *mid-run
    reconnect* (a live worker healing a dropped wire, counted under
    ``ps.reconnects_midrun``), empty means a fresh registration.
    Answered by ``HELLO_ACK`` whose payload is ``(n_params u64,
    n_shards u16, max_staleness i32, resume_clock u64)`` (-1 =
    unbounded); ``resume_clock`` is the last work-item clock the server
    holds for this worker id (0 for a fresh registration) — a
    reconnecting worker rewinds to it and replays from there, so the
    in-flight item whose push never landed is recomputed, never lost.
``PULL`` (worker -> server)
    Request shard ``ident``; ``clock`` is the worker's completed-item
    count, which the bounded-staleness gate compares against the
    slowest live worker before answering.  Answered by ``SHARD``
    carrying the shard's float64 parameters and its version.  Legacy
    single-shard path — the training loop uses ``PULL_ALL`` /
    ``PUSH_PULL`` so one work item costs one round-trip, not one per
    shard.
``PULL_ALL`` (worker -> server)
    Request *every* shard in a single round-trip.  The payload is the
    worker's last-seen version vector (:func:`pack_versions`); the
    server answers with one ``SHARDS`` frame in which any shard whose
    version still matches is a tiny cached header instead of its
    payload.  ``clock`` feeds the staleness gate exactly like PULL.
``SHARDS`` (server -> worker)
    The scatter-gathered multi-shard reply to ``PULL_ALL`` or
    ``PUSH_PULL``: per shard a ``(cached?, version)`` header, followed
    by the float64 payload only when the worker's cached copy is out
    of date (:func:`pack_shard_entries` / :func:`unpack_shards`).
``PUSH`` (worker -> server, no ack)
    Apply one work item's delta; ``ident`` is the item's row count,
    ``clock`` the worker's item counter *after* the item.  The payload
    is sparse (``0x00 | n u32 | indices i64[n] | values f64[n]``,
    global coordinates), dense (``0x01 | values f64[d]``), or the
    1-byte empty marker ``0x02`` (no row produced a delta — the clock
    still advances, no shard version moves).
``PUSH_PULL`` (worker -> server)
    The fused steady-state frame: the push of work item *k* and the
    pull for item *k+1* share one round-trip.  Payload is
    ``push_len u32 | push payload | version vector``; the server
    applies the push first (preserving the ordered-stream guarantee
    that keeps one node at ``max_staleness=0`` bit-exact against
    serial SGD), then answers with ``SHARDS``.
``EPOCH_DONE`` (worker -> server)
    The worker finished epoch ``clock``; the reply (``EPOCH_ACK``,
    sent only once the parent releases the next epoch) doubles as the
    epoch barrier.  ``ident`` of the ack is 1 when the run is over.
``FAULT`` (worker -> server, no ack)
    A planned fault is about to fire (``ident``: 1 kill, 2 stall) —
    counted server-side before the worker dies or wedges.
``BYE`` (worker -> server, no ack)
    Clean disconnect; suppresses the dead-worker reap accounting.

Control plane (parent -> server)
--------------------------------
When the shard server runs in its own *process* (crash-restart
failover mode), the training parent speaks to it over the same framed
wire on a dedicated connection — no HELLO, no registration, and none
of these frames participate in the ``ps.bytes_*`` accounting (they are
supervision, not training traffic):

``CTRL_STATUS``
    Liveness probe + state poll; answered with a JSON payload carrying
    the worker registry (clocks, epochs done), counters, and the
    released epoch.  A probe that times out is the parent's signal to
    declare the server dead and fail over.
``CTRL_RELEASE``
    ``release_epoch(clock, stop=bool(ident))``; acked.
``CTRL_SNAPSHOT``
    Answered with the raw float64 model (a consistent copy under all
    shard locks).
``CTRL_WRITE``
    Overwrite the model with the raw float64 payload (NaN scrub);
    acked.
``CTRL_RESET``
    ``reset_pool(expected_workers=ident)``; acked.
``CTRL_CHECKPOINT``
    Force an epoch-boundary checkpoint now; the ack's ``ident`` is 1
    if a file was written (0 when checkpointing is not configured).
``CTRL_SHUTDOWN``
    Ack, then close the server and exit the process cleanly.
"""

from __future__ import annotations

import socket
import struct
import zlib

import numpy as np

from ..utils.errors import DataFormatError

__all__ = [
    "MAGIC",
    "MAX_FRAME_BYTES",
    "VERSION_NEVER",
    "HEADER_BYTES",
    "HELLO_MIDRUN",
    "MSG_HELLO",
    "MSG_HELLO_ACK",
    "MSG_PULL",
    "MSG_SHARD",
    "MSG_PUSH",
    "MSG_EPOCH_DONE",
    "MSG_EPOCH_ACK",
    "MSG_FAULT",
    "MSG_BYE",
    "MSG_PULL_ALL",
    "MSG_SHARDS",
    "MSG_PUSH_PULL",
    "MSG_CTRL_STATUS",
    "MSG_CTRL_RELEASE",
    "MSG_CTRL_SNAPSHOT",
    "MSG_CTRL_WRITE",
    "MSG_CTRL_RESET",
    "MSG_CTRL_CHECKPOINT",
    "MSG_CTRL_SHUTDOWN",
    "CTRL_TYPES",
    "WireProtocolError",
    "Frame",
    "pack_frame",
    "send_frame",
    "send_frame_parts",
    "recv_frame",
    "pack_hello_ack",
    "unpack_hello_ack",
    "pack_push",
    "pack_push_empty",
    "unpack_push",
    "pack_versions",
    "unpack_versions",
    "pack_shard_entries",
    "unpack_shards",
    "pack_push_pull",
    "unpack_push_pull",
]

#: First byte of every frame; a connection speaking anything else
#: (an HTTP probe, a JSON client on the wrong port) fails fast.
MAGIC = 0xB5

#: Guard on one frame's payload — far above any real shard (a 2M-param
#: model is 16 MB), small enough to reject unframed garbage promptly.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: A worker that has never seen a shard sends this version; no server
#: version can ever equal it (counters start at 0 and only increment),
#: so the first pull after HELLO — or after a recovery respawn — is
#: always answered with the full payload.
VERSION_NEVER = 0xFFFFFFFFFFFFFFFF

_HEAD_FIELDS = struct.Struct("!BBHIQ")  # magic, type, ident, payload_len, clock
_HEAD_CRC = struct.Struct("!I")  # CRC32 over the fields above + payload
_HELLO_ACK = struct.Struct("!QHiQ")  # n_params, n_shards, max_staleness, resume
_VERSIONS_HEAD = struct.Struct("!H")  # shard count, then u64 versions
_SHARD_ENTRY = struct.Struct("!BQ")  # cached flag, version
_PUSH_LEN = struct.Struct("!I")  # push-payload bytes inside PUSH_PULL

#: Total frame-header bytes on the wire (field prefix + CRC32).
HEADER_BYTES = _HEAD_FIELDS.size + _HEAD_CRC.size

#: HELLO payload flag bit: this registration is a live worker healing
#: its own dropped connection mid-run (counted as a mid-run reconnect;
#: the HELLO_ACK answers with the worker's resume clock).
HELLO_MIDRUN = 0x01

MSG_HELLO = 1
MSG_HELLO_ACK = 2
MSG_PULL = 3
MSG_SHARD = 4
MSG_PUSH = 5
MSG_EPOCH_DONE = 6
MSG_EPOCH_ACK = 7
MSG_FAULT = 8
MSG_BYE = 9
MSG_PULL_ALL = 10
MSG_SHARDS = 11
MSG_PUSH_PULL = 12
MSG_CTRL_STATUS = 13
MSG_CTRL_RELEASE = 14
MSG_CTRL_SNAPSHOT = 15
MSG_CTRL_WRITE = 16
MSG_CTRL_RESET = 17
MSG_CTRL_CHECKPOINT = 18
MSG_CTRL_SHUTDOWN = 19

#: The parent-supervisor control plane (needs no HELLO registration and
#: stays out of the ``ps.bytes_*`` training-traffic accounting).
CTRL_TYPES = frozenset(range(MSG_CTRL_STATUS, MSG_CTRL_SHUTDOWN + 1))

_KNOWN_TYPES = frozenset(range(MSG_HELLO, MSG_CTRL_SHUTDOWN + 1))


class WireProtocolError(DataFormatError):
    """A malformed frame on the parameter-server wire."""


class Frame:
    """One decoded message (header fields + raw payload)."""

    __slots__ = ("msg_type", "ident", "clock", "payload", "nbytes")

    def __init__(
        self, msg_type: int, ident: int, clock: int, payload: bytes, nbytes: int
    ) -> None:
        self.msg_type = msg_type
        self.ident = ident
        self.clock = clock
        self.payload = payload
        #: Total wire bytes of the frame (header + payload), for the
        #: ``ps.bytes_*`` accounting.
        self.nbytes = nbytes


def pack_frame(
    msg_type: int, *, ident: int = 0, clock: int = 0, payload: bytes = b""
) -> bytes:
    """Encode one complete frame (checksummed header + payload)."""
    fields = _HEAD_FIELDS.pack(MAGIC, msg_type, ident, len(payload), clock)
    crc = zlib.crc32(payload, zlib.crc32(fields))
    return fields + _HEAD_CRC.pack(crc) + payload


def send_frame(
    sock: socket.socket,
    msg_type: int,
    *,
    ident: int = 0,
    clock: int = 0,
    payload: bytes = b"",
) -> int:
    """Write one frame; returns the bytes put on the wire."""
    buf = pack_frame(msg_type, ident=ident, clock=clock, payload=payload)
    sock.sendall(buf)
    return len(buf)


def send_frame_parts(
    sock: socket.socket,
    msg_type: int,
    parts: list[bytes],
    *,
    ident: int = 0,
    clock: int = 0,
) -> int:
    """Write one frame whose payload is scattered over *parts*.

    The multi-shard reply is assembled as a list of small headers and
    (borrowed, zero-copy) shard buffers; ``sendmsg`` gathers them in
    one syscall instead of concatenating megabytes first.  The CRC is
    accumulated incrementally over the parts, so the gather path pays
    one extra pass over the bytes but still never copies them.
    Returns the bytes put on the wire.
    """
    total = sum(len(p) for p in parts)
    fields = _HEAD_FIELDS.pack(MAGIC, msg_type, ident, total, clock)
    crc = zlib.crc32(fields)
    for p in parts:
        crc = zlib.crc32(p, crc)
    header = fields + _HEAD_CRC.pack(crc)
    nbytes = HEADER_BYTES + total
    buffers: list[memoryview] = [memoryview(header)]
    buffers.extend(memoryview(p) for p in parts)
    sent = 0
    while sent < nbytes:
        n = sock.sendmsg(buffers)
        sent += n
        if sent >= nbytes:
            break
        # A partial gather write: drop the fully-written buffers and
        # trim the one the kernel stopped inside.
        while n:
            if n >= len(buffers[0]):
                n -= len(buffers[0])
                buffers.pop(0)
            else:
                buffers[0] = buffers[0][n:]
                n = 0
    return nbytes


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly *n* bytes; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise WireProtocolError(
                f"connection closed mid-frame ({got} of {n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Frame | None:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    Validation order: magic, type, size cap (all from the plain header
    fields — cheap rejects for peers not speaking the protocol at
    all), then the payload read, then the CRC over header fields +
    payload.  Only a checksum-clean frame is ever handed to a decoder,
    so a corrupted push is *rejected*, never applied as garbage floats.
    """
    head = _recv_exact(sock, HEADER_BYTES)
    if head is None:
        return None
    magic, msg_type, ident, length, clock = _HEAD_FIELDS.unpack_from(head)
    (crc,) = _HEAD_CRC.unpack_from(head, _HEAD_FIELDS.size)
    if magic != MAGIC:
        raise WireProtocolError(
            f"bad magic byte 0x{magic:02x} (expected 0x{MAGIC:02x}); "
            "peer is not speaking the parameter-server protocol"
        )
    if msg_type not in _KNOWN_TYPES:
        raise WireProtocolError(f"unknown message type {msg_type}")
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame payload of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    payload = _recv_exact(sock, length) if length else b""
    if length and payload is None:
        raise WireProtocolError("connection closed before the frame payload")
    payload = payload or b""
    want = zlib.crc32(payload, zlib.crc32(head[: _HEAD_FIELDS.size]))
    if crc != want:
        raise WireProtocolError(
            f"frame checksum mismatch (type {msg_type}, {length}-byte "
            f"payload): got 0x{crc:08x}, computed 0x{want:08x} — frame "
            "rejected, not applied"
        )
    return Frame(msg_type, ident, clock, payload, HEADER_BYTES + length)


# -- typed payload helpers --------------------------------------------------


def pack_hello_ack(
    n_params: int,
    n_shards: int,
    max_staleness: int | None,
    resume_clock: int = 0,
) -> bytes:
    """Encode the registration ack.

    *resume_clock* is the last work-item clock the server holds for
    the registering worker id — 0 for a fresh registration, the
    worker's rolled-back position after a mid-run reconnect (the
    worker rewinds its epoch pass to it and replays forward).
    """
    return _HELLO_ACK.pack(
        n_params,
        n_shards,
        -1 if max_staleness is None else max_staleness,
        resume_clock,
    )


def unpack_hello_ack(payload: bytes) -> tuple[int, int, int | None, int]:
    if len(payload) != _HELLO_ACK.size:
        raise WireProtocolError(
            f"HELLO_ACK payload of {len(payload)} bytes "
            f"(expected {_HELLO_ACK.size})"
        )
    n_params, n_shards, staleness, resume = _HELLO_ACK.unpack(payload)
    return n_params, n_shards, None if staleness < 0 else staleness, resume


def pack_push(
    indices: np.ndarray | None, values: np.ndarray
) -> bytes:
    """Encode one delta: sparse ``(indices, values)`` or dense ``values``."""
    if indices is None:
        return b"\x01" + np.ascontiguousarray(values, dtype=np.float64).tobytes()
    idx = np.ascontiguousarray(indices, dtype=np.int64)
    val = np.ascontiguousarray(values, dtype=np.float64)
    return b"\x00" + struct.pack("!I", idx.shape[0]) + idx.tobytes() + val.tobytes()


def pack_push_empty() -> bytes:
    """Encode a delta-free work item (every row's ``coef`` was 0).

    One marker byte instead of a full ``n_params`` zero vector: the
    push still travels — the worker's clock must advance and the row
    accounting stay exact — but no shard version moves and no payload
    bytes are wasted.
    """
    return b"\x02"


def unpack_push(payload: bytes) -> tuple[np.ndarray | None, np.ndarray]:
    """Decode a PUSH payload back into ``(indices | None, values)``.

    An empty-delta marker decodes as a zero-length sparse pair, which
    the server's apply loop treats as a no-op.
    """
    if not payload:
        raise WireProtocolError("empty PUSH payload")
    flag = payload[0]
    body = payload[1:]
    if flag == 0x02:
        if body:
            raise WireProtocolError(
                f"empty-delta PUSH carries {len(body)} payload byte(s)"
            )
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    if flag == 0x01:
        if len(body) % 8:
            raise WireProtocolError("dense PUSH payload is not float64-aligned")
        return None, np.frombuffer(body, dtype=np.float64)
    if flag != 0x00:
        raise WireProtocolError(f"unknown PUSH flag 0x{flag:02x}")
    if len(body) < 4:
        raise WireProtocolError("truncated sparse PUSH payload")
    (n,) = struct.unpack("!I", body[:4])
    need = 4 + n * 8 + n * 8
    if len(body) != need:
        raise WireProtocolError(
            f"sparse PUSH payload of {len(body)} bytes does not match "
            f"its {n}-entry header (expected {need})"
        )
    idx = np.frombuffer(body[4 : 4 + n * 8], dtype=np.int64)
    val = np.frombuffer(body[4 + n * 8 :], dtype=np.float64)
    return idx, val


# -- versioned multi-shard payloads -----------------------------------------


def pack_versions(versions) -> bytes:
    """Encode a per-shard version vector (u16 count + u64 versions)."""
    versions = list(versions)
    return _VERSIONS_HEAD.pack(len(versions)) + struct.pack(
        f"!{len(versions)}Q", *versions
    )


def unpack_versions(payload: bytes) -> list[int]:
    """Decode a version vector; validates the count against the bytes."""
    if len(payload) < _VERSIONS_HEAD.size:
        raise WireProtocolError("truncated version vector")
    (n,) = _VERSIONS_HEAD.unpack_from(payload)
    need = _VERSIONS_HEAD.size + 8 * n
    if len(payload) != need:
        raise WireProtocolError(
            f"version vector of {len(payload)} bytes does not match its "
            f"{n}-entry header (expected {need})"
        )
    return list(struct.unpack_from(f"!{n}Q", payload, _VERSIONS_HEAD.size))


def pack_shard_entries(
    entries: list[tuple[int, bytes | None]],
) -> list[bytes]:
    """Encode a SHARDS reply as scatter-gather *parts*.

    *entries* holds one ``(version, payload | None)`` per shard, in
    shard order; ``None`` means the worker's cached copy at that
    version is still current and only the 9-byte header ships.  Fresh
    payloads carry no length field — both ends know every shard's byte
    size from the HELLO_ACK shard layout.  The shard payloads are
    borrowed, not copied — hand the list to :func:`send_frame_parts`.
    """
    parts: list[bytes] = [_VERSIONS_HEAD.pack(len(entries))]
    for version, payload in entries:
        if payload is None:
            parts.append(_SHARD_ENTRY.pack(1, version))
        else:
            parts.append(_SHARD_ENTRY.pack(0, version))
            parts.append(payload)
    return parts


def unpack_shards(
    payload: bytes, sizes: list[int]
) -> list[tuple[int, bytes | None]]:
    """Decode a SHARDS payload into ``(version, payload | None)`` entries.

    *sizes* is the expected byte length of each shard's fresh payload
    (``(hi - lo) * 8`` from the shard layout); the wire carries no
    per-shard length, so the caller's layout is the decode schema —
    a count or size mismatch raises :class:`WireProtocolError`.
    """
    if len(payload) < _VERSIONS_HEAD.size:
        raise WireProtocolError("truncated SHARDS payload")
    (n,) = _VERSIONS_HEAD.unpack_from(payload)
    if n != len(sizes):
        raise WireProtocolError(
            f"SHARDS reply with {n} entries against {len(sizes)} shard(s)"
        )
    entries: list[tuple[int, bytes | None]] = []
    off = _VERSIONS_HEAD.size
    for size in sizes:
        if len(payload) < off + _SHARD_ENTRY.size:
            raise WireProtocolError("SHARDS payload ends inside a shard header")
        cached, version = _SHARD_ENTRY.unpack_from(payload, off)
        off += _SHARD_ENTRY.size
        if cached == 1:
            entries.append((version, None))
            continue
        if cached != 0:
            raise WireProtocolError(f"unknown SHARDS cache flag 0x{cached:02x}")
        if len(payload) < off + size:
            raise WireProtocolError(
                f"SHARDS shard payload truncated ({len(payload) - off} of "
                f"{size} bytes)"
            )
        entries.append((version, payload[off : off + size]))
        off += size
    if off != len(payload):
        raise WireProtocolError(
            f"{len(payload) - off} trailing byte(s) after the last shard"
        )
    return entries


def pack_push_pull(push_payload: bytes, versions) -> bytes:
    """Encode the fused frame: item *k*'s push + item *k+1*'s pull."""
    return _PUSH_LEN.pack(len(push_payload)) + push_payload + pack_versions(versions)


def unpack_push_pull(payload: bytes) -> tuple[bytes, list[int]]:
    """Decode a PUSH_PULL payload into ``(push payload, version vector)``."""
    if len(payload) < _PUSH_LEN.size:
        raise WireProtocolError("truncated PUSH_PULL payload")
    (push_len,) = _PUSH_LEN.unpack_from(payload)
    body = payload[_PUSH_LEN.size :]
    if len(body) < push_len:
        raise WireProtocolError(
            f"PUSH_PULL push payload truncated ({len(body)} of {push_len} bytes)"
        )
    return body[:push_len], unpack_versions(body[push_len:])
