"""Crash-restart supervision of the shard server.

The parameter-server tier used to have exactly one unsurvivable
component: the server itself.  This module removes that asymmetry by
giving the training parent a *handle* abstraction over the server with
two implementations:

:class:`LocalServerHandle`
    The default: the :class:`~repro.distributed.server.ShardServer`
    lives in the parent process, every control call is a method call.
    Zero overhead, zero new failure modes — the regime every previous
    run used, unchanged.

:class:`RemoteServerHandle`
    The server runs in its **own process** (:func:`server_main`) and
    the parent supervises it over the framed control plane
    (``CTRL_*`` messages on a dedicated connection).  Every control
    round-trip doubles as a liveness probe: a server that crashed
    (``server-kill``, a real ``SIGKILL``) drops the control socket, a
    server that wedged (``server-stall``) times the probe out — both
    surface as one structured
    :class:`~repro.utils.errors.ServerDiedError`, and the parent's
    answer to both is the same **crash-restart failover**: respawn a
    fresh server seeded from the newest valid checkpoint
    (:meth:`RemoteServerHandle.respawn`), publish the new port through
    the shared cell every worker re-reads on redial, and let the
    workers heal themselves via mid-run reconnect.

Counters survive the crash by *folding*: the handle keeps the last
state snapshot from its ~100 ms status polls, and on respawn folds the
dead generation's last-seen counters into an accumulated base — so
``ps.pushes`` et al. in the final manifest cover every generation,
minus at most one poll interval of a killed server (best effort by
construction: SIGKILL flushes nothing).

The handle also measures **time-to-repair**: the wall seconds from
failover detection to the first post-respawn push observed by a status
poll — the paper-shaped robustness metric the bench snapshot records
(``ps.time_to_repair_seconds``).
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Sequence

import numpy as np

from ..telemetry import keys
from ..utils.errors import ConfigurationError, ServerDiedError
from . import protocol as wire
from .checkpoint import CheckpointPolicy, load_latest
from .server import ShardServer

__all__ = ["LocalServerHandle", "RemoteServerHandle", "server_main"]

#: Seconds the parent grants the child to report its listening address.
_SPAWN_TIMEOUT = 30.0


def server_main(
    conn,
    init_params: np.ndarray,
    shards: int,
    max_staleness: int | None,
    expected_workers: int,
    checkpoint: CheckpointPolicy | None,
    server_faults: Sequence[dict],
    pushes_per_epoch: int | None,
    restore: bool,
) -> None:
    """Entry point of the standalone shard-server process.

    With *restore* set, the newest valid checkpoint in the policy's
    directory seeds the server (model, shard versions, released epoch,
    per-worker resume clocks); without one — or when no checkpoint
    exists yet, e.g. a crash before the first write — the server
    starts from *init_params*, which is still consistent: a clock-zero
    model is exactly the state after zero applied items.

    The listening ``(host, port)`` is reported through *conn* (the
    parent's spawn handshake), then the process serves until a
    ``CTRL_SHUTDOWN`` frame sets the shutdown event.
    """
    state = None
    if restore and checkpoint is not None:
        state = load_latest(checkpoint.dir)
    server = ShardServer(
        init_params,
        shards,
        max_staleness=max_staleness,
        expected_workers=expected_workers,
        checkpoint=checkpoint,
        restore=state,
        server_faults=server_faults,
        pushes_per_epoch=pushes_per_epoch,
        standalone=True,
    )
    try:
        conn.send((server.host, server.port))
        conn.close()
        while not server.shutdown_event.wait(0.2):
            pass
    finally:
        server.close()


class LocalServerHandle:
    """The in-process server behind the handle surface (the default)."""

    def __init__(self, server: ShardServer) -> None:
        self.server = server

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def epoch_reached(self, epoch: int) -> bool:
        return self.server.epoch_reached(epoch)

    def wait_epoch_tick(self, timeout: float) -> None:
        self.server.wait_epoch_tick(timeout)

    def release_epoch(self, epoch: int, *, stop: bool = False) -> None:
        self.server.release_epoch(epoch, stop=stop)

    def reset_pool(self, expected_workers: int) -> None:
        self.server.reset_pool(expected_workers)

    def snapshot(self) -> np.ndarray:
        return self.server.snapshot()

    def write_params(self, params: np.ndarray) -> None:
        self.server.write_params(params)

    def checkpoint_boundary(self) -> bool:
        """Force an epoch-boundary checkpoint; False = not configured."""
        return self.server.checkpoint_now(boundary=True) is not None

    def describe(self) -> dict[str, Any]:
        return self.server.describe()

    def counters(self) -> dict[str, float]:
        return dict(self.server.counters)

    @property
    def faults_reported(self) -> int:
        return self.server.faults_reported

    def close(self) -> None:
        self.server.close()


class RemoteServerHandle:
    """Supervise a shard server living in its own process.

    Control calls ride the framed wire to the child; any control
    failure — dropped socket, dead process, probe timeout — marks the
    generation dead and raises :class:`ServerDiedError`.  The handle
    then supports exactly one recovery verb, :meth:`respawn`, which
    folds the dead generation's counters, starts a fresh process
    restored from the newest checkpoint, and reconnects.
    """

    def __init__(
        self,
        ctx,
        *,
        init_params: np.ndarray,
        shards: int,
        max_staleness: int | None,
        expected_workers: int,
        checkpoint: CheckpointPolicy | None,
        server_faults: Sequence[dict] = (),
        pushes_per_epoch: int | None = None,
        probe_timeout: float = 5.0,
    ) -> None:
        if probe_timeout <= 0:
            raise ConfigurationError(
                f"probe_timeout must be positive, got {probe_timeout}"
            )
        self._ctx = ctx
        self._init_params = np.asarray(init_params, dtype=np.float64)
        self._shards = shards
        self._max_staleness = max_staleness
        self._expected = expected_workers
        self._checkpoint = checkpoint
        self._server_faults = list(server_faults)
        self._pushes_per_epoch = pushes_per_epoch
        self._probe_timeout = probe_timeout

        self._proc = None
        self._ctrl: socket.socket | None = None
        self._dead = False
        self.host = "127.0.0.1"
        self.port = 0
        #: Counters folded from completed (dead) server generations.
        self._base_counters: dict[str, float] = {}
        self._base_faults = 0
        #: Freshest status snapshot of the *live* generation.
        self._last_counters: dict[str, float] = {}
        self._last_faults = 0
        self._last_status: dict[str, Any] | None = None
        #: Failover detection instant, armed by :meth:`respawn`; the
        #: first status poll showing a post-respawn push closes it.
        self._repair_started: float | None = None
        #: Completed time-to-repair measurements, one per failover.
        self.repairs: list[float] = []

        self._launch(restore=False)

    # -- process lifecycle ---------------------------------------------------

    def _launch(self, *, restore: bool) -> None:
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        self._proc = self._ctx.Process(
            target=server_main,
            name="ps-server",
            args=(
                send_conn,
                self._init_params,
                self._shards,
                self._max_staleness,
                self._expected,
                self._checkpoint,
                tuple(self._server_faults),
                self._pushes_per_epoch,
                restore,
            ),
            daemon=True,
        )
        self._proc.start()
        send_conn.close()
        deadline = time.perf_counter() + _SPAWN_TIMEOUT
        try:
            while not recv_conn.poll(0.1):
                if self._proc.exitcode is not None:
                    raise ServerDiedError(
                        "parameter server exited during startup "
                        f"(exitcode {self._proc.exitcode})",
                        phase="spawn",
                        exitcode=self._proc.exitcode,
                    )
                if time.perf_counter() >= deadline:
                    self._proc.terminate()
                    raise ServerDiedError(
                        "parameter server did not report its address "
                        f"within {_SPAWN_TIMEOUT:.0f}s",
                        phase="spawn",
                    )
            self.host, self.port = recv_conn.recv()
        finally:
            recv_conn.close()
        ctrl = socket.create_connection((self.host, self.port), timeout=5.0)
        ctrl.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        ctrl.settimeout(self._probe_timeout)
        self._ctrl = ctrl
        self._dead = False
        self._last_counters = {}
        self._last_faults = 0
        self._last_status = None

    def _fold_generation(self) -> None:
        """Bank the dying generation's last-seen state into the base."""
        for key, value in self._last_counters.items():
            self._base_counters[key] = self._base_counters.get(key, 0.0) + value
        self._base_faults += self._last_faults
        self._last_counters = {}
        self._last_faults = 0
        self._last_status = None

    def _mark_dead(self, phase: str, cause: Exception | None) -> ServerDiedError:
        self._dead = True
        if self._ctrl is not None:
            try:
                self._ctrl.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._ctrl = None
        exitcode = self._proc.exitcode if self._proc is not None else None
        detail = f": {cause}" if cause is not None else ""
        return ServerDiedError(
            f"parameter server stopped answering during {phase}"
            f" (exitcode {exitcode}){detail}",
            phase=phase,
            exitcode=exitcode,
        )

    def respawn(self, *, server_faults: Sequence[dict] | None = None) -> int:
        """Crash-restart failover: new process, restored from checkpoint.

        Folds the dead generation's counters, reaps its corpse, starts
        a fresh server seeded from the newest valid checkpoint, and
        starts the time-to-repair clock.  *server_faults* replaces the
        fault list shipped to the new generation (the parent filters
        out specs that already fired — a restored server must not
        re-kill itself replaying the same epoch).  Returns the new
        port for the parent to broadcast to the workers.
        """
        detected = time.perf_counter()
        self._fold_generation()
        if self._proc is not None and self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(2.0)
            if self._proc.is_alive():  # pragma: no cover - defensive
                self._proc.kill()
                self._proc.join()
        if server_faults is not None:
            self._server_faults = list(server_faults)
        self._launch(restore=True)
        self._repair_started = detected
        return self.port

    # -- control round-trips -------------------------------------------------

    def _roundtrip(
        self,
        msg_type: int,
        *,
        ident: int = 0,
        clock: int = 0,
        payload: bytes = b"",
        phase: str,
    ) -> wire.Frame:
        if self._dead or self._ctrl is None:
            raise self._mark_dead(phase, None)
        try:
            self._ctrl.sendall(
                wire.pack_frame(msg_type, ident=ident, clock=clock, payload=payload)
            )
            reply = wire.recv_frame(self._ctrl)
        except (wire.WireProtocolError, ConnectionError, OSError) as err:
            raise self._mark_dead(phase, err) from err
        if reply is None or reply.msg_type != msg_type:
            raise self._mark_dead(phase, None)
        return reply

    def _status(self) -> dict[str, Any]:
        reply = self._roundtrip(wire.MSG_CTRL_STATUS, phase="probe")
        status = json.loads(reply.payload.decode("utf-8"))
        self._last_counters = dict(status.get("counters", {}))
        self._last_faults = int(status.get("faults_reported", 0))
        self._last_status = status
        if (
            self._repair_started is not None
            and self._last_counters.get(keys.PS_PUSHES, 0.0) > 0
        ):
            # First observed push of the restored generation: the tier
            # is training again — repair complete.
            self.repairs.append(time.perf_counter() - self._repair_started)
            self._repair_started = None
        return status

    # -- the handle surface --------------------------------------------------

    def epoch_reached(self, epoch: int) -> bool:
        status = self._status()
        workers = status.get("workers", {})
        if len(workers) < int(status.get("expected", self._expected)):
            return False
        return all(int(w["epoch_done"]) >= epoch for w in workers.values())

    def wait_epoch_tick(self, timeout: float) -> None:
        # The status poll itself paces the watchdog loop (~100 ms).
        time.sleep(min(timeout, 0.1))

    def release_epoch(self, epoch: int, *, stop: bool = False) -> None:
        self._roundtrip(
            wire.MSG_CTRL_RELEASE,
            ident=1 if stop else 0,
            clock=epoch,
            phase="release",
        )

    def reset_pool(self, expected_workers: int) -> None:
        self._expected = expected_workers
        self._roundtrip(
            wire.MSG_CTRL_RESET, ident=expected_workers, phase="reset"
        )

    def snapshot(self) -> np.ndarray:
        reply = self._roundtrip(wire.MSG_CTRL_SNAPSHOT, phase="snapshot")
        if len(reply.payload) % 8:
            raise self._mark_dead("snapshot", None)
        return np.frombuffer(reply.payload, dtype=np.float64).copy()

    def write_params(self, params: np.ndarray) -> None:
        payload = np.ascontiguousarray(params, dtype=np.float64).tobytes()
        self._roundtrip(wire.MSG_CTRL_WRITE, payload=payload, phase="write")

    def checkpoint_boundary(self) -> bool:
        reply = self._roundtrip(wire.MSG_CTRL_CHECKPOINT, phase="checkpoint")
        return bool(reply.ident)

    def describe(self) -> dict[str, Any]:
        return {
            "shards": self._shards,
            "max_staleness": self._max_staleness,
            "address": f"{self.host}:{self.port}",
            "checkpoint_dir": (
                self._checkpoint.dir if self._checkpoint is not None else None
            ),
            "server_process": True,
        }

    def counters(self) -> dict[str, float]:
        """Folded counters: every dead generation plus the live one."""
        if not self._dead:
            try:
                self._status()
            except ServerDiedError:
                pass
        totals = dict(self._base_counters)
        for key, value in self._last_counters.items():
            totals[key] = totals.get(key, 0.0) + value
        return totals

    @property
    def faults_reported(self) -> int:
        return self._base_faults + self._last_faults

    def close(self) -> None:
        if self._proc is None:
            return
        if not self._dead and self._ctrl is not None:
            try:
                # One last poll banks the final counters, then ask the
                # child to exit on its own terms.
                self._status()
                self._roundtrip(wire.MSG_CTRL_SHUTDOWN, phase="shutdown")
            except ServerDiedError:
                pass
        if self._ctrl is not None:
            try:
                self._ctrl.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._ctrl = None
        self._proc.join(2.0)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(2.0)
        if self._proc.is_alive():  # pragma: no cover - defensive
            self._proc.kill()
            self._proc.join()
        self._fold_generation()
        self._dead = True
