"""A fault-injecting socket wrapper: the lossy wire, made repeatable.

:class:`FaultyWire` sits between the worker's training loop and its
TCP socket and injects exactly the wire-level failures a real
deployment sees — a connection dropped mid-run, a delayed frame, a
frame with flipped bits — at seeded, pre-armed points, so a chaos
drill is as reproducible as a healthy run.  The wrapper only
intercepts the *send* path: that is where each failure has a crisp
exactly-once story —

``conn-drop``
    The socket is closed *before* the armed frame leaves, so the
    in-flight item's push was never applied; the worker reconnects
    (``ps.reconnects_midrun``), rewinds to the server's resume clock
    and replays the item.  Healed entirely worker-side: no parent
    recovery action, no budget consumed.
``frame-delay``
    The armed frame is sent after a sleep — latency the run must
    absorb with no recovery action at all (the staleness gate and the
    epoch watchdog are the only observers).
``frame-corrupt``
    A seeded byte of the armed frame's *payload* is flipped after the
    CRC was computed.  The receiver's checksum rejects the frame
    (``ps.frames_rejected``), drops the connection, and the worker
    heals exactly like a drop — the corrupted push is *never* applied.

Arming is one-shot and explicit: the training loop announces the
fault (a ``FAULT`` frame on the healthy wire, so injection counts
survive), calls :meth:`FaultyWire.arm`, and the next frame sent is
the one the fault hits.  The byte position flipped by
``frame-corrupt`` comes from the wrapper's own ``derive_rng`` stream,
so the same plan, seed and worker always corrupt the same byte of the
same frame.
"""

from __future__ import annotations

import socket
import time

from ..utils.errors import ConfigurationError
from . import protocol as wire

__all__ = ["FaultyWire", "WIRE_FAULT_IDENTS"]

#: ``FAULT``-frame ident announcing each wire-fault kind (extends the
#: node kinds' 1=kill, 2=stall).
WIRE_FAULT_IDENTS = {"conn-drop": 3, "frame-delay": 4, "frame-corrupt": 5}


class FaultyWire:
    """Socket facade injecting armed faults into outgoing frames.

    Transparent (pure pass-through) until :meth:`arm` schedules a
    fault for the next ``sendall``.  The underlying socket is swapped
    via :meth:`attach` on reconnect, so one wrapper — and its armed
    state and RNG stream — spans a worker's whole life.
    """

    __slots__ = ("raw", "_rng", "_armed")

    def __init__(self, sock: socket.socket | None, rng) -> None:
        self.raw = sock
        self._rng = rng
        self._armed: tuple[str, float] | None = None

    # -- lifecycle ---------------------------------------------------------

    def attach(self, sock: socket.socket) -> None:
        """Point the wrapper at a fresh socket (after a reconnect)."""
        self.raw = sock

    def arm(self, kind: str, seconds: float = 0.0) -> None:
        """Schedule *kind* to fire on the next outgoing frame."""
        if kind not in WIRE_FAULT_IDENTS:
            raise ConfigurationError(f"unknown wire fault kind {kind!r}")
        self._armed = (kind, seconds)

    # -- send path (where faults fire) -------------------------------------

    def sendall(self, buf) -> None:
        armed, self._armed = self._armed, None
        if armed is None:
            self.raw.sendall(buf)
            return
        kind, seconds = armed
        if kind == "frame-delay":
            time.sleep(seconds)
            self.raw.sendall(buf)
            return
        if kind == "conn-drop":
            # Drop *before* the frame leaves: the push was never
            # applied, so reconnect-and-replay is exactly-once.
            try:
                self.raw.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self.raw.close()
            raise ConnectionResetError("injected conn-drop")
        # frame-corrupt: flip one seeded payload byte (header fields
        # survive, so the receiver gets far enough to check the CRC —
        # the failure mode that used to decode as garbage floats).
        mutable = bytearray(buf)
        lo = wire.HEADER_BYTES if len(mutable) > wire.HEADER_BYTES else 0
        pos = lo + int(self._rng.integers(len(mutable) - lo))
        mutable[pos] ^= 0xFF
        self.raw.sendall(bytes(mutable))

    # -- pass-throughs ------------------------------------------------------

    def recv(self, n: int) -> bytes:
        return self.raw.recv(n)

    def close(self) -> None:
        if self.raw is not None:
            self.raw.close()
