"""Atomic, versioned shard checkpoints for the parameter server.

A checkpoint is one self-validating binary file capturing a
*consistent cut* of the shard server: the float64 model, the per-shard
version vector, the released epoch, and every worker's work-item clock
— all captured in one critical section (all shard locks + the registry
mutex), so the file never mixes a pre-push model with a post-push
clock.  That consistency is what makes crash-restart failover exact:
a restored server at worker clock *c* holds precisely the model those
*c* items produced, and the reconnecting worker rewinds to *c* and
replays forward — nothing is double-applied, nothing is silently lost
(with one lock-step node the replayed epoch stays bit-identical to
serial SGD).

Writes are atomic against crashes of the *writer*: the bytes go to a
``tempfile.mkstemp`` sibling in the checkpoint directory, are fsynced,
and land under their final name via ``os.replace`` — a reader can
never observe a half-written ``ckpt-*.ckpt`` file, and a writer killed
mid-write leaves only a ``.tmp`` orphan that the restore path ignores
and the next successful write sweeps (the chaos drill asserts the
directory ends clean).  Corruption of a *finished*
file (torn disk, bit rot) is caught by two CRC32s — one over the
header, one over the parameter payload — and :func:`load_latest`
simply falls back to the next-newest file that validates.

File layout (big-endian)::

    magic "PSCKPT01" | flags u8 | n_params u64 | n_shards u16
    | released_epoch u64 | n_clocks u16
    | versions u64[n_shards] | clocks (u16 id, u64 clock)[n_clocks]
    | header_crc u32 | params f64[n_params] | payload_crc u32

``flags`` bit 0 marks an *epoch-boundary* checkpoint: written while
every worker sat at the barrier, so the captured model is exactly the
end-of-epoch state the parent's loss curve recorded.
"""

from __future__ import annotations

import os
import re
import struct
import tempfile
import zlib
from dataclasses import dataclass

import numpy as np

from ..utils.errors import ConfigurationError, DataFormatError

__all__ = [
    "CheckpointError",
    "CheckpointPolicy",
    "CheckpointState",
    "checkpoint_path",
    "write_checkpoint",
    "read_checkpoint",
    "load_latest",
]

_MAGIC = b"PSCKPT01"
_FIXED = struct.Struct("!8sBQHQH")  # magic, flags, n_params, n_shards, epoch, n_clocks
_CLOCK_ENTRY = struct.Struct("!HQ")  # worker id, work-item clock
_CRC = struct.Struct("!I")

#: Epoch-boundary flag bit (quiescent barrier state; the preferred
#: restore point when the replayed epoch must stay serial-exact).
FLAG_BOUNDARY = 0x01

_NAME_RE = re.compile(r"^ckpt-(\d{8})\.ckpt$")


class CheckpointError(DataFormatError):
    """A checkpoint file that fails structural or checksum validation."""


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where the shard server's background writer persists.

    Attributes
    ----------
    dir:
        Directory checkpoints land in (created on first use).
    every_items:
        Write after this many pushes since the last checkpoint
        (``None`` = no item trigger).
    every_seconds:
        Write after this many seconds since the last checkpoint
        (``None`` = no time trigger).  With both triggers ``None`` the
        background writer stays idle and only the parent's
        epoch-boundary flushes persist.
    """

    dir: str
    every_items: int | None = None
    every_seconds: float | None = None

    def __post_init__(self) -> None:
        if not self.dir:
            raise ConfigurationError("checkpoint dir must be a non-empty path")
        if self.every_items is not None and self.every_items < 1:
            raise ConfigurationError(
                f"checkpoint every_items must be >= 1, got {self.every_items}"
            )
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise ConfigurationError(
                f"checkpoint every_seconds must be positive, "
                f"got {self.every_seconds}"
            )


@dataclass
class CheckpointState:
    """One decoded checkpoint (plus where it came from)."""

    params: np.ndarray
    versions: list[int]
    released_epoch: int
    clocks: dict[int, int]
    boundary: bool
    seq: int
    path: str


def checkpoint_path(directory: str, seq: int) -> str:
    """Final on-disk name of checkpoint *seq* (sortable, monotonic)."""
    return os.path.join(directory, f"ckpt-{seq:08d}.ckpt")


def write_checkpoint(
    directory: str,
    seq: int,
    *,
    params: np.ndarray,
    versions: list[int],
    released_epoch: int,
    clocks: dict[int, int],
    boundary: bool = False,
) -> str:
    """Atomically persist one consistent cut; returns the final path.

    The caller owns consistency (capture everything under the server's
    locks); this function owns atomicity: mkstemp in the target
    directory, write + fsync, ``os.replace`` onto the final name — the
    rename is atomic on POSIX, so a concurrent reader sees either the
    whole file or no file.
    """
    os.makedirs(directory, exist_ok=True)
    # Sweep orphans from a writer SIGKILLed mid-write.  The directory
    # has exactly one live writer (the server's checkpoint thread, and
    # a failover replaces the server only after the old generation is
    # dead), so any .tmp here is a corpse's, never a peer's.
    for name in os.listdir(directory):
        if name.startswith("ckpt-") and name.endswith(".tmp"):
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:  # pragma: no cover - racing cleanup
                pass
    params = np.ascontiguousarray(params, dtype=np.float64)
    if len(versions) > 0xFFFF or len(clocks) > 0xFFFF:
        raise ConfigurationError("checkpoint shard/clock table too large")
    head = _FIXED.pack(
        _MAGIC,
        FLAG_BOUNDARY if boundary else 0,
        params.shape[0],
        len(versions),
        released_epoch,
        len(clocks),
    )
    head += struct.pack(f"!{len(versions)}Q", *versions)
    for worker_id in sorted(clocks):
        head += _CLOCK_ENTRY.pack(worker_id, clocks[worker_id])
    payload = params.tobytes()
    blob = (
        head
        + _CRC.pack(zlib.crc32(head))
        + payload
        + _CRC.pack(zlib.crc32(payload))
    )
    fd, tmp = tempfile.mkstemp(dir=directory, prefix="ckpt-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        final = checkpoint_path(directory, seq)
        os.replace(tmp, final)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return final


def read_checkpoint(path: str) -> CheckpointState:
    """Decode and validate one checkpoint file.

    Raises :class:`CheckpointError` on any structural defect or CRC
    mismatch — a half-valid checkpoint is never partially applied.
    """
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as err:
        raise CheckpointError(f"cannot read checkpoint {path}: {err}") from err
    if len(blob) < _FIXED.size + _CRC.size:
        raise CheckpointError(f"checkpoint {path} is truncated")
    magic, flags, n_params, n_shards, epoch, n_clocks = _FIXED.unpack_from(blob)
    if magic != _MAGIC:
        raise CheckpointError(f"checkpoint {path} has a bad magic {magic!r}")
    head_len = _FIXED.size + 8 * n_shards + _CLOCK_ENTRY.size * n_clocks
    need = head_len + _CRC.size + 8 * n_params + _CRC.size
    if len(blob) != need:
        raise CheckpointError(
            f"checkpoint {path} is {len(blob)} bytes, expected {need}"
        )
    head = blob[:head_len]
    (head_crc,) = _CRC.unpack_from(blob, head_len)
    if head_crc != zlib.crc32(head):
        raise CheckpointError(f"checkpoint {path} header checksum mismatch")
    payload = blob[head_len + _CRC.size : head_len + _CRC.size + 8 * n_params]
    (payload_crc,) = _CRC.unpack_from(blob, head_len + _CRC.size + 8 * n_params)
    if payload_crc != zlib.crc32(payload):
        raise CheckpointError(f"checkpoint {path} payload checksum mismatch")
    versions = list(struct.unpack_from(f"!{n_shards}Q", blob, _FIXED.size))
    clocks: dict[int, int] = {}
    off = _FIXED.size + 8 * n_shards
    for _ in range(n_clocks):
        worker_id, clock = _CLOCK_ENTRY.unpack_from(blob, off)
        clocks[worker_id] = clock
        off += _CLOCK_ENTRY.size
    match = _NAME_RE.match(os.path.basename(path))
    seq = int(match.group(1)) if match else 0
    return CheckpointState(
        params=np.frombuffer(payload, dtype=np.float64).copy(),
        versions=versions,
        released_epoch=epoch,
        clocks=clocks,
        boundary=bool(flags & FLAG_BOUNDARY),
        seq=seq,
        path=path,
    )


def load_latest(directory: str) -> CheckpointState | None:
    """The newest checkpoint in *directory* that validates, or ``None``.

    Scans final-named files in descending sequence order and returns
    the first that decodes cleanly — a corrupt or torn newest file
    (CRC mismatch) silently falls back to its predecessor, and
    writer-crash ``.tmp`` orphans are never considered.
    """
    try:
        names = os.listdir(directory)
    except OSError:
        return None
    ranked = sorted(
        (m.group(1), name)
        for name in names
        if (m := _NAME_RE.match(name)) is not None
    )
    for _, name in reversed(ranked):
        try:
            return read_checkpoint(os.path.join(directory, name))
        except CheckpointError:
            continue
    return None
