"""Drive a multi-node parameter-server run end to end.

:func:`train_ps` is the distributed sibling of
:func:`repro.parallel.train_shm`: same epoch-aligned measurement loop
(wall clock between barriers, loss on a quiescent snapshot, loss evals
excluded from iteration time), same fault/recovery contract
(:class:`repro.faults.FaultPlan` node kinds +
:class:`repro.faults.RecoveryPolicy`), same telemetry vocabulary — but
the model lives in a :class:`~repro.distributed.server.ShardServer`
and the workers reach it over TCP, so what the run measures is the
paper's *distributed* asynchronous regime: staleness from wire latency
and sharded pulls rather than from cache-coherent racing.

The epoch barrier is the ordered TCP stream itself: a worker's pushes
all precede its ``EPOCH_DONE`` on its own connection, so once every
live worker has arrived the server's shards are quiescent and the
parent snapshots, evaluates, scrubs or publishes without stopping any
clock.  Recovery covers both tiers.  Worker recovery replaces the
*pool*: worker processes are torn down and respawned against the same
shard state (``node-kill`` mid-epoch costs the partial epoch, not the
model), and the server's reconnect/reap counters record the churn.
Server recovery is **crash-restart failover**: with checkpointing
configured (and the server in its own process — automatic whenever
server faults are planned), a dead or wedged server is respawned from
the newest valid checkpoint, its new port is broadcast to the workers
through a shared cell, and the epoch is replayed; the failover draws
from the same ``max_restarts`` budget as a pool rebuild.  Wire faults
(``conn-drop`` / ``frame-delay`` / ``frame-corrupt``) are cheaper
still: the workers heal them in place by reconnect-and-resume, no
recovery action and no budget at all.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..faults import FaultPlan, RecoveryPolicy
from ..models.base import Matrix, Model
from ..sgd.config import SGDConfig
from ..sgd.convergence import LossCurve
from ..telemetry import keys
from ..telemetry.session import AnyTelemetry, ensure_telemetry
from ..utils.errors import ConfigurationError, ServerDiedError, WorkerError
from ..utils.rng import DEFAULT_SEED
from .checkpoint import CheckpointPolicy
from .server import ShardServer, default_ps_shards
from .supervisor import LocalServerHandle, RemoteServerHandle
from .worker import worker_main

__all__ = ["PsSchedule", "PsTrainResult", "train_ps", "default_ps_nodes"]


def default_ps_nodes() -> int:
    """Node count used when the caller does not pick one."""
    return min(4, os.cpu_count() or 1)


@dataclass(frozen=True)
class PsSchedule:
    """Execution shape of one parameter-server run.

    Attributes
    ----------
    nodes:
        Worker processes pulling from / pushing to the shard server
        (clamped to the example count).
    shards:
        Parameter shards on the server; ``None`` picks
        :func:`~repro.distributed.server.default_ps_shards`.
    max_staleness:
        Bounded-staleness window in work items: a worker more than
        this far ahead of the slowest live worker blocks on pull.
        ``None`` (the default) is the unbounded fast-async regime;
        ``0`` is lock-step.
    batch_size:
        Rows per work item (1 = per-example push/pull, the regime the
        serial-equivalence guarantee covers).
    epoch_timeout:
        Seconds the parent waits for an epoch barrier before declaring
        the pool dead.  Workers wait untimed — liveness is the
        parent's job.
    checkpoint_dir:
        Directory for the server's versioned shard checkpoints.
        ``None`` (the default) disables checkpointing — and with it,
        server failover.
    checkpoint_every:
        Background-checkpoint trigger in pushes since the last write
        (``None`` = no item trigger; the parent's epoch-boundary
        flushes still run whenever ``checkpoint_dir`` is set).
    checkpoint_seconds:
        Background-checkpoint trigger in seconds since the last write
        (``None`` = no time trigger).
    server_process:
        Run the shard server in its own supervised process (the
        failover-capable topology).  Forced on when the fault plan
        carries server-level kinds; off by default — the in-process
        server has no extra hop and no new failure modes.
    """

    nodes: int
    shards: int | None = None
    max_staleness: int | None = None
    batch_size: int = 1
    epoch_timeout: float = 120.0
    checkpoint_dir: str | None = None
    checkpoint_every: int | None = None
    checkpoint_seconds: float | None = None
    server_process: bool = False

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError(f"nodes must be >= 1, got {self.nodes}")
        if self.shards is not None and self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.max_staleness is not None and self.max_staleness < 0:
            raise ConfigurationError(
                f"max_staleness must be >= 0 or None, got {self.max_staleness}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.epoch_timeout <= 0:
            raise ConfigurationError(
                f"epoch_timeout must be positive, got {self.epoch_timeout}"
            )
        if self.checkpoint_dir is None and (
            self.checkpoint_every is not None
            or self.checkpoint_seconds is not None
        ):
            raise ConfigurationError(
                "checkpoint triggers need a checkpoint_dir to write into"
            )
        if self.checkpoint_dir is not None:
            # Delegate trigger validation; raises ConfigurationError.
            CheckpointPolicy(
                self.checkpoint_dir,
                every_items=self.checkpoint_every,
                every_seconds=self.checkpoint_seconds,
            )

    def checkpoint_policy(self) -> CheckpointPolicy | None:
        """The schedule's checkpoint fields as a server policy."""
        if self.checkpoint_dir is None:
            return None
        return CheckpointPolicy(
            self.checkpoint_dir,
            every_items=self.checkpoint_every,
            every_seconds=self.checkpoint_seconds,
        )


@dataclass
class PsTrainResult:
    """Outcome of a measured parameter-server run."""

    curve: LossCurve
    params: np.ndarray
    nodes: int
    shards: int
    batch_size: int
    max_staleness: int | None
    epochs_run: int
    diverged: bool
    #: Measured seconds per optimisation epoch (loss evals excluded).
    wall_seconds_per_epoch: float
    #: Measured optimisation seconds across all epochs.
    wall_seconds_total: float
    #: Aggregated event totals, keyed by the telemetry vocabulary
    #: (``ps.*`` wire counters included).
    counters: dict[str, float] = field(default_factory=dict)
    #: Nodes still in the pool at the end (== ``nodes`` unless a
    #: repartition recovery shrank it).
    nodes_final: int = 0
    #: Full-pool respawn recoveries performed.
    restarts: int = 0
    #: Repartition recoveries performed (pool shrank by one each time).
    repartitions: int = 0
    #: Epochs executed degraded: fewer nodes than requested, or on a
    #: NaN-scrubbed snapshot.
    degraded_epochs: int = 0
    #: Crash-restart failovers of the shard server performed.
    server_failovers: int = 0
    #: Wall seconds from the last failover's detection to the first
    #: post-recovery push (``None`` when no failover completed).
    time_to_repair_seconds: float | None = None
    #: Chronological recovery trajectory, recorded into run manifests.
    recovery: list[dict] = field(default_factory=list)

    @property
    def updates_applied(self) -> float:
        """Examples pushed into the shard server across all nodes."""
        return self.counters.get(keys.UPDATES_APPLIED, 0.0)

    @property
    def faults_injected(self) -> float:
        """Planned faults the workers actually injected."""
        return self.counters.get(keys.FAULT_INJECTED, 0.0)

    @property
    def pull_rounds_per_update(self) -> float:
        """Pull round-trips one applied update cost on the wire."""
        updates = self.counters.get(keys.UPDATES_APPLIED, 0.0)
        if not updates:
            return 0.0
        return self.counters.get(keys.PS_PULL_ROUNDS, 0.0) / updates


def _wait_epoch(server, procs: list, timeout: float, epoch: int) -> None:
    """Block until every live node finished *epoch*, with a watchdog.

    *server* is either server handle (the remote one turns each
    ``epoch_reached`` poll into a liveness probe, so a crashed or
    wedged server surfaces here as :class:`ServerDiedError`).  Mirrors
    the shm backend's barrier blame semantics: a node process that
    exits before arriving raises a structured :class:`WorkerError`
    within ~100 ms (worker id + exit code); a pure timeout — a stalled
    node leaves no corpse — raises with ``worker_id=None``.
    """
    deadline = time.perf_counter() + timeout
    while True:
        if server.epoch_reached(epoch):
            return
        dead = [
            (k, p.exitcode) for k, p in enumerate(procs) if p.exitcode is not None
        ]
        if dead:
            detail = ", ".join(f"node {k} exitcode {c}" for k, c in dead)
            raise WorkerError(
                f"parameter-server node(s) died during epoch {epoch}: {detail}",
                worker_id=dead[0][0],
                epoch=epoch,
                phase="epoch",
                exitcode=dead[0][1],
            )
        if time.perf_counter() >= deadline:
            raise WorkerError(
                f"parameter-server run timed out after {timeout:.1f}s "
                f"waiting for epoch {epoch}",
                epoch=epoch,
                phase="epoch",
            )
        server.wait_epoch_tick(0.1)


def _teardown_nodes(procs: list, grace: float = 2.0) -> None:
    """Terminate and reap every node process.  On return all joined."""
    for p in procs:
        if p.is_alive():
            p.terminate()
    deadline = time.perf_counter() + grace
    for p in procs:
        p.join(max(0.05, deadline - time.perf_counter()))
    for p in procs:
        if p.is_alive():  # pragma: no cover - defensive
            p.kill()
            p.join()


def train_ps(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    init_params: np.ndarray,
    config: SGDConfig,
    schedule: PsSchedule,
    telemetry: AnyTelemetry | None = None,
    fault_plan: FaultPlan | None = None,
    recovery: RecoveryPolicy | None = None,
    snapshot: Any | None = None,
) -> PsTrainResult:
    """Train against a local multi-process parameter server.

    Parameters mirror :func:`repro.parallel.train_shm`; *fault_plan*
    contributes its node-level kinds (``node-kill`` / ``node-stall``)
    resolved through :meth:`~repro.faults.FaultPlan.resolve_nodes`.

    Raises
    ------
    ConfigurationError
        For models without the scalar link-derivative machinery (the
        backend drives the margin-based linear models, lr/svm), or
        with L2 regularisation (the paper's objectives here are
        unregularised).
    WorkerError
        When a node dies or stops responding and no recovery policy is
        set — or the policy's retry budget is exhausted; the node pool
        and the server's sockets are torn down before raising.
    """
    if not hasattr(model, "_dmargin_scalar"):
        raise ConfigurationError(
            f"{type(model).__name__} is not supported by the parameter-server "
            "backend; it drives the margin-based linear models (lr/svm)"
        )
    if getattr(model, "l2", 0.0):
        raise ConfigurationError(
            "the parameter-server backend implements the paper's "
            "unregularised objectives (l2=0)"
        )
    tel = ensure_telemetry(telemetry)
    n = X.shape[0]
    requested_nodes = min(schedule.nodes, n)
    seed = config.seed if config.seed is not None else DEFAULT_SEED
    budget = recovery.max_restarts if recovery is not None else 0
    assignments: dict[int, list[dict[str, Any]]] = (
        fault_plan.resolve_nodes(
            requested_nodes, run_seed=seed, epoch_timeout=schedule.epoch_timeout
        )
        if fault_plan
        else {}
    )
    wire_assignments: dict[int, list[dict[str, Any]]] = (
        fault_plan.resolve_wire(
            requested_nodes, run_seed=seed, epoch_timeout=schedule.epoch_timeout
        )
        if fault_plan
        else {}
    )
    server_specs: list[dict[str, Any]] = (
        fault_plan.resolve_server(epoch_timeout=schedule.epoch_timeout)
        if fault_plan
        else []
    )
    ckpt_policy = schedule.checkpoint_policy()
    if server_specs and ckpt_policy is None:
        raise ConfigurationError(
            "server faults need checkpointing (set checkpoint_dir): killing "
            "an uncheckpointed server would silently restart training from "
            "scratch instead of exercising failover"
        )
    use_server_process = schedule.server_process or bool(server_specs)

    init_params = np.asarray(init_params, dtype=np.float64)
    with np.errstate(over="ignore"):
        initial = float(model.loss(X, y, init_params))
    tel.count(keys.LOSS_EVALS)
    curve = LossCurve()
    curve.record(0, initial)
    limit = config.divergence_factor * max(initial, 1e-12)

    shards = (
        schedule.shards
        if schedule.shards is not None
        else default_ps_shards(init_params.shape[0])
    )
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    # Every worker must finish its pass before a server fault fires:
    # the trigger is the run's per-epoch push count, halved server-side.
    pushes_per_epoch = sum(
        -(-np.arange(k, n, requested_nodes).shape[0] // schedule.batch_size)
        for k in range(requested_nodes)
    )
    if use_server_process:
        handle = RemoteServerHandle(
            ctx,
            init_params=init_params,
            shards=shards,
            max_staleness=schedule.max_staleness,
            expected_workers=requested_nodes,
            checkpoint=ckpt_policy,
            server_faults=server_specs,
            pushes_per_epoch=pushes_per_epoch if server_specs else None,
            probe_timeout=min(5.0, max(0.5, schedule.epoch_timeout / 4.0)),
        )
    else:
        handle = LocalServerHandle(
            ShardServer(
                init_params,
                shards,
                max_staleness=schedule.max_staleness,
                expected_workers=requested_nodes,
                checkpoint=ckpt_policy,
            )
        )
    # The workers' view of the server address: a failover respawns the
    # server on a fresh port and rewrites this cell, and every redial
    # re-reads it — the broadcast that makes mid-run healing possible.
    port_cell = ctx.Value("i", handle.port)
    procs: list = []
    diverged = False
    epochs_run = 0
    epoch_walls: list[float] = []
    active_nodes = requested_nodes
    timeout = schedule.epoch_timeout
    recoveries_used = 0
    restarts = 0
    repartitions = 0
    degraded_epochs = 0
    server_failovers = 0
    server_faults_fired = 0
    recovery_log: list[dict] = []

    def _spawn(next_epoch: int) -> None:
        """(Re)build the node pool to run epochs ``next_epoch..max``."""
        nonlocal procs
        partitions = [
            np.arange(k, n, active_nodes, dtype=np.int64)
            for k in range(active_nodes)
        ]
        procs = [
            ctx.Process(
                target=worker_main,
                name=f"ps-node-{k}",
                args=(
                    handle.host,
                    port_cell,
                    model,
                    X,
                    y,
                    partitions[k],
                    active_nodes,
                    k,
                    config.step_size,
                    config.max_epochs - (next_epoch - 1),
                    schedule.batch_size,
                    seed,
                    tuple(assignments.get(k, ())),
                    next_epoch - 1,
                    tuple(wire_assignments.get(k, ())),
                ),
            )
            for k in range(active_nodes)
        ]
        for p in procs:
            p.start()

    try:
        last_good = init_params.copy()
        if snapshot is not None:
            # Version 1: the initial model, published before any node
            # connects — an attached scoring service never cold-starts.
            snapshot.publish(init_params, epoch=0, loss=initial)
        _spawn(1)

        with tel.span(
            "ps.optimize",
            nodes=requested_nodes,
            shards=shards,
            batch_size=schedule.batch_size,
            max_staleness=(
                -1 if schedule.max_staleness is None else schedule.max_staleness
            ),
            step_size=config.step_size,
        ) as opt_span:
            epoch = 1
            while epoch <= config.max_epochs:
                t0 = time.perf_counter()
                scrubbed = 0
                try:
                    handle.release_epoch(epoch)
                    try:
                        _wait_epoch(handle, procs, timeout, epoch)
                    except WorkerError as err:
                        _teardown_nodes(procs)
                        if recovery is None or recoveries_used >= budget:
                            raise
                        recoveries_used += 1
                        timeout *= recovery.backoff
                        if (
                            err.worker_id is not None
                            and recovery.mode == "repartition"
                            and active_nodes > 1
                        ):
                            # The dead node's examples round-robin onto
                            # the survivors; capacity degrades, coverage
                            # does not.  The shard state stays put on
                            # the server.
                            active_nodes -= 1
                            repartitions += 1
                            action = "repartition"
                        else:
                            restarts += 1
                            action = "respawn"
                        # Faults at or before the interrupted epoch had
                        # their chance; they must not re-fire on the
                        # rebuilt pool re-running this epoch.
                        assignments = {
                            k: [s for s in v if s["epoch"] > epoch]
                            for k, v in assignments.items()
                        }
                        recovery_log.append(
                            {
                                "action": action,
                                "epoch": epoch,
                                "nodes": active_nodes,
                                "epoch_timeout": timeout,
                                "cause": err.describe(),
                            }
                        )
                        handle.reset_pool(active_nodes)
                        _spawn(epoch)
                        continue
                    if ckpt_policy is not None:
                        # Boundary checkpoint: makes "replay the
                        # interrupted epoch" the worst case after any
                        # later server death.
                        handle.checkpoint_boundary()
                    # Every live node is blocked at the epoch barrier
                    # and all its pushes preceded its EPOCH_DONE on the
                    # same ordered stream: the shards are quiescent
                    # while the loss is evaluated — excluded from epoch
                    # time.
                    params_now = handle.snapshot()
                    finite = bool(np.all(np.isfinite(params_now)))
                    if (
                        not finite
                        and recovery is not None
                        and recovery.scrub_nans
                        and recoveries_used < budget
                    ):
                        bad = ~np.isfinite(params_now)
                        params_now[bad] = last_good[bad]
                        handle.write_params(params_now)
                        scrubbed = int(bad.sum())
                        finite = True
                except ServerDiedError as err:
                    # Crash-restart failover.  The workers are NOT torn
                    # down: each one's next frame fails, it redials the
                    # port cell, resumes from its server-side clock and
                    # replays only the unacknowledged tail.
                    if recovery is None or recoveries_used >= budget:
                        raise
                    recoveries_used += 1
                    timeout *= recovery.backoff
                    server_failovers += 1
                    # The fault that killed this generation must not
                    # re-arm on the respawned server: drop the first
                    # spec that was due.  SIGKILL loses the server-side
                    # FAULT_INJECTED bump, so the parent counts it.
                    due = next(
                        (
                            i
                            for i, s in enumerate(server_specs)
                            if s["epoch"] <= epoch
                        ),
                        None,
                    )
                    if due is not None:
                        del server_specs[due]
                        server_faults_fired += 1
                    recovery_log.append(
                        {
                            "action": "server_failover",
                            "epoch": epoch,
                            "nodes": active_nodes,
                            "epoch_timeout": timeout,
                            "cause": err.describe(),
                        }
                    )
                    port_cell.value = handle.respawn(server_faults=server_specs)
                    continue
                epoch_walls.append(time.perf_counter() - t0)
                epochs_run = epoch
                tel.count(keys.EPOCHS)
                degraded = active_nodes < requested_nodes
                stop = epoch == config.max_epochs
                if scrubbed:
                    recoveries_used += 1
                    degraded = True
                    recovery_log.append(
                        {
                            "action": "nan_scrub",
                            "epoch": epoch,
                            "coordinates": scrubbed,
                        }
                    )
                if not finite:
                    curve.record(epoch, float("inf"))
                    diverged = True
                    stop = True
                else:
                    with np.errstate(over="ignore"):
                        loss = float(model.loss(X, y, params_now))
                    tel.count(keys.LOSS_EVALS)
                    if not np.isfinite(loss) or loss > limit:
                        curve.record(epoch, float("inf"))
                        diverged = True
                        stop = True
                    else:
                        curve.record(epoch, loss)
                        last_good = params_now
                        if snapshot is not None:
                            snapshot.publish(params_now, epoch=epoch, loss=loss)
                        if (
                            config.target_loss is not None
                            and loss <= config.target_loss
                        ):
                            stop = True
                if degraded:
                    degraded_epochs += 1
                if stop:
                    break
                epoch += 1
            opt_span.set_attribute("diverged", diverged)
            opt_span.set_attribute("recoveries", recoveries_used)

        # Release the pool into a clean exit: every node's barrier ack
        # carries the stop flag, each answers with BYE and exits 0.
        try:
            handle.release_epoch(epochs_run, stop=True)
            deadline = time.perf_counter() + timeout
            for p in procs:
                p.join(max(0.1, deadline - time.perf_counter()))
            hung = [(k, p) for k, p in enumerate(procs) if p.is_alive()]
            if hung:
                if recovery is None:  # pragma: no cover - defensive
                    raise WorkerError(
                        f"{len(hung)} parameter-server node(s) failed to exit",
                        phase="join",
                    )
                for _, p in hung:
                    p.terminate()
                    p.join()
                recovery_log.append(
                    {
                        "action": "stragglers_terminated",
                        "epoch": epochs_run,
                        "nodes": [k for k, _ in hung],
                    }
                )
            params = handle.snapshot()
        except ServerDiedError as err:
            # The run's result is already recorded; a server death
            # during the exit handshake costs only the stragglers
            # (torn down below) and the final snapshot falls back to
            # the last finite one.
            recovery_log.append(
                {
                    "action": "server_lost_at_exit",
                    "epoch": epochs_run,
                    "cause": err.describe(),
                }
            )
            params = last_good.copy()
    finally:
        _teardown_nodes(procs)
        handle.close()

    wall_total = float(sum(epoch_walls))
    wall_per_epoch = wall_total / max(1, len(epoch_walls))
    counter_totals = handle.counters()
    counter_totals.setdefault(keys.UPDATES_APPLIED, 0.0)
    counter_totals[keys.GRAD_EVALS] = counter_totals[keys.UPDATES_APPLIED]
    counter_totals[keys.ASYNC_ROUNDS] = counter_totals.get(keys.PS_PUSHES, 0.0)
    counter_totals[keys.FAULT_INJECTED] = float(
        handle.faults_reported + server_faults_fired
    )
    counter_totals[keys.FAULT_WORKER_RESTARTS] = float(restarts)
    counter_totals[keys.FAULT_REPARTITIONS] = float(repartitions)
    counter_totals[keys.FAULT_DEGRADED_EPOCHS] = float(degraded_epochs)
    counter_totals[keys.PS_SERVER_FAILOVERS] = float(server_failovers)
    repairs = list(getattr(handle, "repairs", ()))
    for entry, seconds in zip(
        (e for e in recovery_log if e["action"] == "server_failover"), repairs
    ):
        entry["time_to_repair_seconds"] = seconds
    for key, value in counter_totals.items():
        tel.count(key, value)
    tel.set_gauge(keys.WALL_SECONDS_PER_EPOCH, wall_per_epoch)
    tel.set_gauge(keys.WALL_SECONDS_TOTAL, wall_total)
    if repairs:
        tel.set_gauge(keys.PS_TIME_TO_REPAIR_SECONDS, repairs[-1])
    if counter_totals[keys.UPDATES_APPLIED]:
        tel.set_gauge(
            keys.PS_PULL_ROUNDS_PER_UPDATE,
            counter_totals.get(keys.PS_PULL_ROUNDS, 0.0)
            / counter_totals[keys.UPDATES_APPLIED],
        )

    return PsTrainResult(
        curve=curve,
        params=params,
        nodes=requested_nodes,
        shards=shards,
        batch_size=schedule.batch_size,
        max_staleness=schedule.max_staleness,
        epochs_run=epochs_run,
        diverged=diverged,
        wall_seconds_per_epoch=wall_per_epoch,
        wall_seconds_total=wall_total,
        counters=counter_totals,
        nodes_final=active_nodes,
        restarts=restarts,
        repartitions=repartitions,
        degraded_epochs=degraded_epochs,
        server_failovers=server_failovers,
        time_to_repair_seconds=repairs[-1] if repairs else None,
        recovery=recovery_log,
    )
