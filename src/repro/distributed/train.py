"""Drive a multi-node parameter-server run end to end.

:func:`train_ps` is the distributed sibling of
:func:`repro.parallel.train_shm`: same epoch-aligned measurement loop
(wall clock between barriers, loss on a quiescent snapshot, loss evals
excluded from iteration time), same fault/recovery contract
(:class:`repro.faults.FaultPlan` node kinds +
:class:`repro.faults.RecoveryPolicy`), same telemetry vocabulary — but
the model lives in a :class:`~repro.distributed.server.ShardServer`
and the workers reach it over TCP, so what the run measures is the
paper's *distributed* asynchronous regime: staleness from wire latency
and sharded pulls rather than from cache-coherent racing.

The epoch barrier is the ordered TCP stream itself: a worker's pushes
all precede its ``EPOCH_DONE`` on its own connection, so once every
live worker has arrived the server's shards are quiescent and the
parent snapshots, evaluates, scrubs or publishes without stopping any
clock.  Recovery replaces the *pool*, never the server: worker
processes are torn down and respawned against the same shard state
(``node-kill`` mid-epoch costs the partial epoch, not the model), and
the server's reconnect/reap counters record the churn.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..faults import FaultPlan, RecoveryPolicy
from ..models.base import Matrix, Model
from ..sgd.config import SGDConfig
from ..sgd.convergence import LossCurve
from ..telemetry import keys
from ..telemetry.session import AnyTelemetry, ensure_telemetry
from ..utils.errors import ConfigurationError, WorkerError
from ..utils.rng import DEFAULT_SEED
from .server import ShardServer, default_ps_shards
from .worker import worker_main

__all__ = ["PsSchedule", "PsTrainResult", "train_ps", "default_ps_nodes"]


def default_ps_nodes() -> int:
    """Node count used when the caller does not pick one."""
    return min(4, os.cpu_count() or 1)


@dataclass(frozen=True)
class PsSchedule:
    """Execution shape of one parameter-server run.

    Attributes
    ----------
    nodes:
        Worker processes pulling from / pushing to the shard server
        (clamped to the example count).
    shards:
        Parameter shards on the server; ``None`` picks
        :func:`~repro.distributed.server.default_ps_shards`.
    max_staleness:
        Bounded-staleness window in work items: a worker more than
        this far ahead of the slowest live worker blocks on pull.
        ``None`` (the default) is the unbounded fast-async regime;
        ``0`` is lock-step.
    batch_size:
        Rows per work item (1 = per-example push/pull, the regime the
        serial-equivalence guarantee covers).
    epoch_timeout:
        Seconds the parent waits for an epoch barrier before declaring
        the pool dead.  Workers wait untimed — liveness is the
        parent's job.
    """

    nodes: int
    shards: int | None = None
    max_staleness: int | None = None
    batch_size: int = 1
    epoch_timeout: float = 120.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError(f"nodes must be >= 1, got {self.nodes}")
        if self.shards is not None and self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.max_staleness is not None and self.max_staleness < 0:
            raise ConfigurationError(
                f"max_staleness must be >= 0 or None, got {self.max_staleness}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.epoch_timeout <= 0:
            raise ConfigurationError(
                f"epoch_timeout must be positive, got {self.epoch_timeout}"
            )


@dataclass
class PsTrainResult:
    """Outcome of a measured parameter-server run."""

    curve: LossCurve
    params: np.ndarray
    nodes: int
    shards: int
    batch_size: int
    max_staleness: int | None
    epochs_run: int
    diverged: bool
    #: Measured seconds per optimisation epoch (loss evals excluded).
    wall_seconds_per_epoch: float
    #: Measured optimisation seconds across all epochs.
    wall_seconds_total: float
    #: Aggregated event totals, keyed by the telemetry vocabulary
    #: (``ps.*`` wire counters included).
    counters: dict[str, float] = field(default_factory=dict)
    #: Nodes still in the pool at the end (== ``nodes`` unless a
    #: repartition recovery shrank it).
    nodes_final: int = 0
    #: Full-pool respawn recoveries performed.
    restarts: int = 0
    #: Repartition recoveries performed (pool shrank by one each time).
    repartitions: int = 0
    #: Epochs executed degraded: fewer nodes than requested, or on a
    #: NaN-scrubbed snapshot.
    degraded_epochs: int = 0
    #: Chronological recovery trajectory, recorded into run manifests.
    recovery: list[dict] = field(default_factory=list)

    @property
    def updates_applied(self) -> float:
        """Examples pushed into the shard server across all nodes."""
        return self.counters.get(keys.UPDATES_APPLIED, 0.0)

    @property
    def faults_injected(self) -> float:
        """Planned faults the workers actually injected."""
        return self.counters.get(keys.FAULT_INJECTED, 0.0)

    @property
    def pull_rounds_per_update(self) -> float:
        """Pull round-trips one applied update cost on the wire."""
        updates = self.counters.get(keys.UPDATES_APPLIED, 0.0)
        if not updates:
            return 0.0
        return self.counters.get(keys.PS_PULL_ROUNDS, 0.0) / updates


def _wait_epoch(
    server: ShardServer, procs: list, timeout: float, epoch: int
) -> None:
    """Block until every live node finished *epoch*, with a watchdog.

    Mirrors the shm backend's barrier blame semantics: a node process
    that exits before arriving raises a structured
    :class:`WorkerError` within ~100 ms (worker id + exit code); a pure
    timeout — a stalled node leaves no corpse — raises with
    ``worker_id=None``.
    """
    deadline = time.perf_counter() + timeout
    while True:
        if server.epoch_reached(epoch):
            return
        dead = [
            (k, p.exitcode) for k, p in enumerate(procs) if p.exitcode is not None
        ]
        if dead:
            detail = ", ".join(f"node {k} exitcode {c}" for k, c in dead)
            raise WorkerError(
                f"parameter-server node(s) died during epoch {epoch}: {detail}",
                worker_id=dead[0][0],
                epoch=epoch,
                phase="epoch",
                exitcode=dead[0][1],
            )
        if time.perf_counter() >= deadline:
            raise WorkerError(
                f"parameter-server run timed out after {timeout:.1f}s "
                f"waiting for epoch {epoch}",
                epoch=epoch,
                phase="epoch",
            )
        server.wait_epoch_tick(0.1)


def _teardown_nodes(procs: list, grace: float = 2.0) -> None:
    """Terminate and reap every node process.  On return all joined."""
    for p in procs:
        if p.is_alive():
            p.terminate()
    deadline = time.perf_counter() + grace
    for p in procs:
        p.join(max(0.05, deadline - time.perf_counter()))
    for p in procs:
        if p.is_alive():  # pragma: no cover - defensive
            p.kill()
            p.join()


def train_ps(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    init_params: np.ndarray,
    config: SGDConfig,
    schedule: PsSchedule,
    telemetry: AnyTelemetry | None = None,
    fault_plan: FaultPlan | None = None,
    recovery: RecoveryPolicy | None = None,
    snapshot: Any | None = None,
) -> PsTrainResult:
    """Train against a local multi-process parameter server.

    Parameters mirror :func:`repro.parallel.train_shm`; *fault_plan*
    contributes its node-level kinds (``node-kill`` / ``node-stall``)
    resolved through :meth:`~repro.faults.FaultPlan.resolve_nodes`.

    Raises
    ------
    ConfigurationError
        For models without the scalar link-derivative machinery (the
        backend drives the margin-based linear models, lr/svm), or
        with L2 regularisation (the paper's objectives here are
        unregularised).
    WorkerError
        When a node dies or stops responding and no recovery policy is
        set — or the policy's retry budget is exhausted; the node pool
        and the server's sockets are torn down before raising.
    """
    if not hasattr(model, "_dmargin_scalar"):
        raise ConfigurationError(
            f"{type(model).__name__} is not supported by the parameter-server "
            "backend; it drives the margin-based linear models (lr/svm)"
        )
    if getattr(model, "l2", 0.0):
        raise ConfigurationError(
            "the parameter-server backend implements the paper's "
            "unregularised objectives (l2=0)"
        )
    tel = ensure_telemetry(telemetry)
    n = X.shape[0]
    requested_nodes = min(schedule.nodes, n)
    seed = config.seed if config.seed is not None else DEFAULT_SEED
    budget = recovery.max_restarts if recovery is not None else 0
    assignments: dict[int, list[dict[str, Any]]] = (
        fault_plan.resolve_nodes(
            requested_nodes, run_seed=seed, epoch_timeout=schedule.epoch_timeout
        )
        if fault_plan
        else {}
    )

    init_params = np.asarray(init_params, dtype=np.float64)
    with np.errstate(over="ignore"):
        initial = float(model.loss(X, y, init_params))
    tel.count(keys.LOSS_EVALS)
    curve = LossCurve()
    curve.record(0, initial)
    limit = config.divergence_factor * max(initial, 1e-12)

    shards = (
        schedule.shards
        if schedule.shards is not None
        else default_ps_shards(init_params.shape[0])
    )
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    server = ShardServer(
        init_params,
        shards,
        max_staleness=schedule.max_staleness,
        expected_workers=requested_nodes,
    )
    procs: list = []
    diverged = False
    epochs_run = 0
    epoch_walls: list[float] = []
    active_nodes = requested_nodes
    timeout = schedule.epoch_timeout
    recoveries_used = 0
    restarts = 0
    repartitions = 0
    degraded_epochs = 0
    recovery_log: list[dict] = []

    def _spawn(next_epoch: int) -> None:
        """(Re)build the node pool to run epochs ``next_epoch..max``."""
        nonlocal procs
        partitions = [
            np.arange(k, n, active_nodes, dtype=np.int64)
            for k in range(active_nodes)
        ]
        procs = [
            ctx.Process(
                target=worker_main,
                name=f"ps-node-{k}",
                args=(
                    server.host,
                    server.port,
                    model,
                    X,
                    y,
                    partitions[k],
                    active_nodes,
                    k,
                    config.step_size,
                    config.max_epochs - (next_epoch - 1),
                    schedule.batch_size,
                    seed,
                    tuple(assignments.get(k, ())),
                    next_epoch - 1,
                ),
            )
            for k in range(active_nodes)
        ]
        for p in procs:
            p.start()

    try:
        last_good = init_params.copy()
        if snapshot is not None:
            # Version 1: the initial model, published before any node
            # connects — an attached scoring service never cold-starts.
            snapshot.publish(init_params, epoch=0, loss=initial)
        _spawn(1)

        with tel.span(
            "ps.optimize",
            nodes=requested_nodes,
            shards=shards,
            batch_size=schedule.batch_size,
            max_staleness=(
                -1 if schedule.max_staleness is None else schedule.max_staleness
            ),
            step_size=config.step_size,
        ) as opt_span:
            epoch = 1
            while epoch <= config.max_epochs:
                t0 = time.perf_counter()
                server.release_epoch(epoch)
                try:
                    _wait_epoch(server, procs, timeout, epoch)
                except WorkerError as err:
                    _teardown_nodes(procs)
                    if recovery is None or recoveries_used >= budget:
                        raise
                    recoveries_used += 1
                    timeout *= recovery.backoff
                    if (
                        err.worker_id is not None
                        and recovery.mode == "repartition"
                        and active_nodes > 1
                    ):
                        # The dead node's examples round-robin onto the
                        # survivors; capacity degrades, coverage does
                        # not.  The shard state stays put on the server.
                        active_nodes -= 1
                        repartitions += 1
                        action = "repartition"
                    else:
                        restarts += 1
                        action = "respawn"
                    # Faults at or before the interrupted epoch had
                    # their chance; they must not re-fire on the
                    # rebuilt pool re-running this epoch.
                    assignments = {
                        k: [s for s in v if s["epoch"] > epoch]
                        for k, v in assignments.items()
                    }
                    recovery_log.append(
                        {
                            "action": action,
                            "epoch": epoch,
                            "nodes": active_nodes,
                            "epoch_timeout": timeout,
                            "cause": err.describe(),
                        }
                    )
                    server.reset_pool(active_nodes)
                    _spawn(epoch)
                    continue
                epoch_walls.append(time.perf_counter() - t0)
                epochs_run = epoch
                tel.count(keys.EPOCHS)
                # Every live node is blocked at the epoch barrier and
                # all its pushes preceded its EPOCH_DONE on the same
                # ordered stream: the shards are quiescent while the
                # loss is evaluated — excluded from epoch time.
                degraded = active_nodes < requested_nodes
                params_now = server.snapshot()
                stop = epoch == config.max_epochs
                finite = bool(np.all(np.isfinite(params_now)))
                if (
                    not finite
                    and recovery is not None
                    and recovery.scrub_nans
                    and recoveries_used < budget
                ):
                    recoveries_used += 1
                    bad = ~np.isfinite(params_now)
                    params_now[bad] = last_good[bad]
                    server.write_params(params_now)
                    degraded = True
                    finite = True
                    recovery_log.append(
                        {
                            "action": "nan_scrub",
                            "epoch": epoch,
                            "coordinates": int(bad.sum()),
                        }
                    )
                if not finite:
                    curve.record(epoch, float("inf"))
                    diverged = True
                    stop = True
                else:
                    with np.errstate(over="ignore"):
                        loss = float(model.loss(X, y, params_now))
                    tel.count(keys.LOSS_EVALS)
                    if not np.isfinite(loss) or loss > limit:
                        curve.record(epoch, float("inf"))
                        diverged = True
                        stop = True
                    else:
                        curve.record(epoch, loss)
                        last_good = params_now
                        if snapshot is not None:
                            snapshot.publish(params_now, epoch=epoch, loss=loss)
                        if (
                            config.target_loss is not None
                            and loss <= config.target_loss
                        ):
                            stop = True
                if degraded:
                    degraded_epochs += 1
                if stop:
                    break
                epoch += 1
            opt_span.set_attribute("diverged", diverged)
            opt_span.set_attribute("recoveries", recoveries_used)

        # Release the pool into a clean exit: every node's barrier ack
        # carries the stop flag, each answers with BYE and exits 0.
        server.release_epoch(epochs_run, stop=True)
        deadline = time.perf_counter() + timeout
        for p in procs:
            p.join(max(0.1, deadline - time.perf_counter()))
        hung = [(k, p) for k, p in enumerate(procs) if p.is_alive()]
        if hung:
            if recovery is None:  # pragma: no cover - defensive
                raise WorkerError(
                    f"{len(hung)} parameter-server node(s) failed to exit",
                    phase="join",
                )
            for _, p in hung:
                p.terminate()
                p.join()
            recovery_log.append(
                {
                    "action": "stragglers_terminated",
                    "epoch": epochs_run,
                    "nodes": [k for k, _ in hung],
                }
            )
        params = server.snapshot()
    finally:
        _teardown_nodes(procs)
        server.close()

    wall_total = float(sum(epoch_walls))
    wall_per_epoch = wall_total / max(1, len(epoch_walls))
    counter_totals = dict(server.counters)
    counter_totals.setdefault(keys.UPDATES_APPLIED, 0.0)
    counter_totals[keys.GRAD_EVALS] = counter_totals[keys.UPDATES_APPLIED]
    counter_totals[keys.ASYNC_ROUNDS] = counter_totals.get(keys.PS_PUSHES, 0.0)
    counter_totals[keys.FAULT_INJECTED] = float(server.faults_reported)
    counter_totals[keys.FAULT_WORKER_RESTARTS] = float(restarts)
    counter_totals[keys.FAULT_REPARTITIONS] = float(repartitions)
    counter_totals[keys.FAULT_DEGRADED_EPOCHS] = float(degraded_epochs)
    for key, value in counter_totals.items():
        tel.count(key, value)
    tel.set_gauge(keys.WALL_SECONDS_PER_EPOCH, wall_per_epoch)
    tel.set_gauge(keys.WALL_SECONDS_TOTAL, wall_total)
    if counter_totals[keys.UPDATES_APPLIED]:
        tel.set_gauge(
            keys.PS_PULL_ROUNDS_PER_UPDATE,
            counter_totals.get(keys.PS_PULL_ROUNDS, 0.0)
            / counter_totals[keys.UPDATES_APPLIED],
        )

    return PsTrainResult(
        curve=curve,
        params=params,
        nodes=requested_nodes,
        shards=shards,
        batch_size=schedule.batch_size,
        max_staleness=schedule.max_staleness,
        epochs_run=epochs_run,
        diverged=diverged,
        wall_seconds_per_epoch=wall_per_epoch,
        wall_seconds_total=wall_total,
        counters=counter_totals,
        nodes_final=active_nodes,
        restarts=restarts,
        repartitions=repartitions,
        degraded_epochs=degraded_epochs,
        recovery=recovery_log,
    )
