"""The parameter-server worker: async push/pull SGD over the wire.

Each worker process owns a round-robin partition of the examples and
runs barrier-aligned epochs, exactly like a shared-memory worker — but
where the shm worker reads and scatters against a shared buffer, this
one **pulls** the model over TCP, computes its work item against the
assembled (possibly mixed-version) model, and **pushes** the item's
delta back.  The per-row math is the scalar path of
:meth:`~repro.models.linear.LinearModel.serial_sgd_epoch`, and the
pushed delta is the *negated* update (``(-step*coef)*val``), which the
server applies by addition — IEEE negation and multiplication are
sign-exact, so one worker with ``batch_size=1`` reproduces the serial
trajectory bit for bit (the ordered TCP stream guarantees each push is
applied before the next pull is answered, fused or not).

The wire economics are amortised two ways.  First, the worker keeps a
**shard cache**: the assembled model ``w`` plus the last-seen version
of every shard.  A pull carries that version vector, and the server
re-ships only the shards that moved — the rest come back as 9-byte
cached headers.  The cache invariant is simple: the worker's local
bytes for a shard at version *v* equal the server's bytes at version
*v* (local self-application of a delta always travels with a push that
bumps those very shards past the cached version, so a matching version
implies matching bytes).  Second, the steady-state loop **fuses**
frames: the push of item *k* and the pull for item *k+1* share one
``PUSH_PULL`` round-trip, so one SGD item costs exactly one round-trip
— the first item of an epoch opens with a ``PULL_ALL``, the last one
closes with a fire-and-forget ``PUSH``.

Liveness is the parent's job: every blocking receive here is untimed,
and a dropped connection (the parent tearing the run down, or the
server gone) makes the worker exit quietly — mirroring how shm workers
treat a broken barrier.  Node-level faults fire inside the pass:
``node-kill`` announces itself with a ``FAULT`` frame and hard-exits
mid-pass, ``node-stall`` sleeps past the parent's epoch watchdog.
"""

from __future__ import annotations

import os
import socket
import time

import numpy as np

from ..models.base import Matrix, Model
from ..utils.rng import derive_rng
from . import protocol as wire
from .server import shard_bounds

__all__ = ["worker_main"]

#: Exit code of a worker killed by an injected ``node-kill`` fault
#: (same code the shm backend's ``kill`` fault uses).
FAULT_EXITCODE = 23

_CONNECT_ATTEMPTS = 50
#: First retry delay; doubles per failed attempt (plus jitter) up to
#: the cap, so a reconnect storm after a recovery respawn spreads out
#: instead of hammering the accept queue in lock-step.
_CONNECT_BACKOFF_BASE = 0.05
_CONNECT_BACKOFF_CAP = 1.0


def _connect(host: str, port: int, rng) -> tuple[socket.socket | None, int]:
    """Dial the server with exponential backoff + jitter.

    Returns ``(socket, retries)`` — the retry count rides to the server
    in HELLO's clock slot and lands in ``ps.connect_retries``, so
    reconnect churn is visible in run manifests.
    """
    delay = _CONNECT_BACKOFF_BASE
    retries = 0
    for _ in range(_CONNECT_ATTEMPTS):
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
        except OSError:
            retries += 1
            time.sleep(delay + float(rng.uniform(0.0, delay)))
            delay = min(delay * 2.0, _CONNECT_BACKOFF_CAP)
            continue
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        return sock, retries
    return None, retries


def _apply_shards(
    frame: wire.Frame,
    w: np.ndarray,
    seen: list[int],
    bounds: list[tuple[int, int]],
) -> None:
    """Fold one SHARDS reply into the local model + version cache.

    Cached entries leave ``w``'s bytes alone (the invariant guarantees
    they already match the server at that version); fresh entries
    overwrite the shard slice and advance the cached version.  The
    wire carries no per-shard lengths — the shard layout from
    HELLO_ACK is the decode schema.
    """
    entries = wire.unpack_shards(
        frame.payload, [(hi - lo) * 8 for lo, hi in bounds]
    )
    for shard, (version, payload) in enumerate(entries):
        if payload is not None:
            lo, hi = bounds[shard]
            w[lo:hi] = np.frombuffer(payload, dtype=np.float64)
        seen[shard] = version


def _recv_shards(
    sock: socket.socket,
    w: np.ndarray,
    seen: list[int],
    bounds: list[tuple[int, int]],
) -> None:
    frame = wire.recv_frame(sock)
    if frame is None or frame.msg_type != wire.MSG_SHARDS:
        raise wire.WireProtocolError("pull was not answered with a SHARDS reply")
    _apply_shards(frame, w, seen, bounds)


def _pull_all(
    sock: socket.socket,
    w: np.ndarray,
    seen: list[int],
    bounds: list[tuple[int, int]],
    clock: int,
) -> None:
    """One full-model pull in a single round-trip (versioned)."""
    wire.send_frame(
        sock, wire.MSG_PULL_ALL, clock=clock, payload=wire.pack_versions(seen)
    )
    _recv_shards(sock, w, seen, bounds)


def _epoch_barrier(sock: socket.socket, epoch: int) -> bool:
    """Announce the finished epoch; block for the ack.  True = stop."""
    wire.send_frame(sock, wire.MSG_EPOCH_DONE, clock=epoch)
    while True:
        frame = wire.recv_frame(sock)
        if frame is None:
            return True  # server gone: the run is over either way
        if frame.msg_type == wire.MSG_EPOCH_ACK:
            return bool(frame.ident)


def worker_main(
    host: str,
    port: int,
    model: Model,
    X: Matrix,
    y: np.ndarray,
    part: np.ndarray,
    n_workers: int,
    worker_id: int,
    step: float,
    max_epochs: int,
    batch_size: int,
    seed: int,
    faults: tuple = (),
    epoch_offset: int = 0,
) -> None:
    """One worker process: epochs of pull/compute/push over *part*.

    *faults* is this worker's resolved slice of the run's node-fault
    plan (``node-kill`` / ``node-stall`` specs from
    :meth:`repro.faults.FaultPlan.resolve_nodes`).
    """
    sock, connect_retries = _connect(
        host, port, derive_rng(seed, f"ps-connect/{n_workers}/{worker_id}")
    )
    if sock is None:
        return
    try:
        wire.send_frame(
            sock, wire.MSG_HELLO, ident=worker_id, clock=connect_retries
        )
        ack = wire.recv_frame(sock)
        if ack is None or ack.msg_type != wire.MSG_HELLO_ACK:
            return
        n_params, n_shards, _ = wire.unpack_hello_ack(ack.payload)
        bounds = shard_bounds(n_params, n_shards)
        w = np.empty(n_params, dtype=np.float64)
        # The shard cache: last server version this worker holds for
        # each shard.  The NEVER sentinel forces full payloads on the
        # first pull (and after a recovery respawn rebuilds the pool —
        # a fresh process starts with an empty cache, so repartition
        # can never resurrect pre-recovery bytes).
        seen = [wire.VERSION_NEVER] * n_shards

        rng = derive_rng(seed, f"ps/{n_workers}/{worker_id}")
        dmargin = model._dmargin_scalar
        sparse = hasattr(X, "indptr")
        if sparse:
            indptr, indices, data = X.indptr, X.indices, X.data
            Xd = None
        else:
            Xd = np.asarray(X, dtype=np.float64)
        items_done = 0

        # Registration doubles as the first barrier: the parent's
        # release of epoch ``epoch_offset + 1`` starts the pass.
        if _epoch_barrier(sock, epoch_offset):
            wire.send_frame(sock, wire.MSG_BYE)
            return

        for local_epoch in range(max_epochs):
            epoch = epoch_offset + local_epoch + 1
            kill_item = None
            sleep_seconds = 0.0
            for spec in faults:
                if spec["epoch"] != epoch:
                    continue
                if spec["kind"] == "node-kill":
                    # Die halfway through the pass: the pushes already
                    # applied stay applied, like a real node crash.
                    kill_item = -(-part.shape[0] // batch_size) // 2
                elif spec["kind"] == "node-stall":
                    sleep_seconds += spec["seconds"]
            order = part[rng.permutation(part.shape[0])]
            n_items = -(-order.shape[0] // batch_size)
            # The version cache survives the epoch barrier: versions
            # are monotonic and an out-of-band rewrite (NaN scrub)
            # bumps every shard, so a matching version is still a
            # matching model.  Only the *first* item of the run pays a
            # full pull; every later epoch opens on warm cache.
            pulled = False
            for item, lo in enumerate(range(0, order.shape[0], batch_size)):
                if item == kill_item:
                    wire.send_frame(sock, wire.MSG_FAULT, ident=1, clock=epoch)
                    os._exit(FAULT_EXITCODE)
                rows = order[lo : lo + batch_size]
                if not pulled:
                    # Epoch-opening pull: one round-trip for all shards.
                    _pull_all(sock, w, seen, bounds, items_done)
                    pulled = True
                if sparse:
                    idx_parts: list[np.ndarray] = []
                    val_parts: list[np.ndarray] = []
                    for i in rows:
                        a, b = indptr[i], indptr[i + 1]
                        if a == b:
                            continue
                        idx = indices[a:b]
                        val = data[a:b]
                        yi = y[i]
                        margin = val @ w[idx]
                        coef = yi * dmargin(yi * margin)
                        if coef == 0.0:
                            continue
                        delta = (-step * coef) * val
                        w[idx] += delta  # later rows in the item see it
                        idx_parts.append(idx)
                        val_parts.append(delta)
                    if idx_parts:
                        payload = wire.pack_push(
                            np.concatenate(idx_parts), np.concatenate(val_parts)
                        )
                    else:
                        payload = wire.pack_push_empty()
                else:
                    acc = None
                    for i in rows:
                        xi = Xd[i]
                        yi = y[i]
                        margin = xi @ w
                        coef = yi * dmargin(yi * margin)
                        if coef == 0.0:
                            continue
                        delta = (-step * coef) * xi
                        w += delta
                        acc = delta.copy() if acc is None else acc + delta
                    # A delta-free item ships the 1-byte empty marker,
                    # never an n_params zero vector: the clock still
                    # advances, no shard version moves.
                    payload = (
                        wire.pack_push(None, acc)
                        if acc is not None
                        else wire.pack_push_empty()
                    )
                items_done += 1
                if item + 1 < n_items:
                    # Steady state: fuse this item's push with the next
                    # item's pull — one round-trip covers both.
                    wire.send_frame(
                        sock,
                        wire.MSG_PUSH_PULL,
                        ident=int(rows.shape[0]),
                        clock=items_done,
                        payload=wire.pack_push_pull(payload, seen),
                    )
                    _recv_shards(sock, w, seen, bounds)
                else:
                    # Last item of the pass: nothing left to pull, so
                    # the push travels alone (fire-and-forget; the
                    # ordered stream applies it before EPOCH_DONE).
                    wire.send_frame(
                        sock,
                        wire.MSG_PUSH,
                        ident=int(rows.shape[0]),
                        clock=items_done,
                        payload=payload,
                    )
            if sleep_seconds:
                wire.send_frame(sock, wire.MSG_FAULT, ident=2, clock=epoch)
                time.sleep(sleep_seconds)
            if _epoch_barrier(sock, epoch):
                break
        wire.send_frame(sock, wire.MSG_BYE)
    except (wire.WireProtocolError, ConnectionError, OSError):
        # The parent owns liveness: a dropped wire means teardown.
        return
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover - defensive
            pass
