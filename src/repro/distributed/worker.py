"""The parameter-server worker: async push/pull SGD over the wire.

Each worker process owns a round-robin partition of the examples and
runs barrier-aligned epochs, exactly like a shared-memory worker — but
where the shm worker reads and scatters against a shared buffer, this
one **pulls** the model over TCP, computes its work item against the
assembled (possibly mixed-version) model, and **pushes** the item's
delta back.  The per-row math is the scalar path of
:meth:`~repro.models.linear.LinearModel.serial_sgd_epoch`, and the
pushed delta is the *negated* update (``(-step*coef)*val``), which the
server applies by addition — IEEE negation and multiplication are
sign-exact, so one worker with ``batch_size=1`` reproduces the serial
trajectory bit for bit (the ordered TCP stream guarantees each push is
applied before the next pull is answered, fused or not).

The wire economics are amortised two ways.  First, the worker keeps a
**shard cache**: the assembled model ``w`` plus the last-seen version
of every shard.  A pull carries that version vector, and the server
re-ships only the shards that moved — the rest come back as 9-byte
cached headers.  The cache invariant is simple: the worker's local
bytes for a shard at version *v* equal the server's bytes at version
*v* (local self-application of a delta always travels with a push that
bumps those very shards past the cached version, so a matching version
implies matching bytes).  Second, the steady-state loop **fuses**
frames: the push of item *k* and the pull for item *k+1* share one
``PUSH_PULL`` round-trip, so one SGD item costs exactly one round-trip
— the first item of an epoch opens with a ``PULL_ALL``, the last one
closes with a fire-and-forget ``PUSH``.

A dropped wire is healed, not fatal.  Every send and receive runs
inside a reconnect-and-resume loop: on a connection error the worker
redials (through the same seeded-jitter backoff as the first dial —
one ``derive_rng`` stream per worker id covers the worker's whole
dialling life), re-registers with the ``HELLO`` mid-run flag, and the
server answers with the worker's **resume clock** — the last work-item
count whose push was actually applied.  The worker rewinds its epoch
pass to that clock, invalidates the shard cache (``VERSION_NEVER``
forces full payloads — a failed-over server's versions restart from
the checkpoint, so cached bytes may no longer match), and replays
forward.  A push that never landed is recomputed; a push that landed
is never re-sent — exactly-once, both ways.  The redial re-reads the
server address from the parent's shared port cell each attempt, so a
crash-restart failover onto a fresh port heals transparently.

Fault injection lives at two levels.  Node-level faults fire inside
the pass: ``node-kill`` announces itself with a ``FAULT`` frame and
hard-exits mid-pass, ``node-stall`` sleeps past the parent's epoch
watchdog.  Wire-level faults (``conn-drop`` / ``frame-delay`` /
``frame-corrupt``) are armed on the worker's
:class:`~repro.distributed.lossy.FaultyWire` wrapper at a seeded item
of the spec's epoch and fire on the next outgoing frame; the fired
flag survives the rewind, so a replayed item never re-injects.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Callable

import numpy as np

from ..models.base import Matrix, Model
from ..utils.rng import derive_rng
from . import protocol as wire
from .lossy import WIRE_FAULT_IDENTS, FaultyWire
from .server import shard_bounds

__all__ = ["worker_main"]

#: Exit code of a worker killed by an injected ``node-kill`` fault
#: (same code the shm backend's ``kill`` fault uses).
FAULT_EXITCODE = 23

_CONNECT_ATTEMPTS = 50
#: Full connect-plus-HELLO cycles one dial may burn before giving up:
#: a connection accepted by a server that dies before answering the
#: handshake is a retry, not a rejection.
_HANDSHAKE_ATTEMPTS = 5
#: First retry delay; doubles per failed attempt (plus jitter) up to
#: the cap, so a reconnect storm after a recovery respawn — or a
#: server failover — spreads out instead of hammering the accept
#: queue in lock-step.
_CONNECT_BACKOFF_BASE = 0.05
_CONNECT_BACKOFF_CAP = 1.0

#: Wire failures the reconnect-and-resume loop heals in place.
_HEAL_ERRORS = (wire.WireProtocolError, ConnectionError, OSError)


def _connect(
    host: str, port_of: Callable[[], int], rng
) -> tuple[socket.socket | None, int]:
    """Dial the server with exponential backoff + jitter.

    *port_of* is re-evaluated on every attempt: during a crash-restart
    failover the parent publishes the respawned server's port through a
    shared cell, and the very next attempt dials the new address.
    Returns ``(socket, retries)`` — the retry count rides to the server
    in HELLO's clock slot and lands in ``ps.connect_retries``, so
    reconnect churn is visible in run manifests.
    """
    delay = _CONNECT_BACKOFF_BASE
    retries = 0
    for _ in range(_CONNECT_ATTEMPTS):
        try:
            sock = socket.create_connection((host, port_of()), timeout=5.0)
        except OSError:
            retries += 1
            time.sleep(delay + float(rng.uniform(0.0, delay)))
            delay = min(delay * 2.0, _CONNECT_BACKOFF_CAP)
            continue
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        return sock, retries
    return None, retries


class _ServerLink:
    """The worker's connection to the server, across its whole life.

    Owns the dial RNG (one seeded jitter stream per worker id — the
    first dial and every mid-run redial draw from it), the
    :class:`FaultyWire` wrapper (armed faults and the corrupt-byte RNG
    survive reconnects), and the shard layout learned from the first
    HELLO_ACK.
    """

    def __init__(
        self, host: str, port_cell, n_workers: int, worker_id: int, seed: int
    ) -> None:
        self.host = host
        self._port_cell = port_cell
        self.worker_id = worker_id
        self._dial_rng = derive_rng(
            seed, f"ps-connect/{n_workers}/{worker_id}"
        )
        #: Seeds both the wire faults' target items and the corrupt
        #: byte positions — one stream, pure function of (seed, ids).
        self.wire_rng = derive_rng(seed, f"ps-wire/{n_workers}/{worker_id}")
        self.wire = FaultyWire(None, self.wire_rng)
        self.n_params: int | None = None
        self.n_shards: int | None = None
        self.bounds: list[tuple[int, int]] | None = None

    @property
    def port(self) -> int:
        cell = self._port_cell
        return int(cell.value) if hasattr(cell, "value") else int(cell)

    def dial(self, *, midrun: bool = False) -> int | None:
        """Connect and register; returns the resume clock.

        A connection that opens but dies during the HELLO handshake
        (the narrow window where a worker redials a server that is
        itself going down) is retried through the same backoff
        schedule, not treated as a rejection.  ``None`` means the
        server stayed unreachable through the whole schedule — the
        worker exits quietly and the parent's watchdog owns what
        happens next.
        """
        for _ in range(_HANDSHAKE_ATTEMPTS):
            sock, retries = _connect(
                self.host, lambda: self.port, self._dial_rng
            )
            if sock is None:
                return None
            self.wire.attach(sock)
            try:
                wire.send_frame(
                    self.wire,
                    wire.MSG_HELLO,
                    ident=self.worker_id,
                    clock=retries,
                    payload=bytes([wire.HELLO_MIDRUN]) if midrun else b"",
                )
                ack = wire.recv_frame(self.wire)
            except _HEAL_ERRORS:
                ack = None
            if ack is None or ack.msg_type != wire.MSG_HELLO_ACK:
                self.close()
                time.sleep(
                    _CONNECT_BACKOFF_BASE
                    + float(self._dial_rng.uniform(0.0, _CONNECT_BACKOFF_BASE))
                )
                continue
            n_params, n_shards, _, resume = wire.unpack_hello_ack(ack.payload)
            if self.bounds is None:
                self.n_params = n_params
                self.n_shards = n_shards
                self.bounds = shard_bounds(n_params, n_shards)
            return resume
        return None

    def close(self) -> None:
        try:
            self.wire.close()
        except OSError:  # pragma: no cover - defensive
            pass


def _apply_shards(
    frame: wire.Frame,
    w: np.ndarray,
    seen: list[int],
    bounds: list[tuple[int, int]],
) -> None:
    """Fold one SHARDS reply into the local model + version cache.

    Cached entries leave ``w``'s bytes alone (the invariant guarantees
    they already match the server at that version); fresh entries
    overwrite the shard slice and advance the cached version.  The
    wire carries no per-shard lengths — the shard layout from
    HELLO_ACK is the decode schema.
    """
    entries = wire.unpack_shards(
        frame.payload, [(hi - lo) * 8 for lo, hi in bounds]
    )
    for shard, (version, payload) in enumerate(entries):
        if payload is not None:
            lo, hi = bounds[shard]
            w[lo:hi] = np.frombuffer(payload, dtype=np.float64)
        seen[shard] = version


def _recv_shards(
    sock,
    w: np.ndarray,
    seen: list[int],
    bounds: list[tuple[int, int]],
) -> None:
    frame = wire.recv_frame(sock)
    if frame is None:
        raise ConnectionResetError("server closed the connection mid-pull")
    if frame.msg_type != wire.MSG_SHARDS:
        raise wire.WireProtocolError("pull was not answered with a SHARDS reply")
    _apply_shards(frame, w, seen, bounds)


def _pull_all(
    sock,
    w: np.ndarray,
    seen: list[int],
    bounds: list[tuple[int, int]],
    clock: int,
) -> None:
    """One full-model pull in a single round-trip (versioned)."""
    wire.send_frame(
        sock, wire.MSG_PULL_ALL, clock=clock, payload=wire.pack_versions(seen)
    )
    _recv_shards(sock, w, seen, bounds)


def _epoch_barrier(sock, epoch: int) -> bool:
    """Announce the finished epoch; block for the ack.  True = stop.

    A connection closed while waiting raises (instead of quietly
    stopping): mid-run that is a failing-over server, and the heal
    loop re-announces the epoch on the fresh connection.
    """
    wire.send_frame(sock, wire.MSG_EPOCH_DONE, clock=epoch)
    while True:
        frame = wire.recv_frame(sock)
        if frame is None:
            raise ConnectionResetError("server closed the connection at the barrier")
        if frame.msg_type == wire.MSG_EPOCH_ACK:
            return bool(frame.ident)


def worker_main(
    host: str,
    port,
    model: Model,
    X: Matrix,
    y: np.ndarray,
    part: np.ndarray,
    n_workers: int,
    worker_id: int,
    step: float,
    max_epochs: int,
    batch_size: int,
    seed: int,
    faults: tuple = (),
    epoch_offset: int = 0,
    wire_faults: tuple = (),
) -> None:
    """One worker process: epochs of pull/compute/push over *part*.

    *port* is either a plain int or a shared cell with a ``.value``
    (the parent's failover broadcast).  *faults* is this worker's
    resolved slice of the run's node-fault plan (``node-kill`` /
    ``node-stall``), *wire_faults* its slice of the wire-fault plan
    (``conn-drop`` / ``frame-delay`` / ``frame-corrupt`` from
    :meth:`repro.faults.FaultPlan.resolve_wire`).
    """
    link = _ServerLink(host, port, n_workers, worker_id, seed)
    if link.dial() is None:
        return
    sock = link.wire
    try:
        bounds = link.bounds
        n_shards = link.n_shards
        w = np.empty(link.n_params, dtype=np.float64)
        # The shard cache: last server version this worker holds for
        # each shard.  The NEVER sentinel forces full payloads on the
        # first pull (and after a recovery respawn rebuilds the pool —
        # a fresh process starts with an empty cache, so repartition
        # can never resurrect pre-recovery bytes).
        seen = [wire.VERSION_NEVER] * n_shards

        rng = derive_rng(seed, f"ps/{n_workers}/{worker_id}")
        dmargin = model._dmargin_scalar
        sparse = hasattr(X, "indptr")
        if sparse:
            indptr, indices, data = X.indptr, X.indices, X.data
            Xd = None
        else:
            Xd = np.asarray(X, dtype=np.float64)
        items_done = 0
        wire_specs = [
            dict(spec, fired=False, item=None) for spec in wire_faults
        ]

        # Registration doubles as the first barrier: the parent's
        # release of epoch ``epoch_offset + 1`` starts the pass.
        while True:
            try:
                if _epoch_barrier(sock, epoch_offset):
                    wire.send_frame(sock, wire.MSG_BYE)
                    return
                break
            except _HEAL_ERRORS:
                resume = link.dial(midrun=True)
                if resume is None:
                    return
                items_done = resume

        stop = False
        for local_epoch in range(max_epochs):
            epoch = epoch_offset + local_epoch + 1
            kill_item = None
            sleep_seconds = 0.0
            for spec in faults:
                if spec["epoch"] != epoch:
                    continue
                if spec["kind"] == "node-kill":
                    # Die halfway through the pass: the pushes already
                    # applied stay applied, like a real node crash.
                    kill_item = -(-part.shape[0] // batch_size) // 2
                elif spec["kind"] == "node-stall":
                    sleep_seconds += spec["seconds"]
            order = part[rng.permutation(part.shape[0])]
            n_items = -(-order.shape[0] // batch_size)
            for spec in wire_specs:
                if spec["epoch"] == epoch and spec["item"] is None:
                    # Seeded target item, drawn once when the epoch
                    # arrives — a rewind replays the pass but never
                    # redraws (or refires: the fired flag survives).
                    spec["item"] = int(link.wire_rng.integers(n_items))
            # The version cache survives the epoch barrier: versions
            # are monotonic and an out-of-band rewrite (NaN scrub)
            # bumps every shard, so a matching version is still a
            # matching model.  Only the *first* item of the run pays a
            # full pull; every later epoch opens on warm cache.
            pulled = False
            epoch_base = items_done
            item = 0
            while True:
                try:
                    while item < n_items:
                        if item == kill_item:
                            wire.send_frame(
                                sock, wire.MSG_FAULT, ident=1, clock=epoch
                            )
                            os._exit(FAULT_EXITCODE)
                        for spec in wire_specs:
                            if (
                                spec["epoch"] == epoch
                                and spec["item"] == item
                                and not spec["fired"]
                            ):
                                # Announce on the healthy wire (the
                                # injection count must survive the
                                # fault), then arm: the next outgoing
                                # frame is the one it hits.
                                spec["fired"] = True
                                wire.send_frame(
                                    sock,
                                    wire.MSG_FAULT,
                                    ident=WIRE_FAULT_IDENTS[spec["kind"]],
                                    clock=epoch,
                                )
                                link.wire.arm(spec["kind"], spec["seconds"])
                        rows = order[item * batch_size : (item + 1) * batch_size]
                        if not pulled:
                            # Epoch-opening pull: one round-trip for
                            # all shards.
                            _pull_all(sock, w, seen, bounds, items_done)
                            pulled = True
                        if sparse:
                            idx_parts: list[np.ndarray] = []
                            val_parts: list[np.ndarray] = []
                            for i in rows:
                                a, b = indptr[i], indptr[i + 1]
                                if a == b:
                                    continue
                                idx = indices[a:b]
                                val = data[a:b]
                                yi = y[i]
                                margin = val @ w[idx]
                                coef = yi * dmargin(yi * margin)
                                if coef == 0.0:
                                    continue
                                delta = (-step * coef) * val
                                w[idx] += delta  # later rows in the item see it
                                idx_parts.append(idx)
                                val_parts.append(delta)
                            if idx_parts:
                                payload = wire.pack_push(
                                    np.concatenate(idx_parts),
                                    np.concatenate(val_parts),
                                )
                            else:
                                payload = wire.pack_push_empty()
                        else:
                            acc = None
                            for i in rows:
                                xi = Xd[i]
                                yi = y[i]
                                margin = xi @ w
                                coef = yi * dmargin(yi * margin)
                                if coef == 0.0:
                                    continue
                                delta = (-step * coef) * xi
                                w += delta
                                acc = delta.copy() if acc is None else acc + delta
                            # A delta-free item ships the 1-byte empty
                            # marker, never an n_params zero vector:
                            # the clock still advances, no shard
                            # version moves.
                            payload = (
                                wire.pack_push(None, acc)
                                if acc is not None
                                else wire.pack_push_empty()
                            )
                        items_done += 1
                        if item + 1 < n_items:
                            # Steady state: fuse this item's push with
                            # the next item's pull — one round-trip
                            # covers both.
                            wire.send_frame(
                                sock,
                                wire.MSG_PUSH_PULL,
                                ident=int(rows.shape[0]),
                                clock=items_done,
                                payload=wire.pack_push_pull(payload, seen),
                            )
                            _recv_shards(sock, w, seen, bounds)
                        else:
                            # Last item of the pass: nothing left to
                            # pull, so the push travels alone
                            # (fire-and-forget; the ordered stream
                            # applies it before EPOCH_DONE).
                            wire.send_frame(
                                sock,
                                wire.MSG_PUSH,
                                ident=int(rows.shape[0]),
                                clock=items_done,
                                payload=payload,
                            )
                        item += 1
                    if sleep_seconds:
                        wire.send_frame(sock, wire.MSG_FAULT, ident=2, clock=epoch)
                        time.sleep(sleep_seconds)
                        sleep_seconds = 0.0  # a heal must not re-stall
                    stop = _epoch_barrier(sock, epoch)
                    break
                except _HEAL_ERRORS:
                    # Reconnect-and-resume: re-register mid-run, rewind
                    # to the server's resume clock (the last item whose
                    # push was applied) and replay forward.  The cache
                    # is invalidated — a restored server's versions
                    # restart from the checkpoint, so matching numbers
                    # would no longer mean matching bytes.
                    resume = link.dial(midrun=True)
                    if resume is None:
                        return
                    items_done = resume
                    item = min(max(resume - epoch_base, 0), n_items)
                    pulled = False
                    seen = [wire.VERSION_NEVER] * n_shards
            if stop:
                break
        wire.send_frame(sock, wire.MSG_BYE)
    except _HEAL_ERRORS:
        # The parent owns liveness: a wire that cannot be healed means
        # the run is being torn down (or recovered) around us.
        return
    finally:
        link.close()
