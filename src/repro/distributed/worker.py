"""The parameter-server worker: async push/pull SGD over the wire.

Each worker process owns a round-robin partition of the examples and
runs barrier-aligned epochs, exactly like a shared-memory worker — but
where the shm worker reads and scatters against a shared buffer, this
one **pulls** every shard over TCP, computes its work item against the
assembled (possibly mixed-version) model, and **pushes** the item's
delta back.  The per-row math is the scalar path of
:meth:`~repro.models.linear.LinearModel.serial_sgd_epoch`, and the
pushed delta is the *negated* update (``(-step*coef)*val``), which the
server applies by addition — IEEE negation and multiplication are
sign-exact, so one worker with ``batch_size=1`` reproduces the serial
trajectory bit for bit (the ordered TCP stream guarantees each push is
applied before the next pull is answered).

Liveness is the parent's job: every blocking receive here is untimed,
and a dropped connection (the parent tearing the run down, or the
server gone) makes the worker exit quietly — mirroring how shm workers
treat a broken barrier.  Node-level faults fire inside the pass:
``node-kill`` announces itself with a ``FAULT`` frame and hard-exits
mid-pass, ``node-stall`` sleeps past the parent's epoch watchdog.
"""

from __future__ import annotations

import os
import socket
import time

import numpy as np

from ..models.base import Matrix, Model
from ..utils.rng import derive_rng
from . import protocol as wire
from .server import shard_bounds

__all__ = ["worker_main"]

#: Exit code of a worker killed by an injected ``node-kill`` fault
#: (same code the shm backend's ``kill`` fault uses).
FAULT_EXITCODE = 23

_CONNECT_ATTEMPTS = 50
_CONNECT_RETRY_SLEEP = 0.1


def _connect(host: str, port: int) -> socket.socket | None:
    for _ in range(_CONNECT_ATTEMPTS):
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
        except OSError:
            time.sleep(_CONNECT_RETRY_SLEEP)
            continue
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        return sock
    return None


def _pull_model(
    sock: socket.socket,
    w: np.ndarray,
    bounds: list[tuple[int, int]],
    clock: int,
) -> None:
    """Assemble the full model from one PULL per shard, in shard order.

    The assembly is *not* a consistent snapshot — pushes land between
    the pulls — which is precisely the asynchrony being measured.
    """
    for shard, (lo, hi) in enumerate(bounds):
        wire.send_frame(sock, wire.MSG_PULL, ident=shard, clock=clock)
        frame = wire.recv_frame(sock)
        if frame is None or frame.msg_type != wire.MSG_SHARD:
            raise wire.WireProtocolError("PULL was not answered with a SHARD")
        w[lo:hi] = np.frombuffer(frame.payload, dtype=np.float64)


def _epoch_barrier(sock: socket.socket, epoch: int) -> bool:
    """Announce the finished epoch; block for the ack.  True = stop."""
    wire.send_frame(sock, wire.MSG_EPOCH_DONE, clock=epoch)
    while True:
        frame = wire.recv_frame(sock)
        if frame is None:
            return True  # server gone: the run is over either way
        if frame.msg_type == wire.MSG_EPOCH_ACK:
            return bool(frame.ident)


def worker_main(
    host: str,
    port: int,
    model: Model,
    X: Matrix,
    y: np.ndarray,
    part: np.ndarray,
    n_workers: int,
    worker_id: int,
    step: float,
    max_epochs: int,
    batch_size: int,
    seed: int,
    faults: tuple = (),
    epoch_offset: int = 0,
) -> None:
    """One worker process: epochs of pull/compute/push over *part*.

    *faults* is this worker's resolved slice of the run's node-fault
    plan (``node-kill`` / ``node-stall`` specs from
    :meth:`repro.faults.FaultPlan.resolve_nodes`).
    """
    sock = _connect(host, port)
    if sock is None:
        return
    try:
        wire.send_frame(sock, wire.MSG_HELLO, ident=worker_id)
        ack = wire.recv_frame(sock)
        if ack is None or ack.msg_type != wire.MSG_HELLO_ACK:
            return
        n_params, n_shards, _ = wire.unpack_hello_ack(ack.payload)
        bounds = shard_bounds(n_params, n_shards)
        w = np.empty(n_params, dtype=np.float64)

        rng = derive_rng(seed, f"ps/{n_workers}/{worker_id}")
        dmargin = model._dmargin_scalar
        sparse = hasattr(X, "indptr")
        if sparse:
            indptr, indices, data = X.indptr, X.indices, X.data
            Xd = None
        else:
            Xd = np.asarray(X, dtype=np.float64)
        empty_idx = np.empty(0, dtype=np.int64)
        empty_val = np.empty(0, dtype=np.float64)
        items_done = 0

        # Registration doubles as the first barrier: the parent's
        # release of epoch ``epoch_offset + 1`` starts the pass.
        if _epoch_barrier(sock, epoch_offset):
            wire.send_frame(sock, wire.MSG_BYE)
            return

        for local_epoch in range(max_epochs):
            epoch = epoch_offset + local_epoch + 1
            kill_item = None
            sleep_seconds = 0.0
            for spec in faults:
                if spec["epoch"] != epoch:
                    continue
                if spec["kind"] == "node-kill":
                    # Die halfway through the pass: the pushes already
                    # applied stay applied, like a real node crash.
                    kill_item = -(-part.shape[0] // batch_size) // 2
                elif spec["kind"] == "node-stall":
                    sleep_seconds += spec["seconds"]
            order = part[rng.permutation(part.shape[0])]
            for item, lo in enumerate(range(0, order.shape[0], batch_size)):
                if item == kill_item:
                    wire.send_frame(sock, wire.MSG_FAULT, ident=1, clock=epoch)
                    os._exit(FAULT_EXITCODE)
                rows = order[lo : lo + batch_size]
                _pull_model(sock, w, bounds, items_done)
                if sparse:
                    idx_parts: list[np.ndarray] = []
                    val_parts: list[np.ndarray] = []
                    for i in rows:
                        a, b = indptr[i], indptr[i + 1]
                        if a == b:
                            continue
                        idx = indices[a:b]
                        val = data[a:b]
                        yi = y[i]
                        margin = val @ w[idx]
                        coef = yi * dmargin(yi * margin)
                        if coef == 0.0:
                            continue
                        delta = (-step * coef) * val
                        w[idx] += delta  # later rows in the item see it
                        idx_parts.append(idx)
                        val_parts.append(delta)
                    payload = wire.pack_push(
                        np.concatenate(idx_parts) if idx_parts else empty_idx,
                        np.concatenate(val_parts) if val_parts else empty_val,
                    )
                else:
                    acc = None
                    for i in rows:
                        xi = Xd[i]
                        yi = y[i]
                        margin = xi @ w
                        coef = yi * dmargin(yi * margin)
                        if coef == 0.0:
                            continue
                        delta = (-step * coef) * xi
                        w += delta
                        acc = delta.copy() if acc is None else acc + delta
                    payload = wire.pack_push(
                        None, acc if acc is not None else np.zeros(n_params)
                    )
                items_done += 1
                # The empty-delta push still travels: it advances the
                # worker's clock and keeps the row accounting exact.
                wire.send_frame(
                    sock,
                    wire.MSG_PUSH,
                    ident=int(rows.shape[0]),
                    clock=items_done,
                    payload=payload,
                )
            if sleep_seconds:
                wire.send_frame(sock, wire.MSG_FAULT, ident=2, clock=epoch)
                time.sleep(sleep_seconds)
            if _epoch_barrier(sock, epoch):
                break
        wire.send_frame(sock, wire.MSG_BYE)
    except (wire.WireProtocolError, ConnectionError, OSError):
        # The parent owns liveness: a dropped wire means teardown.
        return
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover - defensive
            pass
