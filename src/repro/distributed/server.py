"""The sharded parameter server: one accept loop, shard locks, a gate.

The server owns the model as one float64 vector split into ``S``
contiguous shards, each guarded by its own lock, and serves worker
connections over local TCP (one handler thread per connection, spawned
by a single accept loop).  Three mechanisms make it the paper-shaped
parameter server rather than a plain key-value store:

* **Shard locks + version counters** — every shard carries a
  monotonic version, bumped on each push that touches it.  A pull
  copies one shard (and reads its version) under that shard's lock; a
  PUSH applies its delta shard-by-shard, taking each lock in shard
  order.  Pulls of different shards interleave freely with pushes, so
  a worker's assembled model can mix shard versions — the asynchrony
  the simulator models, now measured on a real wire.  A ``PULL_ALL``
  (or the pull half of a fused ``PUSH_PULL``) carries the worker's
  last-seen version vector, and any shard whose version still matches
  is answered with a 9-byte cached header instead of its float64
  payload (``ps.shard_cache_hits`` / ``ps.bytes_saved``) — in steady
  state one work item costs one round-trip and only the bytes that
  changed.
* **The bounded-staleness gate** — every worker carries a clock (work
  items completed); a PULL from a worker more than ``max_staleness``
  items ahead of the slowest *live, still-running* worker blocks until
  the stragglers catch up.  ``max_staleness=None`` is Zhao & Li's
  fast-async regime (never block); ``0`` is lock-step.  Workers
  waiting at the epoch barrier (or dead, or cleanly done) leave the
  gate's minimum, so the gate can never deadlock: the slowest running
  worker is, by construction, never blocked.
* **Dead-worker reaping** — a connection that drops without a clean
  ``BYE`` is reaped: its clock leaves the staleness gate (waking any
  pull blocked on the corpse), its registry slot is freed, and the
  reap is counted (``ps.dead_workers_reaped``).  The *parent* watches
  the worker processes themselves and drives recovery; the server's
  reaping only guarantees the gate and the epoch barrier never wait on
  a ghost.

Epoch alignment mirrors the shm backend's barriers: a worker that
finishes its pass sends ``EPOCH_DONE`` and blocks on the reply; the
parent waits until every live worker has arrived
(:meth:`ShardServer.epoch_reached`), evaluates the loss on a quiescent
snapshot, then :meth:`releases <ShardServer.release_epoch>` the next
epoch — at which point every handler sends its ``EPOCH_ACK``.  All
pushes of a worker precede its ``EPOCH_DONE`` on the same ordered TCP
stream, so "every live worker arrived" implies "every delta applied":
the parent's snapshot is consistent without stopping the world.

Surviving its own death
-----------------------
Three additions make the server itself a survivable component rather
than the tier's single point of failure:

* **Checkpointing** — with a :class:`~repro.distributed.checkpoint.
  CheckpointPolicy`, a background writer persists a *consistent cut*
  (model + shard versions + released epoch + per-worker clocks, all
  captured under the shard locks and the registry mutex) every N
  pushes or T seconds; the parent forces an additional flush at each
  epoch boundary.  Writes are atomic (``mkstemp`` + ``os.replace``),
  counted under ``ps.checkpoints_written``.
* **Restore + resume clocks** — a fresh server seeded with a decoded
  :class:`~repro.distributed.checkpoint.CheckpointState` starts from
  the checkpointed model, versions and released epoch, and remembers
  each worker's work-item clock.  A worker reconnecting mid-run (the
  ``HELLO`` mid-run flag) is answered with its resume clock and counted
  under ``ps.reconnects_midrun``; it rewinds to that clock and replays
  forward, so the item whose push never landed is recomputed, never
  lost and never double-applied.
* **Planned server faults** — a standalone server (its own process,
  see :mod:`repro.distributed.supervisor`) accepts resolved
  ``server-kill`` / ``server-stall`` specs and fires them halfway
  through the spec's epoch (by push count): a kill is a real
  ``SIGKILL`` to its own process, a stall wedges every handler —
  including the control plane, so the parent's liveness probe times
  out and both kinds exercise the same failover path.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import socket
import struct
import threading
import time
from typing import Any, Sequence

import numpy as np

from ..telemetry import keys
from ..utils.errors import ConfigurationError
from . import protocol as wire
from .checkpoint import CheckpointPolicy, CheckpointState, write_checkpoint

__all__ = ["ShardServer", "shard_bounds", "default_ps_shards"]

_log = logging.getLogger(__name__)

#: Handler threads block at most this long per gate/barrier wait slice,
#: re-checking for shutdown — keeps teardown prompt even with a wedged
#: peer on the other end of the condition.
_WAIT_SLICE = 0.2


def default_ps_shards(n_params: int) -> int:
    """Shard count used when the caller does not pick one: enough to
    make pulls genuinely sharded, never more than the model can fill."""
    return max(1, min(8, n_params // 16)) if n_params >= 32 else 1


def shard_bounds(n_params: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` ranges of each shard (sizes differ <= 1)."""
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if shards > n_params:
        raise ConfigurationError(
            f"cannot split {n_params} parameter(s) into {shards} shard(s)"
        )
    edges = np.linspace(0, n_params, shards + 1).astype(np.int64)
    return [(int(edges[s]), int(edges[s + 1])) for s in range(shards)]


class _WorkerRecord:
    """Mutable per-connection registry entry (one per live worker)."""

    __slots__ = ("worker_id", "clock", "epoch_done", "state")

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.clock = 0
        self.epoch_done = -1
        #: ``running`` (mid-pass, participates in the staleness min),
        #: ``barrier`` (at the epoch barrier, exempt), ``dead``.
        self.state = "running"


class ShardServer:
    """Own the shards, accept workers, answer pulls/pushes, keep clocks."""

    def __init__(
        self,
        init_params: np.ndarray,
        shards: int,
        *,
        max_staleness: int | None = None,
        expected_workers: int = 1,
        host: str = "127.0.0.1",
        checkpoint: CheckpointPolicy | None = None,
        restore: CheckpointState | None = None,
        server_faults: Sequence[dict] | None = None,
        pushes_per_epoch: int | None = None,
        standalone: bool = False,
    ) -> None:
        if max_staleness is not None and max_staleness < 0:
            raise ConfigurationError(
                f"max_staleness must be >= 0 or None, got {max_staleness}"
            )
        self._params = np.array(init_params, dtype=np.float64, copy=True)
        self._bounds = shard_bounds(self._params.shape[0], shards)
        self._locks = [threading.Lock() for _ in self._bounds]
        self._versions = [0] * len(self._bounds)
        self.max_staleness = max_staleness

        self._mu = threading.Lock()
        self._cv = threading.Condition(self._mu)
        self._workers: dict[int, _WorkerRecord] = {}
        self._ever_seen: set[int] = set()
        self._expected = expected_workers
        self._released_epoch = 0
        self._stop_flag = False
        self._closing = False
        #: Last known work-item clock of each worker id that is not
        #: currently connected — fed by disconnects and checkpoint
        #: restores, consumed by mid-run reconnect HELLOs.
        self._resume_clocks: dict[int, int] = {}
        #: Flushed into telemetry by the trainer at the end of the run.
        self.counters: dict[str, float] = {
            keys.PS_PULLS: 0.0,
            keys.PS_PULL_ROUNDS: 0.0,
            keys.PS_PUSHES: 0.0,
            keys.PS_SHARD_CACHE_HITS: 0.0,
            keys.PS_BYTES_SENT: 0.0,
            keys.PS_BYTES_RECEIVED: 0.0,
            keys.PS_BYTES_SAVED: 0.0,
            keys.PS_PULL_WAITS: 0.0,
            keys.PS_RECONNECTS: 0.0,
            keys.PS_RECONNECTS_MIDRUN: 0.0,
            keys.PS_CONNECT_RETRIES: 0.0,
            keys.PS_DEAD_WORKERS_REAPED: 0.0,
            keys.PS_FRAMES_REJECTED: 0.0,
            keys.PS_CHECKPOINTS_WRITTEN: 0.0,
            keys.PS_CHECKPOINTS_RESTORED: 0.0,
            keys.PS_HANDLER_THREADS_LEAKED: 0.0,
        }
        self.faults_reported = 0

        if restore is not None:
            if restore.params.shape[0] != self._params.shape[0]:
                raise ConfigurationError(
                    f"checkpoint restores {restore.params.shape[0]} "
                    f"parameter(s) into a {self._params.shape[0]}-parameter "
                    "model"
                )
            if len(restore.versions) != len(self._bounds):
                raise ConfigurationError(
                    f"checkpoint restores {len(restore.versions)} shard "
                    f"version(s) into {len(self._bounds)} shard(s)"
                )
            self._params[:] = restore.params
            self._versions = list(restore.versions)
            self._released_epoch = restore.released_epoch
            self._resume_clocks = dict(restore.clocks)
            self.counters[keys.PS_CHECKPOINTS_RESTORED] = 1.0

        self._server_faults = [dict(s) for s in (server_faults or ())]
        for spec in self._server_faults:
            spec["fired"] = False
        if self._server_faults and not standalone:
            # SIGKILL-to-self must never take down an in-process parent;
            # server faults require the standalone (own-process) server.
            raise ConfigurationError(
                "server faults require a standalone server process"
            )
        if self._server_faults and not pushes_per_epoch:
            raise ConfigurationError(
                "server faults need pushes_per_epoch to pick a firing point"
            )
        self._standalone = standalone
        self._pushes_per_epoch = pushes_per_epoch
        self._pushes_this_epoch = 0
        self._stall_until = 0.0
        #: Set by a ``CTRL_SHUTDOWN`` frame; a standalone server's main
        #: loop waits on it (the handler thread cannot close() itself).
        self.shutdown_event = threading.Event()

        self._ckpt_policy = checkpoint
        self._ckpt_seq = restore.seq + 1 if restore is not None else 1
        self._ckpt_pushes_since = 0
        self._ckpt_event = threading.Event()
        self._ckpt_thread: threading.Thread | None = None

        self._listener = socket.create_server((host, 0))
        self._listener.settimeout(0.2)
        self._conns: set[socket.socket] = set()
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="ps-accept", daemon=True
        )
        self._accept_thread.start()
        if checkpoint is not None:
            os.makedirs(checkpoint.dir, exist_ok=True)
            self._ckpt_thread = threading.Thread(
                target=self._checkpoint_loop, name="ps-ckpt", daemon=True
            )
            self._ckpt_thread.start()

    # -- addressing --------------------------------------------------------

    @property
    def host(self) -> str:
        return self._listener.getsockname()[0]

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    @property
    def n_shards(self) -> int:
        return len(self._bounds)

    @property
    def n_params(self) -> int:
        return int(self._params.shape[0])

    # -- accept loop + per-connection handlers -----------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn.settimeout(None)
            with self._mu:
                if self._closing:
                    conn.close()
                    return
                self._conns.add(conn)
            t = threading.Thread(
                target=self._handle, args=(conn,), name="ps-handler", daemon=True
            )
            self._threads.append(t)
            t.start()

    def _handle(self, conn: socket.socket) -> None:
        record: _WorkerRecord | None = None
        clean = False
        try:
            while True:
                frame = wire.recv_frame(conn)
                if frame is None:
                    return
                self._stall_gate()
                if frame.msg_type in wire.CTRL_TYPES:
                    # Supervision, not training traffic: no HELLO, no
                    # ``ps.bytes_*`` accounting.
                    if self._control(conn, frame):
                        clean = True
                        return
                    continue
                with self._cv:
                    self.counters[keys.PS_BYTES_RECEIVED] += frame.nbytes
                if frame.msg_type == wire.MSG_HELLO:
                    flags = frame.payload[0] if frame.payload else 0
                    record = self._register(
                        conn,
                        frame.ident,
                        frame.clock,
                        midrun=bool(flags & wire.HELLO_MIDRUN),
                    )
                elif record is None:
                    raise wire.WireProtocolError(
                        f"message type {frame.msg_type} before HELLO"
                    )
                elif frame.msg_type == wire.MSG_PULL:
                    self._pull(conn, record, frame)
                elif frame.msg_type == wire.MSG_PULL_ALL:
                    self._pull_all(conn, record, frame)
                elif frame.msg_type == wire.MSG_PUSH_PULL:
                    self._push_pull(conn, record, frame)
                elif frame.msg_type == wire.MSG_PUSH:
                    self._push(record, frame)
                elif frame.msg_type == wire.MSG_EPOCH_DONE:
                    stop = self._epoch_barrier(conn, record, frame.clock)
                    if stop:
                        clean = True  # the ack told the worker to exit
                elif frame.msg_type == wire.MSG_FAULT:
                    with self._cv:
                        self.faults_reported += 1
                elif frame.msg_type == wire.MSG_BYE:
                    clean = True
                    return
                else:  # pragma: no cover - recv_frame validates types
                    raise wire.WireProtocolError(
                        f"unexpected message type {frame.msg_type}"
                    )
        except wire.WireProtocolError:
            # Malformed or corrupted frame: rejected, counted, never
            # applied — the peer heals by reconnect-and-replay.
            with self._cv:
                self.counters[keys.PS_FRAMES_REJECTED] += 1
            return
        except (ConnectionError, OSError, struct.error):
            return
        finally:
            self._disconnect(conn, record, clean)

    def _stall_gate(self) -> None:
        """Wedge this handler while an injected server-stall is live."""
        while not self._closing:
            remaining = self._stall_until - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(_WAIT_SLICE, remaining))

    def _register(
        self,
        conn: socket.socket,
        worker_id: int,
        connect_retries: int = 0,
        *,
        midrun: bool = False,
    ) -> _WorkerRecord:
        record = _WorkerRecord(worker_id)
        with self._cv:
            resume_clock = 0
            if midrun:
                # A live worker healing its own dropped wire: hand back
                # the clock we hold for it so it rewinds and replays the
                # in-flight item instead of losing it.  Seeding the
                # record's clock keeps the staleness gate honest — the
                # reconnector is *at* resume_clock, not at zero.
                self.counters[keys.PS_RECONNECTS_MIDRUN] += 1
                # The redial can beat the old handler's EOF: if the
                # worker's previous record is still registered, its
                # clock is the freshest truth, not ``_resume_clocks``.
                prior = self._workers.get(worker_id)
                if prior is not None:
                    resume_clock = prior.clock
                else:
                    resume_clock = self._resume_clocks.get(worker_id, 0)
                record.clock = resume_clock
            if worker_id in self._ever_seen:
                self.counters[keys.PS_RECONNECTS] += 1
            # HELLO's clock slot carries how many connect attempts the
            # worker burned before this socket opened — a reconnect
            # storm shows up in the manifest, not just in the logs.
            self.counters[keys.PS_CONNECT_RETRIES] += connect_retries
            self._ever_seen.add(worker_id)
            self._workers[worker_id] = record
            self._cv.notify_all()
            sent = wire.send_frame(
                conn,
                wire.MSG_HELLO_ACK,
                ident=self.n_shards,
                payload=wire.pack_hello_ack(
                    self.n_params, self.n_shards, self.max_staleness, resume_clock
                ),
            )
            self.counters[keys.PS_BYTES_SENT] += sent
        return record

    def _gate_lag(self, record: _WorkerRecord) -> int:
        """Work items *record* is ahead of the slowest running worker."""
        floor = None
        for other in self._workers.values():
            if other.state != "running" or other is record:
                continue
            if floor is None or other.clock < floor:
                floor = other.clock
        if floor is None:
            return 0
        return max(0, record.clock - floor)

    def _gate(self, record: _WorkerRecord, clock: int) -> None:
        """Run the bounded-staleness gate for a pull at *clock*.

        Records the observed lag in the staleness histogram and blocks
        while the worker runs more than ``max_staleness`` items ahead
        of the slowest live worker.  One gate pass per pull
        *round-trip* — a multi-shard reply is still one observation.
        """
        with self._cv:
            record.clock = clock
            record.state = "running"
            lag = self._gate_lag(record)
            self.counters[keys.ps_staleness_bucket(lag)] = (
                self.counters.get(keys.ps_staleness_bucket(lag), 0.0) + 1
            )
            if (
                self.max_staleness is not None
                and lag > self.max_staleness
            ):
                self.counters[keys.PS_PULL_WAITS] += 1
                while (
                    not self._closing
                    and record.state != "dead"
                    and self._gate_lag(record) > self.max_staleness
                ):
                    self._cv.wait(_WAIT_SLICE)
            self.counters[keys.PS_PULL_ROUNDS] += 1

    def _pull(
        self, conn: socket.socket, record: _WorkerRecord, frame: wire.Frame
    ) -> None:
        """Legacy single-shard pull (one round-trip per shard)."""
        shard = frame.ident
        if not 0 <= shard < self.n_shards:
            raise wire.WireProtocolError(f"PULL for unknown shard {shard}")
        self._gate(record, frame.clock)
        lo, hi = self._bounds[shard]
        with self._locks[shard]:
            payload = self._params[lo:hi].tobytes()
            version = self._versions[shard]
        sent = wire.send_frame(
            conn, wire.MSG_SHARD, ident=shard, clock=version, payload=payload
        )
        with self._cv:
            self.counters[keys.PS_PULLS] += 1
            self.counters[keys.PS_BYTES_SENT] += sent

    def _answer_shards(
        self, conn: socket.socket, seen: list[int], clock: int
    ) -> None:
        """Send the scatter-gathered SHARDS reply for one pull round.

        *seen* is the worker's last-seen version vector; any shard
        whose version still matches ships as a cached header only.
        Each (payload, version) pair is captured under that shard's
        lock, so every entry is internally consistent — the asynchrony
        is *between* shards, exactly as before.
        """
        if len(seen) != self.n_shards:
            raise wire.WireProtocolError(
                f"version vector of {len(seen)} entries against "
                f"{self.n_shards} shard(s)"
            )
        entries: list[tuple[int, bytes | None]] = []
        fresh = 0
        hits = 0
        saved = 0
        for shard, (lo, hi) in enumerate(self._bounds):
            with self._locks[shard]:
                version = self._versions[shard]
                if version == seen[shard]:
                    entries.append((version, None))
                    hits += 1
                    saved += (hi - lo) * 8
                else:
                    entries.append((version, self._params[lo:hi].tobytes()))
                    fresh += 1
        sent = wire.send_frame_parts(
            conn, wire.MSG_SHARDS, wire.pack_shard_entries(entries), clock=clock
        )
        with self._cv:
            self.counters[keys.PS_PULLS] += fresh
            self.counters[keys.PS_SHARD_CACHE_HITS] += hits
            self.counters[keys.PS_BYTES_SAVED] += saved
            self.counters[keys.PS_BYTES_SENT] += sent

    def _pull_all(
        self, conn: socket.socket, record: _WorkerRecord, frame: wire.Frame
    ) -> None:
        """Answer every shard in one round-trip (versioned)."""
        seen = wire.unpack_versions(frame.payload)
        self._gate(record, frame.clock)
        self._answer_shards(conn, seen, frame.clock)

    def _apply_push(
        self, record: _WorkerRecord, rows: int, payload: bytes, clock: int
    ) -> None:
        """Apply one delta payload and advance the worker's clock."""
        indices, values = wire.unpack_push(payload)
        if indices is None:
            if values.shape[0] != self.n_params:
                raise wire.WireProtocolError(
                    f"dense PUSH of {values.shape[0]} values against a "
                    f"{self.n_params}-parameter model"
                )
            for shard, (lo, hi) in enumerate(self._bounds):
                with self._locks[shard]:
                    self._params[lo:hi] += values[lo:hi]
                    self._versions[shard] += 1
        elif indices.size:
            if int(indices.min()) < 0 or int(indices.max()) >= self.n_params:
                raise wire.WireProtocolError("sparse PUSH index out of range")
            for shard, (lo, hi) in enumerate(self._bounds):
                sel = (indices >= lo) & (indices < hi)
                if not sel.any():
                    continue
                with self._locks[shard]:
                    np.add.at(self._params, indices[sel], values[sel])
                    self._versions[shard] += 1
        fire = None
        with self._cv:
            record.clock = clock
            record.state = "running"
            self.counters[keys.PS_PUSHES] += 1
            self.counters[keys.UPDATES_APPLIED] = (
                self.counters.get(keys.UPDATES_APPLIED, 0.0) + rows
            )
            if self._ckpt_policy is not None:
                self._ckpt_pushes_since += 1
                if (
                    self._ckpt_policy.every_items is not None
                    and self._ckpt_pushes_since >= self._ckpt_policy.every_items
                ):
                    self._ckpt_event.set()
            if self._server_faults:
                self._pushes_this_epoch += 1
                fire = self._due_server_fault()
            self._cv.notify_all()
        if fire is not None:
            self._fire_server_fault(fire)

    def _due_server_fault(self) -> dict | None:
        """The next unfired server fault due at this push, if any.

        Fires halfway through the spec's epoch by push count — deep
        enough into the epoch that real training state is at stake,
        deterministic because the trigger is a *count*, not a timer.
        Caller holds ``_cv``.
        """
        # During epoch N's pass the barrier has been released *to* N:
        # ``release_epoch(N)`` precedes the first push of epoch N.
        epoch = self._released_epoch
        midpoint = -(-self._pushes_per_epoch // 2)
        for spec in self._server_faults:
            if (
                not spec["fired"]
                and spec["epoch"] == epoch
                and self._pushes_this_epoch >= midpoint
            ):
                spec["fired"] = True
                return spec
        return None

    def _fire_server_fault(self, spec: dict) -> None:
        if spec["kind"] == "server-kill":
            # A real crash, not an exception: no flush, no farewell —
            # exactly what the checkpoint/restore path must survive.
            os.kill(os.getpid(), signal.SIGKILL)
        else:  # server-stall
            self._stall_until = time.monotonic() + float(spec["seconds"])

    def _push(self, record: _WorkerRecord, frame: wire.Frame) -> None:
        self._apply_push(record, frame.ident, frame.payload, frame.clock)

    def _push_pull(
        self, conn: socket.socket, record: _WorkerRecord, frame: wire.Frame
    ) -> None:
        """The fused frame: apply item *k*'s push, answer item *k+1*'s
        pull — one round-trip for both.

        The push is applied *before* the gate and the reply, on the
        same handler thread, so the ordered-stream guarantee survives
        fusion: a single node at ``max_staleness=0`` still sees its own
        push before the next pull is answered, keeping it bit-exact
        against serial SGD.
        """
        push_payload, seen = wire.unpack_push_pull(frame.payload)
        self._apply_push(record, frame.ident, push_payload, frame.clock)
        self._gate(record, frame.clock)
        self._answer_shards(conn, seen, frame.clock)

    def _epoch_barrier(
        self, conn: socket.socket, record: _WorkerRecord, epoch: int
    ) -> bool:
        """Record arrival, block until the parent releases, ack. Returns
        whether the ack carried the stop flag."""
        with self._cv:
            record.epoch_done = epoch
            record.state = "barrier"
            self._cv.notify_all()
            while (
                not self._closing
                and record.state != "dead"
                and not self._stop_flag
                and self._released_epoch < epoch + 1
            ):
                self._cv.wait(_WAIT_SLICE)
            stop = self._stop_flag or self._closing
            record.state = "running" if not stop else record.state
            sent = wire.send_frame(
                conn,
                wire.MSG_EPOCH_ACK,
                ident=1 if stop else 0,
                clock=epoch + 1,
            )
            self.counters[keys.PS_BYTES_SENT] += sent
        return stop

    def _disconnect(
        self, conn: socket.socket, record: _WorkerRecord | None, clean: bool
    ) -> None:
        with self._cv:
            self._conns.discard(conn)
            if record is not None and record.state != "dead":
                record.state = "dead"
                # Only the registry's *current* record for the id is
                # removed — a respawned worker may already own the slot.
                if self._workers.get(record.worker_id) is record:
                    # Remember where the worker was: a mid-run
                    # reconnect HELLO is answered with this clock.
                    self._resume_clocks[record.worker_id] = record.clock
                    del self._workers[record.worker_id]
                if not clean and not self._closing:
                    self.counters[keys.PS_DEAD_WORKERS_REAPED] += 1
            self._cv.notify_all()
        try:
            conn.close()
        except OSError:  # pragma: no cover - defensive
            pass

    # -- control plane (framed, for the standalone server process) ----------

    def _control(self, conn: socket.socket, frame: wire.Frame) -> bool:
        """Serve one supervision frame; returns True on CTRL_SHUTDOWN."""
        t = frame.msg_type
        if t == wire.MSG_CTRL_STATUS:
            wire.send_frame(
                conn, wire.MSG_CTRL_STATUS, payload=self._status_payload()
            )
        elif t == wire.MSG_CTRL_RELEASE:
            self.release_epoch(frame.clock, stop=bool(frame.ident))
            wire.send_frame(conn, wire.MSG_CTRL_RELEASE)
        elif t == wire.MSG_CTRL_SNAPSHOT:
            wire.send_frame(
                conn, wire.MSG_CTRL_SNAPSHOT, payload=self.snapshot().tobytes()
            )
        elif t == wire.MSG_CTRL_WRITE:
            if len(frame.payload) % 8:
                raise wire.WireProtocolError(
                    "CTRL_WRITE payload is not float64-aligned"
                )
            self.write_params(np.frombuffer(frame.payload, dtype=np.float64))
            wire.send_frame(conn, wire.MSG_CTRL_WRITE)
        elif t == wire.MSG_CTRL_RESET:
            self.reset_pool(frame.ident)
            wire.send_frame(conn, wire.MSG_CTRL_RESET)
        elif t == wire.MSG_CTRL_CHECKPOINT:
            path = self.checkpoint_now(boundary=True)
            wire.send_frame(
                conn, wire.MSG_CTRL_CHECKPOINT, ident=0 if path is None else 1
            )
        elif t == wire.MSG_CTRL_SHUTDOWN:
            wire.send_frame(conn, wire.MSG_CTRL_SHUTDOWN)
            # The standalone main loop does the close(); a handler
            # thread cannot join itself out of existence.
            self.shutdown_event.set()
            return True
        return False

    def _status_payload(self) -> bytes:
        """JSON state for the parent's liveness probe + counter polls."""
        with self._cv:
            state = {
                "released_epoch": self._released_epoch,
                "expected": self._expected,
                "faults_reported": self.faults_reported,
                "counters": dict(self.counters),
                "workers": {
                    str(wid): {
                        "clock": r.clock,
                        "epoch_done": r.epoch_done,
                        "state": r.state,
                    }
                    for wid, r in self._workers.items()
                },
            }
        return json.dumps(state).encode("utf-8")

    # -- checkpointing -------------------------------------------------------

    def checkpoint_now(self, *, boundary: bool = False) -> str | None:
        """Write one checkpoint immediately; returns its path.

        No-op (returns ``None``) without a checkpoint policy.  The cut
        is captured under every shard lock *and* the registry mutex, so
        params, versions, released epoch and worker clocks are one
        consistent instant; the file write itself happens outside the
        locks on the captured copies.
        """
        if self._ckpt_policy is None:
            return None
        for lock in self._locks:
            lock.acquire()
        try:
            with self._cv:
                params = self._params.copy()
                versions = list(self._versions)
                released = self._released_epoch
                clocks = dict(self._resume_clocks)
                clocks.update(
                    {wid: r.clock for wid, r in self._workers.items()}
                )
                seq = self._ckpt_seq
                self._ckpt_seq += 1
                self._ckpt_pushes_since = 0
        finally:
            for lock in reversed(self._locks):
                lock.release()
        path = write_checkpoint(
            self._ckpt_policy.dir,
            seq,
            params=params,
            versions=versions,
            released_epoch=released,
            clocks=clocks,
            boundary=boundary,
        )
        with self._cv:
            self.counters[keys.PS_CHECKPOINTS_WRITTEN] += 1
        return path

    def _checkpoint_loop(self) -> None:
        """Background writer: flush every N pushes and/or T seconds."""
        policy = self._ckpt_policy
        slice_ = _WAIT_SLICE
        if policy.every_seconds is not None:
            slice_ = min(_WAIT_SLICE, policy.every_seconds / 2)
        last = time.monotonic()
        while not self._closing:
            self._ckpt_event.wait(slice_)
            self._ckpt_event.clear()
            if self._closing:
                return
            due_items = (
                policy.every_items is not None
                and self._ckpt_pushes_since >= policy.every_items
            )
            due_time = (
                policy.every_seconds is not None
                and time.monotonic() - last >= policy.every_seconds
            )
            if due_items or due_time:
                try:
                    self.checkpoint_now()
                except OSError:
                    _log.warning(
                        "background checkpoint write failed", exc_info=True
                    )
                last = time.monotonic()

    # -- parent-side control -----------------------------------------------

    def epoch_reached(self, epoch: int) -> bool:
        """All ``expected`` workers are registered and have finished
        *epoch* (dead workers disqualify the predicate — the parent's
        watchdog turns that into a recovery action)."""
        with self._mu:
            if len(self._workers) < self._expected:
                return False
            return all(r.epoch_done >= epoch for r in self._workers.values())

    def wait_epoch_tick(self, timeout: float) -> None:
        """Block up to *timeout* for barrier progress (watchdog slice)."""
        with self._cv:
            self._cv.wait(timeout)

    def release_epoch(self, epoch: int, *, stop: bool = False) -> None:
        """Let every worker waiting on the barrier start *epoch* (or,
        with *stop*, exit cleanly)."""
        with self._cv:
            self._released_epoch = max(self._released_epoch, epoch)
            self._pushes_this_epoch = 0
            if stop:
                self._stop_flag = True
            self._cv.notify_all()

    def reset_pool(self, expected_workers: int) -> None:
        """Forget the current worker generation (recovery respawn): the
        registry and clocks restart empty; shard state and the released
        epoch survive, so respawned workers resume where the pool died."""
        with self._cv:
            self._workers = {}
            self._resume_clocks = {}
            self._expected = expected_workers
            self._cv.notify_all()

    def snapshot(self) -> np.ndarray:
        """A consistent copy of the model (all shard locks, in order)."""
        for lock in self._locks:
            lock.acquire()
        try:
            return self._params.copy()
        finally:
            for lock in reversed(self._locks):
                lock.release()

    def write_params(self, params: np.ndarray) -> None:
        """Overwrite the model under all shard locks (NaN scrubbing).

        Bumps every shard version: an out-of-band rewrite invalidates
        the workers' shard caches, so no node can keep serving itself
        the pre-scrub bytes from a matching stale version.
        """
        if params.shape != self._params.shape:
            raise ConfigurationError(
                f"write_params shape {params.shape} != {self._params.shape}"
            )
        for lock in self._locks:
            lock.acquire()
        try:
            self._params[:] = params
            for shard in range(len(self._bounds)):
                self._versions[shard] += 1
        finally:
            for lock in reversed(self._locks):
                lock.release()

    def describe(self) -> dict[str, Any]:
        """Manifest-friendly shard layout."""
        return {
            "shards": self.n_shards,
            "bounds": [[lo, hi] for lo, hi in self._bounds],
            "max_staleness": self.max_staleness,
            "address": f"{self.host}:{self.port}",
            "checkpoint_dir": (
                self._ckpt_policy.dir if self._ckpt_policy is not None else None
            ),
        }

    def close(self) -> None:
        """Stop accepting, wake every blocked handler, close all sockets.

        Idempotent; after it returns no server-owned socket is open and
        every handler thread is on its way out (they are daemons, but
        the joins below mean a clean run leaks nothing measurable).
        """
        with self._cv:
            if self._closing:
                return
            self._closing = True
            self._cv.notify_all()
            conns = list(self._conns)
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - defensive
            pass
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._accept_thread.join(timeout=2.0)
        if self._ckpt_thread is not None:
            self._ckpt_event.set()
            self._ckpt_thread.join(timeout=2.0)
        leaked = 0
        for t in self._threads:
            t.join(timeout=2.0)
            if t.is_alive():
                leaked += 1
        if leaked:
            # A handler that outlives its 2s join grace is a wedged
            # daemon we are abandoning — make the leak measurable (the
            # trainer flushes this counter into the manifest) and loud.
            with self._cv:
                self.counters[keys.PS_HANDLER_THREADS_LEAKED] += leaked
            _log.warning(
                "parameter server abandoned %d handler thread(s) that did "
                "not join within 2.0s",
                leaked,
            )

    def __enter__(self) -> "ShardServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
