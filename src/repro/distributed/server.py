"""The sharded parameter server: one accept loop, shard locks, a gate.

The server owns the model as one float64 vector split into ``S``
contiguous shards, each guarded by its own lock, and serves worker
connections over local TCP (one handler thread per connection, spawned
by a single accept loop).  Three mechanisms make it the paper-shaped
parameter server rather than a plain key-value store:

* **Shard locks + version counters** — every shard carries a
  monotonic version, bumped on each push that touches it.  A pull
  copies one shard (and reads its version) under that shard's lock; a
  PUSH applies its delta shard-by-shard, taking each lock in shard
  order.  Pulls of different shards interleave freely with pushes, so
  a worker's assembled model can mix shard versions — the asynchrony
  the simulator models, now measured on a real wire.  A ``PULL_ALL``
  (or the pull half of a fused ``PUSH_PULL``) carries the worker's
  last-seen version vector, and any shard whose version still matches
  is answered with a 9-byte cached header instead of its float64
  payload (``ps.shard_cache_hits`` / ``ps.bytes_saved``) — in steady
  state one work item costs one round-trip and only the bytes that
  changed.
* **The bounded-staleness gate** — every worker carries a clock (work
  items completed); a PULL from a worker more than ``max_staleness``
  items ahead of the slowest *live, still-running* worker blocks until
  the stragglers catch up.  ``max_staleness=None`` is Zhao & Li's
  fast-async regime (never block); ``0`` is lock-step.  Workers
  waiting at the epoch barrier (or dead, or cleanly done) leave the
  gate's minimum, so the gate can never deadlock: the slowest running
  worker is, by construction, never blocked.
* **Dead-worker reaping** — a connection that drops without a clean
  ``BYE`` is reaped: its clock leaves the staleness gate (waking any
  pull blocked on the corpse), its registry slot is freed, and the
  reap is counted (``ps.dead_workers_reaped``).  The *parent* watches
  the worker processes themselves and drives recovery; the server's
  reaping only guarantees the gate and the epoch barrier never wait on
  a ghost.

Epoch alignment mirrors the shm backend's barriers: a worker that
finishes its pass sends ``EPOCH_DONE`` and blocks on the reply; the
parent waits until every live worker has arrived
(:meth:`ShardServer.epoch_reached`), evaluates the loss on a quiescent
snapshot, then :meth:`releases <ShardServer.release_epoch>` the next
epoch — at which point every handler sends its ``EPOCH_ACK``.  All
pushes of a worker precede its ``EPOCH_DONE`` on the same ordered TCP
stream, so "every live worker arrived" implies "every delta applied":
the parent's snapshot is consistent without stopping the world.
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Any

import numpy as np

from ..telemetry import keys
from ..utils.errors import ConfigurationError
from . import protocol as wire

__all__ = ["ShardServer", "shard_bounds", "default_ps_shards"]

#: Handler threads block at most this long per gate/barrier wait slice,
#: re-checking for shutdown — keeps teardown prompt even with a wedged
#: peer on the other end of the condition.
_WAIT_SLICE = 0.2


def default_ps_shards(n_params: int) -> int:
    """Shard count used when the caller does not pick one: enough to
    make pulls genuinely sharded, never more than the model can fill."""
    return max(1, min(8, n_params // 16)) if n_params >= 32 else 1


def shard_bounds(n_params: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` ranges of each shard (sizes differ <= 1)."""
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if shards > n_params:
        raise ConfigurationError(
            f"cannot split {n_params} parameter(s) into {shards} shard(s)"
        )
    edges = np.linspace(0, n_params, shards + 1).astype(np.int64)
    return [(int(edges[s]), int(edges[s + 1])) for s in range(shards)]


class _WorkerRecord:
    """Mutable per-connection registry entry (one per live worker)."""

    __slots__ = ("worker_id", "clock", "epoch_done", "state")

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.clock = 0
        self.epoch_done = -1
        #: ``running`` (mid-pass, participates in the staleness min),
        #: ``barrier`` (at the epoch barrier, exempt), ``dead``.
        self.state = "running"


class ShardServer:
    """Own the shards, accept workers, answer pulls/pushes, keep clocks."""

    def __init__(
        self,
        init_params: np.ndarray,
        shards: int,
        *,
        max_staleness: int | None = None,
        expected_workers: int = 1,
        host: str = "127.0.0.1",
    ) -> None:
        if max_staleness is not None and max_staleness < 0:
            raise ConfigurationError(
                f"max_staleness must be >= 0 or None, got {max_staleness}"
            )
        self._params = np.array(init_params, dtype=np.float64, copy=True)
        self._bounds = shard_bounds(self._params.shape[0], shards)
        self._locks = [threading.Lock() for _ in self._bounds]
        self._versions = [0] * len(self._bounds)
        self.max_staleness = max_staleness

        self._mu = threading.Lock()
        self._cv = threading.Condition(self._mu)
        self._workers: dict[int, _WorkerRecord] = {}
        self._ever_seen: set[int] = set()
        self._expected = expected_workers
        self._released_epoch = 0
        self._stop_flag = False
        self._closing = False
        #: Flushed into telemetry by the trainer at the end of the run.
        self.counters: dict[str, float] = {
            keys.PS_PULLS: 0.0,
            keys.PS_PULL_ROUNDS: 0.0,
            keys.PS_PUSHES: 0.0,
            keys.PS_SHARD_CACHE_HITS: 0.0,
            keys.PS_BYTES_SENT: 0.0,
            keys.PS_BYTES_RECEIVED: 0.0,
            keys.PS_BYTES_SAVED: 0.0,
            keys.PS_PULL_WAITS: 0.0,
            keys.PS_RECONNECTS: 0.0,
            keys.PS_CONNECT_RETRIES: 0.0,
            keys.PS_DEAD_WORKERS_REAPED: 0.0,
        }
        self.faults_reported = 0

        self._listener = socket.create_server((host, 0))
        self._listener.settimeout(0.2)
        self._conns: set[socket.socket] = set()
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="ps-accept", daemon=True
        )
        self._accept_thread.start()

    # -- addressing --------------------------------------------------------

    @property
    def host(self) -> str:
        return self._listener.getsockname()[0]

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    @property
    def n_shards(self) -> int:
        return len(self._bounds)

    @property
    def n_params(self) -> int:
        return int(self._params.shape[0])

    # -- accept loop + per-connection handlers -----------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn.settimeout(None)
            with self._mu:
                if self._closing:
                    conn.close()
                    return
                self._conns.add(conn)
            t = threading.Thread(
                target=self._handle, args=(conn,), name="ps-handler", daemon=True
            )
            self._threads.append(t)
            t.start()

    def _handle(self, conn: socket.socket) -> None:
        record: _WorkerRecord | None = None
        clean = False
        try:
            while True:
                frame = wire.recv_frame(conn)
                if frame is None:
                    return
                with self._cv:
                    self.counters[keys.PS_BYTES_RECEIVED] += frame.nbytes
                if frame.msg_type == wire.MSG_HELLO:
                    record = self._register(conn, frame.ident, frame.clock)
                elif record is None:
                    raise wire.WireProtocolError(
                        f"message type {frame.msg_type} before HELLO"
                    )
                elif frame.msg_type == wire.MSG_PULL:
                    self._pull(conn, record, frame)
                elif frame.msg_type == wire.MSG_PULL_ALL:
                    self._pull_all(conn, record, frame)
                elif frame.msg_type == wire.MSG_PUSH_PULL:
                    self._push_pull(conn, record, frame)
                elif frame.msg_type == wire.MSG_PUSH:
                    self._push(record, frame)
                elif frame.msg_type == wire.MSG_EPOCH_DONE:
                    stop = self._epoch_barrier(conn, record, frame.clock)
                    if stop:
                        clean = True  # the ack told the worker to exit
                elif frame.msg_type == wire.MSG_FAULT:
                    with self._cv:
                        self.faults_reported += 1
                elif frame.msg_type == wire.MSG_BYE:
                    clean = True
                    return
                else:  # pragma: no cover - recv_frame validates types
                    raise wire.WireProtocolError(
                        f"unexpected message type {frame.msg_type}"
                    )
        except (wire.WireProtocolError, ConnectionError, OSError, struct.error):
            return
        finally:
            self._disconnect(conn, record, clean)

    def _register(
        self, conn: socket.socket, worker_id: int, connect_retries: int = 0
    ) -> _WorkerRecord:
        record = _WorkerRecord(worker_id)
        with self._cv:
            if worker_id in self._ever_seen:
                self.counters[keys.PS_RECONNECTS] += 1
            # HELLO's clock slot carries how many connect attempts the
            # worker burned before this socket opened — a reconnect
            # storm shows up in the manifest, not just in the logs.
            self.counters[keys.PS_CONNECT_RETRIES] += connect_retries
            self._ever_seen.add(worker_id)
            self._workers[worker_id] = record
            self._cv.notify_all()
            sent = wire.send_frame(
                conn,
                wire.MSG_HELLO_ACK,
                ident=self.n_shards,
                payload=wire.pack_hello_ack(
                    self.n_params, self.n_shards, self.max_staleness
                ),
            )
            self.counters[keys.PS_BYTES_SENT] += sent
        return record

    def _gate_lag(self, record: _WorkerRecord) -> int:
        """Work items *record* is ahead of the slowest running worker."""
        floor = None
        for other in self._workers.values():
            if other.state != "running" or other is record:
                continue
            if floor is None or other.clock < floor:
                floor = other.clock
        if floor is None:
            return 0
        return max(0, record.clock - floor)

    def _gate(self, record: _WorkerRecord, clock: int) -> None:
        """Run the bounded-staleness gate for a pull at *clock*.

        Records the observed lag in the staleness histogram and blocks
        while the worker runs more than ``max_staleness`` items ahead
        of the slowest live worker.  One gate pass per pull
        *round-trip* — a multi-shard reply is still one observation.
        """
        with self._cv:
            record.clock = clock
            record.state = "running"
            lag = self._gate_lag(record)
            self.counters[keys.ps_staleness_bucket(lag)] = (
                self.counters.get(keys.ps_staleness_bucket(lag), 0.0) + 1
            )
            if (
                self.max_staleness is not None
                and lag > self.max_staleness
            ):
                self.counters[keys.PS_PULL_WAITS] += 1
                while (
                    not self._closing
                    and record.state != "dead"
                    and self._gate_lag(record) > self.max_staleness
                ):
                    self._cv.wait(_WAIT_SLICE)
            self.counters[keys.PS_PULL_ROUNDS] += 1

    def _pull(
        self, conn: socket.socket, record: _WorkerRecord, frame: wire.Frame
    ) -> None:
        """Legacy single-shard pull (one round-trip per shard)."""
        shard = frame.ident
        if not 0 <= shard < self.n_shards:
            raise wire.WireProtocolError(f"PULL for unknown shard {shard}")
        self._gate(record, frame.clock)
        lo, hi = self._bounds[shard]
        with self._locks[shard]:
            payload = self._params[lo:hi].tobytes()
            version = self._versions[shard]
        sent = wire.send_frame(
            conn, wire.MSG_SHARD, ident=shard, clock=version, payload=payload
        )
        with self._cv:
            self.counters[keys.PS_PULLS] += 1
            self.counters[keys.PS_BYTES_SENT] += sent

    def _answer_shards(
        self, conn: socket.socket, seen: list[int], clock: int
    ) -> None:
        """Send the scatter-gathered SHARDS reply for one pull round.

        *seen* is the worker's last-seen version vector; any shard
        whose version still matches ships as a cached header only.
        Each (payload, version) pair is captured under that shard's
        lock, so every entry is internally consistent — the asynchrony
        is *between* shards, exactly as before.
        """
        if len(seen) != self.n_shards:
            raise wire.WireProtocolError(
                f"version vector of {len(seen)} entries against "
                f"{self.n_shards} shard(s)"
            )
        entries: list[tuple[int, bytes | None]] = []
        fresh = 0
        hits = 0
        saved = 0
        for shard, (lo, hi) in enumerate(self._bounds):
            with self._locks[shard]:
                version = self._versions[shard]
                if version == seen[shard]:
                    entries.append((version, None))
                    hits += 1
                    saved += (hi - lo) * 8
                else:
                    entries.append((version, self._params[lo:hi].tobytes()))
                    fresh += 1
        sent = wire.send_frame_parts(
            conn, wire.MSG_SHARDS, wire.pack_shard_entries(entries), clock=clock
        )
        with self._cv:
            self.counters[keys.PS_PULLS] += fresh
            self.counters[keys.PS_SHARD_CACHE_HITS] += hits
            self.counters[keys.PS_BYTES_SAVED] += saved
            self.counters[keys.PS_BYTES_SENT] += sent

    def _pull_all(
        self, conn: socket.socket, record: _WorkerRecord, frame: wire.Frame
    ) -> None:
        """Answer every shard in one round-trip (versioned)."""
        seen = wire.unpack_versions(frame.payload)
        self._gate(record, frame.clock)
        self._answer_shards(conn, seen, frame.clock)

    def _apply_push(
        self, record: _WorkerRecord, rows: int, payload: bytes, clock: int
    ) -> None:
        """Apply one delta payload and advance the worker's clock."""
        indices, values = wire.unpack_push(payload)
        if indices is None:
            if values.shape[0] != self.n_params:
                raise wire.WireProtocolError(
                    f"dense PUSH of {values.shape[0]} values against a "
                    f"{self.n_params}-parameter model"
                )
            for shard, (lo, hi) in enumerate(self._bounds):
                with self._locks[shard]:
                    self._params[lo:hi] += values[lo:hi]
                    self._versions[shard] += 1
        elif indices.size:
            if int(indices.min()) < 0 or int(indices.max()) >= self.n_params:
                raise wire.WireProtocolError("sparse PUSH index out of range")
            for shard, (lo, hi) in enumerate(self._bounds):
                sel = (indices >= lo) & (indices < hi)
                if not sel.any():
                    continue
                with self._locks[shard]:
                    np.add.at(self._params, indices[sel], values[sel])
                    self._versions[shard] += 1
        with self._cv:
            record.clock = clock
            record.state = "running"
            self.counters[keys.PS_PUSHES] += 1
            self.counters[keys.UPDATES_APPLIED] = (
                self.counters.get(keys.UPDATES_APPLIED, 0.0) + rows
            )
            self._cv.notify_all()

    def _push(self, record: _WorkerRecord, frame: wire.Frame) -> None:
        self._apply_push(record, frame.ident, frame.payload, frame.clock)

    def _push_pull(
        self, conn: socket.socket, record: _WorkerRecord, frame: wire.Frame
    ) -> None:
        """The fused frame: apply item *k*'s push, answer item *k+1*'s
        pull — one round-trip for both.

        The push is applied *before* the gate and the reply, on the
        same handler thread, so the ordered-stream guarantee survives
        fusion: a single node at ``max_staleness=0`` still sees its own
        push before the next pull is answered, keeping it bit-exact
        against serial SGD.
        """
        push_payload, seen = wire.unpack_push_pull(frame.payload)
        self._apply_push(record, frame.ident, push_payload, frame.clock)
        self._gate(record, frame.clock)
        self._answer_shards(conn, seen, frame.clock)

    def _epoch_barrier(
        self, conn: socket.socket, record: _WorkerRecord, epoch: int
    ) -> bool:
        """Record arrival, block until the parent releases, ack. Returns
        whether the ack carried the stop flag."""
        with self._cv:
            record.epoch_done = epoch
            record.state = "barrier"
            self._cv.notify_all()
            while (
                not self._closing
                and record.state != "dead"
                and not self._stop_flag
                and self._released_epoch < epoch + 1
            ):
                self._cv.wait(_WAIT_SLICE)
            stop = self._stop_flag or self._closing
            record.state = "running" if not stop else record.state
            sent = wire.send_frame(
                conn,
                wire.MSG_EPOCH_ACK,
                ident=1 if stop else 0,
                clock=epoch + 1,
            )
            self.counters[keys.PS_BYTES_SENT] += sent
        return stop

    def _disconnect(
        self, conn: socket.socket, record: _WorkerRecord | None, clean: bool
    ) -> None:
        with self._cv:
            self._conns.discard(conn)
            if record is not None and record.state != "dead":
                record.state = "dead"
                # Only the registry's *current* record for the id is
                # removed — a respawned worker may already own the slot.
                if self._workers.get(record.worker_id) is record:
                    del self._workers[record.worker_id]
                if not clean and not self._closing:
                    self.counters[keys.PS_DEAD_WORKERS_REAPED] += 1
            self._cv.notify_all()
        try:
            conn.close()
        except OSError:  # pragma: no cover - defensive
            pass

    # -- parent-side control -----------------------------------------------

    def epoch_reached(self, epoch: int) -> bool:
        """All ``expected`` workers are registered and have finished
        *epoch* (dead workers disqualify the predicate — the parent's
        watchdog turns that into a recovery action)."""
        with self._mu:
            if len(self._workers) < self._expected:
                return False
            return all(r.epoch_done >= epoch for r in self._workers.values())

    def wait_epoch_tick(self, timeout: float) -> None:
        """Block up to *timeout* for barrier progress (watchdog slice)."""
        with self._cv:
            self._cv.wait(timeout)

    def release_epoch(self, epoch: int, *, stop: bool = False) -> None:
        """Let every worker waiting on the barrier start *epoch* (or,
        with *stop*, exit cleanly)."""
        with self._cv:
            self._released_epoch = max(self._released_epoch, epoch)
            if stop:
                self._stop_flag = True
            self._cv.notify_all()

    def reset_pool(self, expected_workers: int) -> None:
        """Forget the current worker generation (recovery respawn): the
        registry and clocks restart empty; shard state and the released
        epoch survive, so respawned workers resume where the pool died."""
        with self._cv:
            self._workers = {}
            self._expected = expected_workers
            self._cv.notify_all()

    def snapshot(self) -> np.ndarray:
        """A consistent copy of the model (all shard locks, in order)."""
        for lock in self._locks:
            lock.acquire()
        try:
            return self._params.copy()
        finally:
            for lock in reversed(self._locks):
                lock.release()

    def write_params(self, params: np.ndarray) -> None:
        """Overwrite the model under all shard locks (NaN scrubbing).

        Bumps every shard version: an out-of-band rewrite invalidates
        the workers' shard caches, so no node can keep serving itself
        the pre-scrub bytes from a matching stale version.
        """
        if params.shape != self._params.shape:
            raise ConfigurationError(
                f"write_params shape {params.shape} != {self._params.shape}"
            )
        for lock in self._locks:
            lock.acquire()
        try:
            self._params[:] = params
            for shard in range(len(self._bounds)):
                self._versions[shard] += 1
        finally:
            for lock in reversed(self._locks):
                lock.release()

    def describe(self) -> dict[str, Any]:
        """Manifest-friendly shard layout."""
        return {
            "shards": self.n_shards,
            "bounds": [[lo, hi] for lo, hi in self._bounds],
            "max_staleness": self.max_staleness,
            "address": f"{self.host}:{self.port}",
        }

    def close(self) -> None:
        """Stop accepting, wake every blocked handler, close all sockets.

        Idempotent; after it returns no server-owned socket is open and
        every handler thread is on its way out (they are daemons, but
        the joins below mean a clean run leaks nothing measurable).
        """
        with self._cv:
            if self._closing:
                return
            self._closing = True
            self._cv.notify_all()
            conns = list(self._conns)
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - defensive
            pass
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._accept_thread.join(timeout=2.0)
        for t in self._threads:
            t.join(timeout=2.0)

    def __enter__(self) -> "ShardServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
