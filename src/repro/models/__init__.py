"""Models: logistic regression, linear SVM, fully-connected MLP.

:func:`make_model` builds the paper's task/dataset pairings: LR and SVM
on the native features, MLP on the feature-grouped data with the
architecture from Table I.
"""

from __future__ import annotations

from ..datasets.synthetic import Dataset
from ..utils.errors import ConfigurationError
from .base import ExampleUpdate, Matrix, Model
from .gradcheck import finite_difference_grad, max_grad_error
from .linear import LinearModel, LinearSVM, LogisticRegression
from .losses import (
    hinge_dmargin,
    hinge_loss,
    logistic_dmargin,
    logistic_loss,
    softmax_cross_entropy,
    softmax_probs,
    stable_sigmoid,
)
from .matfac import MatrixFactorization
from .mlp import MLP

__all__ = [
    "Model",
    "Matrix",
    "ExampleUpdate",
    "LinearModel",
    "LogisticRegression",
    "LinearSVM",
    "MLP",
    "MatrixFactorization",
    "make_model",
    "TASK_NAMES",
    "finite_difference_grad",
    "max_grad_error",
    "logistic_loss",
    "logistic_dmargin",
    "hinge_loss",
    "hinge_dmargin",
    "softmax_cross_entropy",
    "softmax_probs",
    "stable_sigmoid",
]

#: Canonical task order (matches the row blocks of Tables II/III).
TASK_NAMES: tuple[str, ...] = ("lr", "svm", "mlp")


def make_model(task: str, dataset: Dataset) -> Model:
    """Instantiate the paper's model for *task* on *dataset*.

    ``"lr"`` and ``"svm"`` size themselves to the dataset's feature
    count; ``"mlp"`` uses the dataset profile's architecture (which for
    an MLP-transformed dataset starts at the grouped input width).
    """
    if task == "lr":
        return LogisticRegression(dataset.n_features)
    if task == "svm":
        return LinearSVM(dataset.n_features)
    if task == "mlp":
        arch = dataset.profile.mlp_arch
        if arch[0] != dataset.n_features:
            raise ConfigurationError(
                f"MLP input width {arch[0]} != dataset features "
                f"{dataset.n_features}; pass the MLP-transformed dataset "
                "(repro.datasets.load_mlp)"
            )
        return MLP(arch)
    raise ConfigurationError(f"unknown task {task!r}; available: {TASK_NAMES}")
