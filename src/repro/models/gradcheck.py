"""Finite-difference gradient verification.

Used by the test suite to certify every model's analytical gradient
against central differences, and exposed publicly because it is the
single most valuable debugging tool when users add their own models.
"""

from __future__ import annotations

import numpy as np

from .base import Matrix, Model

__all__ = ["finite_difference_grad", "max_grad_error"]


def finite_difference_grad(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    params: np.ndarray,
    eps: float = 1e-6,
    coords: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Central-difference gradient at selected coordinates.

    Returns ``(coords, approx_grad_at_coords)``.  By default all
    coordinates are checked; pass *coords* to subsample for large
    models (the MLP tests probe a random subset).
    """
    params = np.asarray(params, dtype=np.float64)
    if coords is None:
        coords = np.arange(params.size)
    coords = np.asarray(coords, dtype=np.int64)
    approx = np.empty(coords.size)
    w = params.copy()
    for k, j in enumerate(coords):
        orig = w[j]
        w[j] = orig + eps
        up = model.loss(X, y, w)
        w[j] = orig - eps
        down = model.loss(X, y, w)
        w[j] = orig
        approx[k] = (up - down) / (2.0 * eps)
    return coords, approx


def max_grad_error(
    model: Model,
    X: Matrix,
    y: np.ndarray,
    params: np.ndarray,
    eps: float = 1e-6,
    coords: np.ndarray | None = None,
) -> float:
    """Max absolute difference between analytic and numeric gradient.

    Relative to ``1 + |numeric|`` so large-gradient coordinates do not
    need an absolute threshold.
    """
    analytic = model.full_grad(X, y, params)
    coords, approx = finite_difference_grad(model, X, y, params, eps, coords)
    err = np.abs(analytic[coords] - approx) / (1.0 + np.abs(approx))
    return float(err.max()) if err.size else 0.0
