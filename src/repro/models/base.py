"""Model interface shared by LR, SVM and MLP.

The SGD runners interact with models through four operations:

* :meth:`Model.loss` — mean objective value.  Never traced: the paper
  excludes loss evaluation from iteration timing.
* :meth:`Model.full_grad` — the exact mean gradient over the whole
  training set, computed through the instrumented linalg primitives so
  a recorded trace captures the synchronous epoch's hardware work
  (Algorithm 2, Batch SGD Optimization Epoch).
* :meth:`Model.minibatch_grad` — mean gradient over a row subset
  (mini-batch sync SGD and Hogbatch building block).
* :meth:`Model.example_updates` — the list of per-example SGD deltas
  evaluated at a *snapshot* of the parameters (Algorithm 3, Incremental
  SGD Optimization Epoch).  The asynchronous engine feeds these to its
  interleaving schedule; the sparse coordinate lists double as the
  conflict footprint for the coherence model.

Parameters are always a flat float64 vector so the asynchronous engine
can treat every model uniformly.
"""

from __future__ import annotations

import abc
from typing import Sequence, Union

import numpy as np

from ..linalg.csr import CSRMatrix

__all__ = ["Model", "ExampleUpdate", "Matrix"]

Matrix = Union[np.ndarray, CSRMatrix]

#: One example's SGD delta: ``(indices, values)`` to scatter-add into the
#: flat parameter vector, or ``(None, dense_delta)`` when the update
#: touches every coordinate (MLP batches).
ExampleUpdate = tuple[np.ndarray | None, np.ndarray]


class Model(abc.ABC):
    """Abstract trainable model over a flat parameter vector."""

    #: Human-readable task name ("lr", "svm", "mlp").
    task: str = "model"

    @property
    @abc.abstractmethod
    def n_params(self) -> int:
        """Length of the flat parameter vector."""

    @abc.abstractmethod
    def init_params(self, rng: np.random.Generator) -> np.ndarray:
        """Draw an initial parameter vector.

        The experiment harness calls this once per (task, dataset) and
        shares the result across all configurations, matching the
        paper's same-initialisation methodology.
        """

    @abc.abstractmethod
    def loss(self, X: Matrix, y: np.ndarray, params: np.ndarray) -> float:
        """Mean loss over the dataset (not traced)."""

    @abc.abstractmethod
    def full_grad(self, X: Matrix, y: np.ndarray, params: np.ndarray) -> np.ndarray:
        """Exact mean gradient over all examples (traced)."""

    @abc.abstractmethod
    def minibatch_grad(
        self, X: Matrix, y: np.ndarray, rows: np.ndarray, params: np.ndarray
    ) -> np.ndarray:
        """Mean gradient over the given rows (traced)."""

    @abc.abstractmethod
    def example_updates(
        self,
        X: Matrix,
        y: np.ndarray,
        rows: np.ndarray,
        params: np.ndarray,
        step: float,
    ) -> Sequence[ExampleUpdate]:
        """Per-example SGD deltas ``-step * grad_i`` at a parameter snapshot.

        Every returned update is computed from the *same* ``params``
        value; the asynchronous engine decides the order (and overlap)
        in which they are applied.
        """

    @abc.abstractmethod
    def predict_margin(self, X: Matrix, params: np.ndarray) -> np.ndarray:
        """Decision values; ``sign`` of them is the class prediction."""

    def batch_update(
        self,
        X: Matrix,
        y: np.ndarray,
        rows: np.ndarray,
        params: np.ndarray,
        step: float,
    ) -> ExampleUpdate:
        """One mini-batch SGD delta at a snapshot (Hogbatch work item).

        Hogbatch [Sallinen et al., IPDPS 2016] runs Hogwild at batch
        granularity: each logical thread repeatedly grabs a batch,
        computes its gradient against the current (possibly stale)
        model, and applies a single dense update.  The default
        implementation derives it from :meth:`minibatch_grad`.
        """
        grad = self.minibatch_grad(X, y, rows, params)
        return (None, -step * grad)

    # -- conveniences ---------------------------------------------------------

    def accuracy(self, X: Matrix, y: np.ndarray, params: np.ndarray) -> float:
        """Fraction of correctly classified examples."""
        margins = self.predict_margin(X, params)
        pred = np.where(margins >= 0, 1.0, -1.0)
        return float(np.mean(pred == y))

    #: Estimated flops to process one example (forward + backward); the
    #: asynchronous hardware model uses this for per-step compute cost.
    def flops_per_example(self, avg_nnz: float) -> float:
        """Approximate flops per incremental-SGD step (default: linear)."""
        return 4.0 * avg_nnz

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_params={self.n_params})"
