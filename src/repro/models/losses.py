"""Loss functions and their derivatives for the three paper tasks.

All losses are written against margins/logits and are numerically stable
(log1p/exp formulations; logsumexp for softmax).  The paper trains
without regularisation ("We do not include any regularization in the
objective function in order to measure only the time spent in the
actual computation", Section IV-A); we follow that, but the model
classes accept an optional L2 coefficient for library users.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "logistic_loss",
    "logistic_dmargin",
    "hinge_loss",
    "hinge_dmargin",
    "softmax_cross_entropy",
    "softmax_probs",
    "stable_sigmoid",
]


def stable_sigmoid(z: np.ndarray) -> np.ndarray:
    """Logistic function computed without overflow for large |z|."""
    z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def logistic_loss(margins: np.ndarray) -> np.ndarray:
    """Per-example logistic loss ``log(1 + exp(-y * x.w))``.

    *margins* must already be ``y * (x . w)``.
    """
    m = np.asarray(margins, dtype=np.float64)
    return np.logaddexp(0.0, -m)


def logistic_dmargin(margins: np.ndarray) -> np.ndarray:
    """d(logistic loss)/d(margin) = -sigmoid(-margin)."""
    return -stable_sigmoid(-np.asarray(margins, dtype=np.float64))


def hinge_loss(margins: np.ndarray) -> np.ndarray:
    """Per-example hinge loss ``max(0, 1 - y * x.w)``."""
    m = np.asarray(margins, dtype=np.float64)
    return np.maximum(0.0, 1.0 - m)


def hinge_dmargin(margins: np.ndarray) -> np.ndarray:
    """Subgradient of hinge w.r.t. the margin: -1 where margin < 1.

    At the kink (margin == 1) we take 0, the standard convention for
    SGD implementations of linear SVMs.
    """
    m = np.asarray(margins, dtype=np.float64)
    return np.where(m < 1.0, -1.0, 0.0)


def softmax_probs(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax of a logits matrix, overflow-safe."""
    z = np.asarray(logits, dtype=np.float64)
    z = z - z.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(logits: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """Per-example cross-entropy for integer class targets.

    Computed as ``logsumexp(logits) - logits[class]`` without forming
    the probability matrix.
    """
    z = np.asarray(logits, dtype=np.float64)
    classes = np.asarray(classes, dtype=np.int64)
    zmax = z.max(axis=-1)
    lse = zmax + np.log(np.exp(z - zmax[:, None]).sum(axis=-1))
    picked = z[np.arange(z.shape[0]), classes]
    return lse - picked
