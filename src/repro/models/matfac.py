"""Low-rank matrix factorisation — the paper's future-work model.

The paper's conclusions name matrix factorisation as the next model to
study (Section VI), and its related work highlights cuMF SGD [38] as
the *only* GPU Hogwild kernel in the literature — MF is the natural
Hogwild workload: each observed rating ``(u, i, r)`` updates only the
2k coordinates of user factor ``U_u`` and item factor ``V_i``, so
conflicts are governed by user/item popularity exactly like feature
popularity governs the linear tasks.

Encoding: an example is a CSR row with two non-zeros — column ``u``
(user id) and column ``n_users + i`` (item id) — and label ``r`` (the
rating).  The parameter vector flattens ``U`` (n_users x k) followed by
``V`` (n_items x k).  This reuses the whole asynchronous machinery:
``example_updates`` returns the 2k touched coordinates (the Hogwild
conflict footprint), ``serial_sgd_epoch`` provides the exact B=1 fast
path, and the coherence model consumes the realised user/item
popularities.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..linalg.csr import CSRMatrix
from ..utils.errors import ConfigurationError
from .base import ExampleUpdate, Matrix, Model

__all__ = ["MatrixFactorization"]


class MatrixFactorization(Model):
    """Biased-free low-rank MF trained on squared error.

    Parameters
    ----------
    n_users, n_items:
        Dimensions of the rating matrix.
    rank:
        Latent dimensionality k.
    l2:
        Optional per-factor ridge coefficient.
    """

    task = "mf"

    def __init__(self, n_users: int, n_items: int, rank: int = 8, l2: float = 0.0) -> None:
        if n_users < 1 or n_items < 1:
            raise ConfigurationError("n_users and n_items must be positive")
        if rank < 1:
            raise ConfigurationError(f"rank must be >= 1, got {rank}")
        if l2 < 0:
            raise ConfigurationError(f"l2 must be non-negative, got {l2}")
        self.n_users = int(n_users)
        self.n_items = int(n_items)
        self.rank = int(rank)
        self.l2 = float(l2)

    # -- parameter layout -----------------------------------------------------

    @property
    def n_params(self) -> int:
        return (self.n_users + self.n_items) * self.rank

    def factors(self, params: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(U, V)`` views into the flat vector."""
        self._check_params(params)
        split = self.n_users * self.rank
        U = params[:split].reshape(self.n_users, self.rank)
        V = params[split:].reshape(self.n_items, self.rank)
        return U, V

    def init_params(self, rng: np.random.Generator) -> np.ndarray:
        """Scaled Gaussian factors (predictions start near zero)."""
        return rng.standard_normal(self.n_params) / np.sqrt(self.rank)

    # -- example decoding -------------------------------------------------------

    def _decode(self, X: Matrix, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(users, items) of the given example rows."""
        if not isinstance(X, CSRMatrix):
            raise ConfigurationError("MatrixFactorization expects the CSR encoding")
        if X.n_cols != self.n_users + self.n_items:
            raise ConfigurationError(
                f"encoding width {X.n_cols} != n_users+n_items "
                f"({self.n_users + self.n_items})"
            )
        users = np.empty(rows.size, dtype=np.int64)
        items = np.empty(rows.size, dtype=np.int64)
        for k, r in enumerate(rows):
            idx, _ = X.row(int(r))
            if idx.size != 2 or idx[0] >= self.n_users or idx[1] < self.n_users:
                raise ConfigurationError(
                    f"example {int(r)} is not a (user, item) pair"
                )
            users[k] = idx[0]
            items[k] = idx[1] - self.n_users
        return users, items

    # -- Model interface ----------------------------------------------------------

    def predict_margin(self, X: Matrix, params: np.ndarray) -> np.ndarray:
        """Predicted ratings (the 'margin' here is the prediction)."""
        rows = np.arange(X.shape[0])
        users, items = self._decode(X, rows)
        U, V = self.factors(params)
        return np.einsum("ij,ij->i", U[users], V[items])

    def loss(self, X: Matrix, y: np.ndarray, params: np.ndarray) -> float:
        """Mean squared error over the observed ratings."""
        pred = self.predict_margin(X, params)
        value = float(np.mean((pred - y) ** 2))
        if self.l2:
            value += self.l2 * float(params @ params) / X.shape[0]
        return value

    def full_grad(self, X: Matrix, y: np.ndarray, params: np.ndarray) -> np.ndarray:
        return self.minibatch_grad(X, y, np.arange(X.shape[0]), params)

    def minibatch_grad(
        self, X: Matrix, y: np.ndarray, rows: np.ndarray, params: np.ndarray
    ) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        users, items = self._decode(X, rows)
        U, V = self.factors(params)
        Uu, Vi = U[users], V[items]
        err = np.einsum("ij,ij->i", Uu, Vi) - np.asarray(y)[rows]
        scale = 2.0 / max(1, rows.size)
        grad = np.zeros(self.n_params)
        Ug, Vg = self.factors(grad)
        np.add.at(Ug, users, scale * err[:, None] * Vi)
        np.add.at(Vg, items, scale * err[:, None] * Uu)
        if self.l2:
            grad += (2.0 * self.l2 / max(1, rows.size)) * params
        return grad

    def example_updates(
        self,
        X: Matrix,
        y: np.ndarray,
        rows: np.ndarray,
        params: np.ndarray,
        step: float,
    ) -> Sequence[ExampleUpdate]:
        """Per-rating deltas touching the 2k coordinates of (U_u, V_i)."""
        rows = np.asarray(rows, dtype=np.int64)
        users, items = self._decode(X, rows)
        U, V = self.factors(params)
        Uu, Vi = U[users], V[items]
        err = np.einsum("ij,ij->i", Uu, Vi) - np.asarray(y)[rows]
        k = self.rank
        split = self.n_users * k
        out: list[ExampleUpdate] = []
        for t in range(rows.size):
            u, i = users[t], items[t]
            du = -step * 2.0 * err[t] * Vi[t]
            dv = -step * 2.0 * err[t] * Uu[t]
            if self.l2:
                du = du - step * 2.0 * self.l2 * Uu[t]
                dv = dv - step * 2.0 * self.l2 * Vi[t]
            idx = np.concatenate(
                [np.arange(u * k, (u + 1) * k), split + np.arange(i * k, (i + 1) * k)]
            )
            out.append((idx, np.concatenate([du, dv])))
        return out

    def serial_sgd_epoch(
        self,
        X: Matrix,
        y: np.ndarray,
        order: np.ndarray,
        params: np.ndarray,
        step: float,
    ) -> None:
        """Exact sequential SGD pass over the ratings, in place."""
        users, items = self._decode(X, np.asarray(order, dtype=np.int64))
        U, V = self.factors(params)
        l2 = self.l2
        yy = np.asarray(y)
        for t, r in enumerate(order):
            u, i = users[t], items[t]
            uu = U[u].copy()
            vv = V[i]
            err = float(uu @ vv) - yy[r]
            U[u] -= step * 2.0 * (err * vv + l2 * uu)
            V[i] -= step * 2.0 * (err * uu + l2 * vv)

    def flops_per_example(self, avg_nnz: float) -> float:
        """Dot + two axpys over the rank: ~6k flops per rating."""
        del avg_nnz
        return 6.0 * self.rank + 10.0

    def rmse(self, X: Matrix, y: np.ndarray, params: np.ndarray) -> float:
        """Root-mean-squared rating error (the MF literature's metric)."""
        return float(np.sqrt(self.loss(X, y, params) if not self.l2 else np.mean(
            (self.predict_margin(X, params) - y) ** 2
        )))

    def _check_params(self, params: np.ndarray) -> None:
        if params.shape != (self.n_params,):
            raise ConfigurationError(
                f"params shape {params.shape} != ({self.n_params},)"
            )
