"""Generalised linear models: logistic regression and linear SVM.

Both tasks share the structure ``loss_i = f(y_i * (x_i . w))`` with a
scalar link derivative, so a common base class implements the traced
gradient plumbing; the subclasses supply ``f`` and ``f'``.  Gradients:

    dL_i/dw = y_i * f'(y_i * m_i) * x_i,   m_i = x_i . w

The dense path uses GEMV/transposed-GEMV primitives; the sparse path
uses CSR SpMV — exactly the kernel inventory the paper's synchronous
implementation draws from ViennaCL.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..linalg import dense_ops, sparse_ops
from ..linalg.csr import CSRMatrix
from ..utils.errors import ConfigurationError
from .base import ExampleUpdate, Matrix, Model
from .losses import hinge_dmargin, hinge_loss, logistic_dmargin, logistic_loss

__all__ = ["LinearModel", "LogisticRegression", "LinearSVM"]


class LinearModel(Model):
    """Shared machinery for margin-based linear classifiers.

    Parameters
    ----------
    n_features:
        Input dimensionality (= parameter count; the paper's tasks are
        trained without an intercept).
    l2:
        Optional ridge coefficient.  The paper uses 0; the library
        exposes it for downstream users.
    """

    def __init__(self, n_features: int, l2: float = 0.0) -> None:
        if n_features <= 0:
            raise ConfigurationError(f"n_features must be positive, got {n_features}")
        if l2 < 0:
            raise ConfigurationError(f"l2 must be non-negative, got {l2}")
        self.n_features = int(n_features)
        self.l2 = float(l2)

    # subclasses provide the margin loss and its derivative -----------------

    @staticmethod
    def _loss_fn(margins: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _dmargin_fn(margins: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _dmargin_scalar(margin: float) -> float:
        raise NotImplementedError

    # -- Model interface ------------------------------------------------------

    @property
    def n_params(self) -> int:
        return self.n_features

    def init_params(self, rng: np.random.Generator) -> np.ndarray:
        """Small random init (zero init would make SVM subgradients tie)."""
        return 0.01 * rng.standard_normal(self.n_features)

    def predict_margin(self, X: Matrix, params: np.ndarray) -> np.ndarray:
        self._check_params(params)
        if isinstance(X, CSRMatrix):
            return X.matvec(params)
        return np.asarray(X, dtype=np.float64) @ params

    def loss(self, X: Matrix, y: np.ndarray, params: np.ndarray) -> float:
        margins = self.predict_margin(X, params) * y
        value = float(np.mean(self._loss_fn(margins)))
        if self.l2:
            value += 0.5 * self.l2 * float(params @ params)
        return value

    def full_grad(self, X: Matrix, y: np.ndarray, params: np.ndarray) -> np.ndarray:
        return self._grad(X, y, params, scale=1.0 / X.shape[0])

    def minibatch_grad(
        self, X: Matrix, y: np.ndarray, rows: np.ndarray, params: np.ndarray
    ) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        if isinstance(X, CSRMatrix):
            Xb = X.take_rows(rows)
        else:
            Xb = np.ascontiguousarray(X[rows])
        return self._grad(Xb, y[rows], params, scale=1.0 / max(1, rows.size))

    def _grad(self, X: Matrix, y: np.ndarray, params: np.ndarray, scale: float) -> np.ndarray:
        """Traced mean gradient: margins -> link derivative -> X^T coef."""
        self._check_params(params)
        if isinstance(X, CSRMatrix):
            margins = sparse_ops.csr_matvec(X, params, name="margins")
        else:
            margins = dense_ops.gemv(X, params, name="margins")
        ym = dense_ops.elementwise(
            lambda m: y * m, margins, name="label_margin", flops_per_element=1.0
        )
        coef = dense_ops.elementwise(
            lambda m: y * self._dmargin_fn(m) * scale,
            ym,
            name="link_derivative",
            flops_per_element=3.0,
        )
        if isinstance(X, CSRMatrix):
            grad = sparse_ops.csr_rmatvec(X, coef, name="grad_accum")
        else:
            # The transposed product parallelises over the d output
            # coordinates — a model dimension, not an example one.
            grad = dense_ops.rgemv(
                X, coef, name="grad_accum", parallelism_scales=False
            )
        if self.l2:
            grad = dense_ops.axpy(
                self.l2,
                params,
                grad,
                name="l2_term",
                cost_scales=False,
                parallelism_scales=False,
            )
        return grad

    def example_updates(
        self,
        X: Matrix,
        y: np.ndarray,
        rows: np.ndarray,
        params: np.ndarray,
        step: float,
    ) -> Sequence[ExampleUpdate]:
        """Per-example deltas ``-step * grad_i`` at the snapshot *params*.

        Vectorised: all margins for the batch are computed at once, then
        each example's delta is its row scaled by the link derivative.
        Sparse rows return their coordinate lists (the Hogwild conflict
        footprint); dense rows return full-width deltas.
        """
        rows = np.asarray(rows, dtype=np.int64)
        self._check_params(params)
        if isinstance(X, CSRMatrix):
            Xb = X.take_rows(rows)
            margins = Xb.matvec(params)
            coef = y[rows] * self._dmargin_fn(y[rows] * margins)
            if self.l2:
                # With L2 the update is dense; the paper's tasks use l2=0.
                dense = -step * (coef[:, None] * Xb.to_dense() + self.l2 * params)
                return [(None, dense[i]) for i in range(rows.size)]
            out: list[ExampleUpdate] = []
            for i in range(rows.size):
                idx, val = Xb.row(i)
                out.append((idx, -step * coef[i] * val))
            return out
        Xb = np.asarray(X, dtype=np.float64)[rows]
        margins = Xb @ params
        coef = y[rows] * self._dmargin_fn(y[rows] * margins)
        deltas = dense_ops.batch_sgd_deltas(Xb, coef, step, name="example_deltas")
        if self.l2:
            deltas -= step * self.l2 * params[None, :]
        return [(None, deltas[i]) for i in range(rows.size)]

    def batched_updates(
        self,
        X: Matrix,
        y: np.ndarray,
        rows: np.ndarray,
        params: np.ndarray,
        step: float,
    ) -> ExampleUpdate:
        """All of :meth:`example_updates` as one flat batch, in row order.

        Sparse data returns the concatenated ``(indices, values)`` of
        every row's delta — a single ``np.add.at`` over them applies the
        round's updates bit-identically to the per-example loop (the
        scatter accumulates element-by-element in order).  Dense data
        (and the L2-regularised sparse case, whose deltas are dense)
        returns ``(None, deltas)`` with one delta row per example.

        This is the vectorised fast path the asynchronous engine and
        the shared-memory backend use each round.
        """
        rows = np.asarray(rows, dtype=np.int64)
        self._check_params(params)
        if isinstance(X, CSRMatrix) and not self.l2:
            indptr, indices, data, _ = X.gather_rows_arrays(rows)
            counts = np.diff(indptr)
            margins = np.zeros(rows.size, dtype=np.float64)
            if indices.size:
                prod = data * params[indices]
                nonempty = counts > 0
                margins[nonempty] = np.add.reduceat(prod, indptr[:-1][nonempty])
            coef = y[rows] * self._dmargin_fn(y[rows] * margins)
            values = (-step * np.repeat(coef, counts)) * data
            return indices, values
        updates = self.example_updates(X, y, rows, params, step)
        if not updates:
            return None, np.zeros((0, self.n_params))
        return None, np.stack([delta for _, delta in updates])

    def serial_sgd_epoch(
        self,
        X: Matrix,
        y: np.ndarray,
        order: np.ndarray,
        params: np.ndarray,
        step: float,
    ) -> None:
        """Exact sequential incremental SGD epoch, in place (Algorithm 3).

        The asynchronous engine uses this fast path for concurrency 1;
        it is numerically identical to ``example_updates`` applied one
        row at a time (asserted by the test suite) but avoids the
        per-row dispatch overhead of the generic path.
        """
        self._check_params(params)
        dmargin = self._dmargin_scalar
        l2 = self.l2
        if isinstance(X, CSRMatrix):
            indptr, indices, data = X.indptr, X.indices, X.data
            for i in order:
                lo, hi = indptr[i], indptr[i + 1]
                if lo == hi:
                    if l2:
                        params -= (step * l2) * params
                    continue
                idx = indices[lo:hi]
                val = data[lo:hi]
                yi = y[i]
                margin = val @ params[idx]
                coef = yi * dmargin(yi * margin)
                if l2:
                    params -= (step * l2) * params
                if coef != 0.0:
                    params[idx] -= (step * coef) * val
            return
        Xd = np.asarray(X, dtype=np.float64)
        for i in order:
            xi = Xd[i]
            yi = y[i]
            margin = xi @ params
            coef = yi * dmargin(yi * margin)
            if l2:
                params -= (step * l2) * params
            if coef != 0.0:
                params -= (step * coef) * xi

    def flops_per_example(self, avg_nnz: float) -> float:
        """Dot product + scale + scatter: ~4 flops per non-zero."""
        return 4.0 * avg_nnz + 8.0

    def _check_params(self, params: np.ndarray) -> None:
        if params.shape != (self.n_features,):
            raise ConfigurationError(
                f"params shape {params.shape} != ({self.n_features},)"
            )


class LogisticRegression(LinearModel):
    """Binary logistic regression: ``f(m) = log(1 + exp(-m))``."""

    task = "lr"
    _loss_fn = staticmethod(logistic_loss)
    _dmargin_fn = staticmethod(logistic_dmargin)

    @staticmethod
    def _dmargin_scalar(margin: float) -> float:
        # -sigmoid(-m) == -1 / (1 + exp(m)), computed overflow-safe:
        # the exponential's argument is kept non-positive on each branch.
        m = float(margin)
        if m >= 0:
            e = math.exp(-m)
            return -e / (1.0 + e)
        return -1.0 / (1.0 + math.exp(m))


class LinearSVM(LinearModel):
    """Linear support vector machine with hinge loss: ``f(m) = max(0, 1-m)``.

    Trained by (sub)gradient descent, matching the paper's unregularised
    SVM objective.
    """

    task = "svm"
    _loss_fn = staticmethod(hinge_loss)
    _dmargin_fn = staticmethod(hinge_dmargin)

    @staticmethod
    def _dmargin_scalar(margin: float) -> float:
        return -1.0 if margin < 1.0 else 0.0
