"""Fully-connected multi-layer perceptron (the paper's deep-net task).

Architectures follow Table I's notation, e.g. ``54-10-5-2``: input
width, hidden widths, and a 2-unit softmax output head (the binary
labels map to classes ``{-1 -> 0, +1 -> 1}``).  Hidden activations are
sigmoid — the classic fully-connected MLP of the backpropagation
literature the paper cites [4].

The traced forward/backward passes are expressed through the
instrumented GEMM/elementwise primitives, so a recorded epoch trace
reflects the paper's kernel structure: per-layer matrix products whose
*result sizes* stay tiny for Table I's architectures (at most 300x10),
which is what makes ViennaCL refuse to parallelise them and caps the
synchronous CPU speedup near 2x (Section IV-B, Fig. 6).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..linalg import dense_ops, sparse_ops
from ..linalg.csr import CSRMatrix
from ..utils.errors import ConfigurationError
from .base import ExampleUpdate, Matrix, Model
from .losses import softmax_cross_entropy, softmax_probs

__all__ = ["MLP"]


class MLP(Model):
    """Fully-connected MLP with sigmoid hidden units and a softmax head.

    Parameters
    ----------
    arch:
        Layer widths ``(d_in, h_1, ..., h_k, 2)``.  The output layer
        must have exactly 2 units (binary classification, matching the
        paper's MLP architectures).
    l2:
        Optional ridge coefficient (paper: 0).
    """

    task = "mlp"

    def __init__(self, arch: Sequence[int], l2: float = 0.0) -> None:
        arch = tuple(int(a) for a in arch)
        if len(arch) < 2:
            raise ConfigurationError("MLP needs at least input and output layers")
        if any(a <= 0 for a in arch):
            raise ConfigurationError(f"layer widths must be positive: {arch}")
        if arch[-1] != 2:
            raise ConfigurationError(
                f"output layer must have 2 units (binary tasks), got {arch[-1]}"
            )
        if l2 < 0:
            raise ConfigurationError(f"l2 must be non-negative, got {l2}")
        self.arch = arch
        self.l2 = float(l2)
        self._shapes = [
            (arch[i], arch[i + 1]) for i in range(len(arch) - 1)
        ]
        self._sizes: list[int] = []
        for din, dout in self._shapes:
            self._sizes.append(din * dout)  # weight block
            self._sizes.append(dout)  # bias block
        self._offsets = np.concatenate([[0], np.cumsum(self._sizes)])

    # -- parameter layout -----------------------------------------------------

    @property
    def n_params(self) -> int:
        return int(self._offsets[-1])

    @property
    def n_layers(self) -> int:
        """Number of weight layers."""
        return len(self._shapes)

    def views(self, params: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        """Zero-copy ``(W, b)`` views per layer into the flat vector."""
        if params.shape != (self.n_params,):
            raise ConfigurationError(
                f"params shape {params.shape} != ({self.n_params},)"
            )
        out = []
        for layer, (din, dout) in enumerate(self._shapes):
            w_lo = self._offsets[2 * layer]
            b_lo = self._offsets[2 * layer + 1]
            b_hi = self._offsets[2 * layer + 2]
            W = params[w_lo:b_lo].reshape(din, dout)
            b = params[b_lo:b_hi]
            out.append((W, b))
        return out

    def init_params(self, rng: np.random.Generator) -> np.ndarray:
        """Xavier/Glorot initialisation; biases zero."""
        params = np.zeros(self.n_params)
        for layer, (din, dout) in enumerate(self._shapes):
            scale = np.sqrt(2.0 / (din + dout))
            w_lo = self._offsets[2 * layer]
            b_lo = self._offsets[2 * layer + 1]
            params[w_lo:b_lo] = scale * rng.standard_normal(din * dout)
        return params

    # -- forward / loss --------------------------------------------------------

    def _forward(self, X: Matrix, params: np.ndarray, traced: bool) -> list[np.ndarray]:
        """Return activations ``[A_0, ..., A_L]`` (A_L = logits)."""
        layers = self.views(params)
        if isinstance(X, CSRMatrix):
            acts: list = [X]
        else:
            acts = [np.asarray(X, dtype=np.float64)]
        a = acts[0]
        for li, (W, b) in enumerate(layers):
            last = li == len(layers) - 1
            if isinstance(a, CSRMatrix):
                z = (
                    sparse_ops.csr_matmat(a, W, name=f"fwd_gemm_{li}")
                    if traced
                    else a.matmat(W)
                )
            else:
                z = dense_ops.gemm(a, W, name=f"fwd_gemm_{li}") if traced else a @ W
            z = z + b[None, :]
            if last:
                a = z
            else:
                a = (
                    dense_ops.sigmoid(z, name=f"fwd_sigmoid_{li}")
                    if traced
                    else _sigmoid(z)
                )
            acts.append(a)
        return acts

    def predict_margin(self, X: Matrix, params: np.ndarray) -> np.ndarray:
        logits = self._forward(X, params, traced=False)[-1]
        return logits[:, 1] - logits[:, 0]

    def loss(self, X: Matrix, y: np.ndarray, params: np.ndarray) -> float:
        logits = self._forward(X, params, traced=False)[-1]
        classes = (np.asarray(y) > 0).astype(np.int64)
        value = float(np.mean(softmax_cross_entropy(logits, classes)))
        if self.l2:
            value += 0.5 * self.l2 * float(params @ params)
        return value

    # -- gradients --------------------------------------------------------------

    def full_grad(self, X: Matrix, y: np.ndarray, params: np.ndarray) -> np.ndarray:
        return self._grad(X, y, params, traced=True)

    def minibatch_grad(
        self, X: Matrix, y: np.ndarray, rows: np.ndarray, params: np.ndarray
    ) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        if isinstance(X, CSRMatrix):
            Xb: Matrix = X.take_rows(rows)
        else:
            Xb = np.ascontiguousarray(np.asarray(X)[rows])
        return self._grad(Xb, np.asarray(y)[rows], params, traced=True)

    def _grad(
        self, X: Matrix, y: np.ndarray, params: np.ndarray, traced: bool
    ) -> np.ndarray:
        """Backpropagation producing a flat mean-gradient vector."""
        n = X.shape[0]
        acts = self._forward(X, params, traced)
        logits = acts[-1]
        classes = (np.asarray(y) > 0).astype(np.int64)
        probs = softmax_probs(logits)
        delta = probs
        delta[np.arange(n), classes] -= 1.0
        delta /= max(1, n)

        layers = self.views(params)
        grad = np.zeros(self.n_params)
        gviews = self.views(grad)
        for li in range(len(layers) - 1, -1, -1):
            a_prev = acts[li]
            Wg, bg = gviews[li]
            if isinstance(a_prev, CSRMatrix):
                # dW = a_prev^T @ delta via the transposed SpMV per column.
                if traced:
                    for c in range(delta.shape[1]):
                        Wg[:, c] = sparse_ops.csr_rmatvec(
                            a_prev, np.ascontiguousarray(delta[:, c]), name=f"bwd_dw_{li}"
                        )
                else:
                    for c in range(delta.shape[1]):
                        Wg[:, c] = a_prev.rmatvec(np.ascontiguousarray(delta[:, c]))
            else:
                aT = np.ascontiguousarray(a_prev.T)
                # Weight-gradient GEMM: the result is d_in x d_out and its
                # row-parallelism is a *model* dimension — this is the op
                # ViennaCL keeps serial for the paper's architectures.
                Wg[:] = (
                    dense_ops.gemm(
                        aT, delta, name=f"bwd_dw_{li}", parallelism_scales=False
                    )
                    if traced
                    else aT @ delta
                )
            bg[:] = (
                dense_ops.reduce_sum(delta, axis=0, name=f"bwd_db_{li}")
                if traced
                else delta.sum(axis=0)
            )
            if li > 0:
                W, _ = layers[li]
                WT = np.ascontiguousarray(W.T)
                back = (
                    dense_ops.gemm(delta, WT, name=f"bwd_dx_{li}")
                    if traced
                    else delta @ WT
                )
                a = acts[li]
                if traced:
                    delta = dense_ops.elementwise(
                        lambda _m, _back=back, _a=a: _back * _a * (1.0 - _a),
                        back,
                        name=f"bwd_dsigmoid_{li}",
                        flops_per_element=3.0,
                    )
                else:
                    delta = back * a * (1.0 - a)
        if self.l2:
            grad += self.l2 * params
        return grad

    def example_updates(
        self,
        X: Matrix,
        y: np.ndarray,
        rows: np.ndarray,
        params: np.ndarray,
        step: float,
    ) -> Sequence[ExampleUpdate]:
        """Per-example dense deltas (each touches every parameter).

        The paper never runs per-example Hogwild for MLP (it uses
        Hogbatch with B=512); this method exists for completeness and
        for the library's ablation experiments.
        """
        rows = np.asarray(rows, dtype=np.int64)
        out: list[ExampleUpdate] = []
        for r in rows:
            g = self._grad(
                _take_rows(X, np.asarray([r])), np.asarray(y)[[r]], params, traced=False
            )
            out.append((None, -step * g))
        return out

    def flops_per_example(self, avg_nnz: float) -> float:
        """Forward + backward: ~6 flops per weight, first layer sparse-aware."""
        total = 0.0
        for li, (din, dout) in enumerate(self._shapes):
            eff_in = min(avg_nnz, din) if li == 0 else din
            total += 6.0 * eff_in * dout + 8.0 * dout
        return total


def _take_rows(X: Matrix, rows: np.ndarray) -> Matrix:
    if isinstance(X, CSRMatrix):
        return X.take_rows(rows)
    return np.ascontiguousarray(np.asarray(X)[rows])


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out
