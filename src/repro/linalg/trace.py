"""Operation traces: the contract between algorithms and hardware models.

Every primitive in :mod:`repro.linalg` both *computes* its result with
NumPy and *records* an :class:`OpRecord` describing the abstract work it
performed: floating-point operations, bytes moved, the available degree
of data parallelism, the size of the result (ViennaCL's parallelisation
policy keys on it), and memory-access regularity.  A full SGD iteration
therefore leaves behind a trace that the analytical CPU/GPU models in
:mod:`repro.hardware` turn into time — this is how the reproduction
replaces the paper's wall-clock measurements on hardware we do not have
(see DESIGN.md section 2).

Recording uses an explicit stack of recorders so nested scopes work
(e.g. the grid-search driver wraps a runner that wraps per-op scopes).
Loss evaluation is wrapped in :func:`trace_paused` because the paper
excludes it from iteration timing ("The time to evaluate the loss is
not included in the iteration time", Section IV-A).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

__all__ = ["OpKind", "OpRecord", "Trace", "record_op", "recording", "trace_paused"]


class OpKind(str, Enum):
    """Classification of a primitive operation for costing purposes."""

    GEMM = "gemm"  #: matrix-matrix product
    GEMV = "gemv"  #: matrix-vector product
    ELEMENTWISE = "elementwise"  #: map over arrays (sigmoid, axpy, ...)
    REDUCTION = "reduction"  #: sum/mean/norm style folds
    GATHER_SCATTER = "gather_scatter"  #: indexed reads/writes (sparse model access)
    SPMV = "spmv"  #: sparse matrix-vector / matrix products
    DATA_LOAD = "data_load"  #: streaming a partition of the training set


@dataclass(frozen=True)
class OpRecord:
    """One primitive operation's abstract cost characteristics.

    Attributes
    ----------
    name:
        Human-readable primitive name, e.g. ``"csr_matvec"``.
    kind:
        Cost category; selects which throughput path the hardware
        models use.
    flops:
        Floating-point operations performed.
    bytes_read / bytes_written:
        Memory traffic in bytes, counting each operand once (the cache
        model decides what actually reaches DRAM).
    parallel_tasks:
        Degree of available data parallelism (independent work items a
        parallel backend could split across threads / GPU lanes).
    result_size:
        Number of elements in the output; ViennaCL's policy refuses to
        parallelise matrix products whose result is smaller than a
        threshold (Section IV-B), and the CPU model honours that.
    irregular:
        True when memory access is data-dependent (gathers through a
        sparse index array) — penalised on CPU and, unless coalesced,
        on GPU.
    dispersion:
        max/mean ratio of per-task work (1.0 = perfectly balanced).
        Governs SIMD/warp divergence on GPU: a warp retires with its
        slowest lane.
    cost_scales:
        Whether flops/bytes grow with the number of training examples.
        True for anything touching the example matrix; False for
        model-sized work (the parameter update, regularisation terms).
        Used by :meth:`Trace.scaled` to extrapolate a scaled-data trace
        to the paper's dataset sizes.
    parallelism_scales:
        Whether ``parallel_tasks`` grows with the example count.  True
        when the parallel axis is examples (forward GEMMs, SpMV rows);
        False when it is a model dimension (weight-gradient GEMMs whose
        rows are input features — the ops ViennaCL keeps serial).
    """

    name: str
    kind: OpKind
    flops: float
    bytes_read: float
    bytes_written: float
    parallel_tasks: int = 1
    result_size: int = 0
    irregular: bool = False
    dispersion: float = 1.0
    cost_scales: bool = True
    parallelism_scales: bool = True

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise ValueError("OpRecord cost fields must be non-negative")
        if self.parallel_tasks < 1:
            raise ValueError("parallel_tasks must be >= 1")
        if self.dispersion < 1.0:
            raise ValueError("dispersion is max/mean and must be >= 1")

    @property
    def bytes_total(self) -> float:
        """Total traffic (read + written)."""
        return self.bytes_read + self.bytes_written


@dataclass
class Trace:
    """An ordered collection of :class:`OpRecord` from one code region."""

    ops: list[OpRecord] = field(default_factory=list)

    def add(self, op: OpRecord) -> None:
        """Append one record."""
        self.ops.append(op)

    def extend(self, other: "Trace") -> None:
        """Append all records of *other*."""
        self.ops.extend(other.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[OpRecord]:
        return iter(self.ops)

    @property
    def total_flops(self) -> float:
        """Sum of flops over all ops."""
        return sum(op.flops for op in self.ops)

    @property
    def total_bytes(self) -> float:
        """Sum of read+written bytes over all ops."""
        return sum(op.bytes_total for op in self.ops)

    def by_kind(self) -> dict[OpKind, float]:
        """Total flops per operation kind (profiling helper)."""
        out: dict[OpKind, float] = {}
        for op in self.ops:
            out[op.kind] = out.get(op.kind, 0.0) + op.flops
        return out

    def scaled(self, factor: float) -> "Trace":
        """Extrapolate the trace to a *factor*-times-larger example set.

        Example-driven costs (``cost_scales``) and example-axis
        parallelism (``parallelism_scales``) are multiplied; model-sized
        ops pass through unchanged.  ``result_size`` is only scaled for
        ops whose output is per-example (parallelism_scales), keeping
        the ViennaCL result-size policy faithful: a weight-gradient
        matrix stays d_in x d_out however large the dataset grows.
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        ops = []
        for op in self.ops:
            c = factor if op.cost_scales else 1.0
            p = factor if op.parallelism_scales else 1.0
            ops.append(
                OpRecord(
                    name=op.name,
                    kind=op.kind,
                    flops=op.flops * c,
                    bytes_read=op.bytes_read * c,
                    bytes_written=op.bytes_written * c,
                    parallel_tasks=max(1, int(round(op.parallel_tasks * p))),
                    result_size=max(1, int(round(op.result_size * p)))
                    if op.result_size
                    else op.result_size,
                    irregular=op.irregular,
                    dispersion=op.dispersion,
                    cost_scales=op.cost_scales,
                    parallelism_scales=op.parallelism_scales,
                )
            )
        return Trace(ops)


# --- recorder stack -------------------------------------------------------

_STACK: list[Trace | None] = []


def record_op(op: OpRecord) -> None:
    """Record *op* into the innermost active trace, if any.

    A no-op when no recorder is active (or recording is paused), so the
    primitives stay usable as plain numerical functions.
    """
    if _STACK and _STACK[-1] is not None:
        _STACK[-1].add(op)


@contextlib.contextmanager
def recording() -> Iterator[Trace]:
    """Context manager that captures all ops executed inside it."""
    trace = Trace()
    _STACK.append(trace)
    try:
        yield trace
    finally:
        popped = _STACK.pop()
        assert popped is trace


@contextlib.contextmanager
def trace_paused() -> Iterator[None]:
    """Suppress recording inside the block (loss evaluation, logging)."""
    _STACK.append(None)
    try:
        yield
    finally:
        _STACK.pop()
