"""Instrumented sparse (CSR) primitives.

These mirror :mod:`repro.linalg.dense_ops` for CSR operands.  The key
cost differences the hardware models rely on:

* sparse kernels are **irregular** — the gather ``x[indices]`` walks a
  data-dependent address stream, which is penalised on CPU (cache-line
  utilisation) and on GPU costs one memory transaction per distinct
  line unless coalesced (Section II, memory-coalescing discussion);
* per-row work is **imbalanced** — the recorded ``dispersion``
  (max/mean row nnz) drives the warp-divergence penalty ("there is a
  high variance in the number of non-zero entries ... This forces
  threads to stall while longer examples finish", Section IV-B);
* byte traffic counts the index arrays (4 bytes each) as well as the
  values, matching CSR's real footprint.
"""

from __future__ import annotations

import numpy as np

from ..utils.stats import dispersion_ratio
from .csr import CSRMatrix
from .trace import OpKind, OpRecord, record_op

__all__ = [
    "csr_matvec",
    "csr_rmatvec",
    "csr_matmat",
    "csr_gather_rows",
    "csr_submatvec",
    "gather",
    "scatter_add",
]

_F64 = 8
_I32 = 4


def _row_dispersion(A: CSRMatrix) -> float:
    return dispersion_ratio(A.row_nnz)


def csr_matvec(A: CSRMatrix, x: np.ndarray, name: str = "csr_matvec") -> np.ndarray:
    """``A @ x`` with cost recording (row-parallel SpMV)."""
    out = A.matvec(x)
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.SPMV,
            flops=2.0 * A.nnz,
            bytes_read=A.nnz * (_F64 + _I32) + A.nnz * _F64,  # csr row + gathered x
            bytes_written=A.n_rows * _F64,
            parallel_tasks=max(1, A.n_rows),
            result_size=A.n_rows,
            irregular=True,
            dispersion=_row_dispersion(A),
        )
    )
    return out


def csr_rmatvec(A: CSRMatrix, v: np.ndarray, name: str = "csr_rmatvec") -> np.ndarray:
    """``A.T @ v`` with cost recording (scatter-reduce SpMV).

    The transposed product scatters into the d-dimensional result; on a
    parallel backend this requires either atomics or per-thread partial
    results, both captured by the irregular flag.
    """
    out = A.rmatvec(v)
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.SPMV,
            flops=2.0 * A.nnz,
            bytes_read=A.nnz * (_F64 + _I32) + A.n_rows * _F64,
            bytes_written=A.nnz * _F64,  # scattered accumulations
            parallel_tasks=max(1, A.n_rows),
            result_size=A.n_cols,
            irregular=True,
            dispersion=_row_dispersion(A),
        )
    )
    return out


def csr_matmat(A: CSRMatrix, B: np.ndarray, name: str = "csr_matmat") -> np.ndarray:
    """``A @ B`` for dense *B* with cost recording (CSR x dense GEMM)."""
    out = A.matmat(B)
    k = B.shape[1]
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.SPMV,
            flops=2.0 * A.nnz * k,
            bytes_read=A.nnz * (_F64 + _I32) + A.nnz * k * _F64,
            bytes_written=out.size * _F64,
            parallel_tasks=max(1, A.n_rows),
            result_size=out.size,
            irregular=True,
            dispersion=_row_dispersion(A),
        )
    )
    return out


def csr_gather_rows(
    A: CSRMatrix, rows: np.ndarray, name: str = "csr_gather_rows"
) -> CSRMatrix:
    """Batched row-gather ``A[rows]`` with cost recording.

    One vectorised fancy-index over the flat CSR arrays (see
    :meth:`CSRMatrix.take_rows`); the recorded cost is the streamed
    sub-matrix plus the row-pointer lookups.
    """
    out = A.take_rows(rows)
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.GATHER_SCATTER,
            flops=0.0,
            bytes_read=out.nnz * (_F64 + _I32) + np.asarray(rows).size * 8,
            bytes_written=out.nnz * (_F64 + _I32),
            parallel_tasks=max(1, np.asarray(rows).size),
            result_size=out.nnz,
            irregular=True,
            dispersion=_row_dispersion(out) if out.n_rows else 1.0,
        )
    )
    return out


def csr_submatvec(
    A: CSRMatrix,
    rows: np.ndarray,
    x: np.ndarray,
    name: str = "csr_submatvec",
) -> np.ndarray:
    """``A[rows] @ x`` without materialising the sub-matrix (batched SpMV).

    The margins kernel of a mini-batch/Hogbatch step: gather the rows'
    segments, multiply against the gathered model coordinates and
    segment-reduce.  Only the touched non-zeros are streamed.
    """
    rows = np.asarray(rows, dtype=np.int64)
    indptr, indices, data, _ = A.gather_rows_arrays(rows)
    out = np.zeros(rows.size, dtype=np.float64)
    if indices.size:
        prod = data * x[indices]
        counts = np.diff(indptr)
        nonempty = counts > 0
        out[nonempty] = np.add.reduceat(prod, indptr[:-1][nonempty])
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.SPMV,
            flops=2.0 * indices.size,
            bytes_read=indices.size * (_F64 + _I32) + indices.size * _F64,
            bytes_written=rows.size * _F64,
            parallel_tasks=max(1, rows.size),
            result_size=rows.size,
            irregular=True,
            dispersion=dispersion_ratio(np.diff(indptr)) if rows.size else 1.0,
        )
    )
    return out


def gather(x: np.ndarray, indices: np.ndarray, name: str = "gather") -> np.ndarray:
    """Indexed read ``x[indices]`` with cost recording.

    This is the model-read half of a single Hogwild step on sparse
    data: only the coordinates present in the example are loaded.
    """
    indices = np.asarray(indices)
    out = x[indices]
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.GATHER_SCATTER,
            flops=0.0,
            bytes_read=indices.size * (_F64 + _I32),
            bytes_written=indices.size * _F64,
            parallel_tasks=max(1, indices.size),
            result_size=indices.size,
            irregular=True,
        )
    )
    return out


def scatter_add(
    x: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    name: str = "scatter_add",
) -> np.ndarray:
    """In-place indexed accumulate ``x[indices] += values`` with recording.

    Duplicate indices accumulate (``np.add.at`` semantics).  This is the
    model-write half of a Hogwild step; on real hardware these writes
    are the source of coherence traffic (CPU) and update conflicts
    (GPU warps).
    """
    indices = np.asarray(indices)
    values = np.asarray(values, dtype=np.float64)
    np.add.at(x, indices, values)
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.GATHER_SCATTER,
            flops=float(indices.size),
            bytes_read=indices.size * (_F64 + _I32),
            bytes_written=indices.size * _F64,
            parallel_tasks=max(1, indices.size),
            result_size=indices.size,
            irregular=True,
        )
    )
    return x
