"""Compressed Sparse Row matrices, implemented from scratch on NumPy.

The paper's sparse configurations all use CSR ("A sparse matrix format,
e.g., Compressed Sparse Row (CSR), is the only alternative that fits in
memory", Section I).  We implement our own CSR type rather than using
``scipy.sparse`` because the hardware models need access to structural
statistics scipy does not expose cheaply (per-row nnz dispersion,
touched cache lines per row, column document frequencies) and because
the asynchronous engine updates the shared model through per-row
index/value views.

Layout (identical to the standard CSR definition):

* ``indptr``  — int64 array of length ``n_rows + 1``; row *i* occupies
  ``indices[indptr[i]:indptr[i+1]]`` / ``data[...]``.
* ``indices`` — int32 column indices, strictly increasing within a row.
* ``data``    — float64 values.

Invariants are checked at construction and exercised by the
hypothesis-based property tests.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..utils.errors import DataFormatError
from ..utils.units import CACHE_LINE_BYTES, FLOAT64_BYTES, INT32_BYTES

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """An immutable CSR matrix over float64 values.

    Parameters
    ----------
    indptr, indices, data:
        Standard CSR arrays (see module docstring).
    shape:
        ``(n_rows, n_cols)``.
    check:
        Validate structural invariants (on by default; generators that
        construct provably valid structure pass ``False`` to skip the
        O(nnz) verification).
    """

    __slots__ = ("indptr", "indices", "data", "shape")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
        check: bool = True,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        if check:
            self._validate()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dense(cls, arr: np.ndarray) -> "CSRMatrix":
        """Compress a dense 2-D array, dropping exact zeros."""
        arr = np.asarray(arr, dtype=np.float64)
        if arr.ndim != 2:
            raise DataFormatError(f"from_dense expects 2-D input, got ndim={arr.ndim}")
        mask = arr != 0.0
        counts = mask.sum(axis=1)
        indptr = np.zeros(arr.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        rows, cols = np.nonzero(mask)
        data = arr[rows, cols]
        return cls(indptr, cols.astype(np.int32), data, arr.shape, check=False)

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[tuple[np.ndarray, np.ndarray]],
        n_cols: int,
    ) -> "CSRMatrix":
        """Build from per-row ``(indices, values)`` pairs.

        Each row's indices must be strictly increasing; this is the
        format the LIBSVM reader and the synthetic generators produce.
        """
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        idx_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray] = []
        for i, (idx, val) in enumerate(rows):
            idx = np.asarray(idx, dtype=np.int32)
            val = np.asarray(val, dtype=np.float64)
            if idx.shape != val.shape:
                raise DataFormatError(f"row {i}: indices/values length mismatch")
            indptr[i + 1] = indptr[i] + idx.size
            idx_parts.append(idx)
            val_parts.append(val)
        indices = (
            np.concatenate(idx_parts) if idx_parts else np.empty(0, dtype=np.int32)
        )
        data = np.concatenate(val_parts) if val_parts else np.empty(0, dtype=np.float64)
        return cls(indptr, indices, data, (len(rows), n_cols))

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise DataFormatError(f"negative shape {self.shape}")
        if self.indptr.shape[0] != n_rows + 1:
            raise DataFormatError(
                f"indptr length {self.indptr.shape[0]} != n_rows+1 ({n_rows + 1})"
            )
        if self.indptr[0] != 0:
            raise DataFormatError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise DataFormatError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape[0] != nnz or self.data.shape[0] != nnz:
            raise DataFormatError("indices/data length must equal indptr[-1]")
        if nnz:
            if self.indices.min() < 0 or self.indices.max() >= n_cols:
                raise DataFormatError("column index out of range")
            # strictly increasing within each row
            if nnz > 1:
                d = np.diff(self.indices)
                inner = np.ones(nnz - 1, dtype=bool)
                row_starts = self.indptr[1:-1]
                boundary = row_starts[(row_starts > 0) & (row_starts < nnz)]
                inner[boundary - 1] = False  # diffs across row boundaries exempt
                if np.any((d <= 0) & inner):
                    raise DataFormatError("column indices must increase within a row")

    # -- basic properties ---------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of rows (training examples)."""
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of columns (features)."""
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self.indptr[-1])

    @property
    def row_nnz(self) -> np.ndarray:
        """Per-row non-zero counts (int64 array of length ``n_rows``)."""
        return np.diff(self.indptr)

    @property
    def density(self) -> float:
        """nnz / (rows * cols); the paper's 'sparsity' percentage / 100."""
        cells = self.n_rows * self.n_cols
        return self.nnz / cells if cells else 0.0

    @property
    def memory_bytes(self) -> int:
        """Bytes of the CSR representation (Table I's sparse size)."""
        return (
            self.indptr.size * 8
            + self.indices.size * INT32_BYTES
            + self.data.size * FLOAT64_BYTES
        )

    @property
    def dense_bytes(self) -> int:
        """Bytes a dense float64 representation would take (Table I)."""
        return self.n_rows * self.n_cols * FLOAT64_BYTES

    def column_frequencies(self) -> np.ndarray:
        """Fraction of rows in which each column is non-zero.

        The coherence model derives Hogwild conflict probabilities from
        these document frequencies: concurrent updates collide on the
        cache lines of *popular* features.
        """
        counts = np.bincount(self.indices, minlength=self.n_cols)
        return counts / max(1, self.n_rows)

    def row_cache_lines(self) -> np.ndarray:
        """Distinct model cache lines touched by each row's update.

        A model entry is 8 bytes, so one 64-byte line holds 8 adjacent
        coordinates; a row touching columns ``J`` dirties
        ``unique(J // 8)`` lines.
        """
        per_line = CACHE_LINE_BYTES // FLOAT64_BYTES
        counts = self.row_nnz
        if self.nnz == 0:
            return np.zeros(self.n_rows, dtype=np.int64)
        lines = (self.indices // per_line).astype(np.int64)
        # Indices are sorted within a row, so line ids are sorted: a
        # row's distinct-line count is 1 + its number of breaks.  Breaks
        # are counted globally (one diff over the whole array) and
        # diffs that straddle a row boundary are masked out.
        breaks = np.zeros(self.nnz, dtype=bool)
        if self.nnz > 1:
            breaks[1:] = np.diff(lines) != 0
            row_starts = self.indptr[1:-1]
            breaks[row_starts[row_starts < self.nnz]] = False  # boundary diffs exempt
        out = np.zeros(self.n_rows, dtype=np.int64)
        nonempty = counts > 0
        cum = np.concatenate(([0], np.cumsum(breaks)))
        out[nonempty] = 1 + (cum[self.indptr[1:]] - cum[self.indptr[:-1]])[nonempty]
        return out

    # -- access -------------------------------------------------------------

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of row *i*'s ``(indices, values)`` (no copies)."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def iter_rows(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Iterate over ``(indices, values)`` row views."""
        for i in range(self.n_rows):
            yield self.row(i)

    def take_rows(self, rows: np.ndarray) -> "CSRMatrix":
        """Return a new CSR containing the given rows, in order.

        The gather is fully vectorised: one fancy-index over the flat
        ``indices``/``data`` arrays instead of a Python loop per row —
        this is the batched row-gather the asynchronous engine and the
        shared-memory backend lean on every round.
        """
        indptr, indices, data, shape = self.gather_rows_arrays(rows)
        return CSRMatrix(indptr, indices, data, shape, check=False)

    def gather_rows_arrays(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple[int, int]]:
        """Batched row-gather returning raw ``(indptr, indices, data, shape)``.

        Identical content to :meth:`take_rows` without constructing a
        :class:`CSRMatrix`; hot paths that only need the concatenated
        coordinate/value arrays (per-example scatter updates) use this
        to skip the wrapper.
        """
        rows = np.asarray(rows, dtype=np.int64)
        starts = self.indptr[rows]
        counts = self.indptr[rows + 1] - starts
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        nnz = int(indptr[-1])
        if nnz == 0:
            return (
                indptr,
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.float64),
                (rows.size, self.n_cols),
            )
        # Flat source positions: for each output slot, the offset of its
        # row's segment start plus the slot's rank within the segment.
        flat = np.repeat(starts - indptr[:-1], counts) + np.arange(nnz, dtype=np.int64)
        return (
            indptr,
            self.indices[flat],
            self.data[flat],
            (rows.size, self.n_cols),
        )

    def to_dense(self) -> np.ndarray:
        """Expand to a dense float64 array."""
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.n_rows), self.row_nnz)
        out[rows, self.indices] = self.data
        return out

    # -- arithmetic (uninstrumented; see sparse_ops for traced versions) ----

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` for a dense vector *x* of length ``n_cols``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise DataFormatError(f"matvec expects shape ({self.n_cols},), got {x.shape}")
        prod = self.data * x[self.indices]
        # segment sum over rows via reduceat (empty rows handled below)
        if self.nnz == 0:
            return np.zeros(self.n_rows)
        starts = self.indptr[:-1]
        out = np.zeros(self.n_rows, dtype=np.float64)
        nonempty = self.row_nnz > 0
        if np.any(nonempty):
            out[nonempty] = np.add.reduceat(prod, starts[nonempty])
        return out

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        """``A.T @ v`` for a dense vector *v* of length ``n_rows``."""
        v = np.asarray(v, dtype=np.float64)
        if v.shape != (self.n_rows,):
            raise DataFormatError(
                f"rmatvec expects shape ({self.n_rows},), got {v.shape}"
            )
        out = np.zeros(self.n_cols, dtype=np.float64)
        weights = np.repeat(v, self.row_nnz)
        np.add.at(out, self.indices, weights * self.data)
        return out

    def matmat(self, B: np.ndarray) -> np.ndarray:
        """``A @ B`` for a dense matrix *B* of shape ``(n_cols, k)``."""
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2 or B.shape[0] != self.n_cols:
            raise DataFormatError(
                f"matmat expects ({self.n_cols}, k) operand, got {B.shape}"
            )
        out = np.zeros((self.n_rows, B.shape[1]), dtype=np.float64)
        gathered = B[self.indices] * self.data[:, None]
        starts = self.indptr[:-1]
        nonempty = self.row_nnz > 0
        if np.any(nonempty):
            out[nonempty] = np.add.reduceat(gathered, starts[nonempty], axis=0)
        return out

    def __repr__(self) -> str:
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.4%})"
        )
