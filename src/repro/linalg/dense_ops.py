"""Instrumented dense primitives (the ViennaCL-style unified kernel API).

Each function performs the numerical operation with NumPy and records an
:class:`~repro.linalg.trace.OpRecord` describing its abstract cost.  The
synchronous SGD runners are written exclusively against this API (and
its sparse sibling), mirroring how the paper's synchronous implementation
is "a sequence of primitive linear algebra function invocations"
(Section III-A) whose backend — CPU threads or GPU kernels — is selected
at costing time, not at call time.

Byte accounting counts each operand once at float64 width; the cache
model in :mod:`repro.hardware` decides which accesses hit which level.
"""

from __future__ import annotations

import numpy as np

from .trace import OpKind, OpRecord, record_op

__all__ = [
    "gemm",
    "gemv",
    "rgemv",
    "axpy",
    "scale",
    "elementwise",
    "sigmoid",
    "reduce_sum",
    "reduce_mean",
    "outer_update",
    "batch_sgd_deltas",
]

_F64 = 8


def gemm(
    A: np.ndarray,
    B: np.ndarray,
    name: str = "gemm",
    cost_scales: bool = True,
    parallelism_scales: bool = True,
) -> np.ndarray:
    """Matrix product ``A @ B`` with cost recording.

    flops = 2·m·n·k; the available parallelism is the number of result
    rows (row-blocked GEMM), and ``result_size`` feeds the ViennaCL
    minimum-size parallelisation policy.
    """
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    m, k = A.shape
    k2, n = B.shape
    if k != k2:
        raise ValueError(f"gemm shape mismatch: {A.shape} @ {B.shape}")
    out = A @ B
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.GEMM,
            flops=2.0 * m * n * k,
            bytes_read=(A.size + B.size) * _F64,
            bytes_written=out.size * _F64,
            parallel_tasks=max(1, m),
            result_size=out.size,
            cost_scales=cost_scales,
            parallelism_scales=parallelism_scales,
        )
    )
    return out


def gemv(
    A: np.ndarray,
    x: np.ndarray,
    name: str = "gemv",
    cost_scales: bool = True,
    parallelism_scales: bool = True,
) -> np.ndarray:
    """Matrix-vector product ``A @ x`` with cost recording."""
    A = np.asarray(A, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    m, k = A.shape
    if x.shape != (k,):
        raise ValueError(f"gemv shape mismatch: {A.shape} @ {x.shape}")
    out = A @ x
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.GEMV,
            flops=2.0 * m * k,
            bytes_read=(A.size + x.size) * _F64,
            bytes_written=out.size * _F64,
            parallel_tasks=max(1, m),
            result_size=out.size,
            cost_scales=cost_scales,
            parallelism_scales=parallelism_scales,
        )
    )
    return out


def rgemv(
    A: np.ndarray,
    v: np.ndarray,
    name: str = "rgemv",
    cost_scales: bool = True,
    parallelism_scales: bool = True,
) -> np.ndarray:
    """Transposed matrix-vector product ``A.T @ v`` with cost recording."""
    A = np.asarray(A, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    m, k = A.shape
    if v.shape != (m,):
        raise ValueError(f"rgemv shape mismatch: {A.T.shape} @ {v.shape}")
    out = A.T @ v
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.GEMV,
            flops=2.0 * m * k,
            bytes_read=(A.size + v.size) * _F64,
            bytes_written=out.size * _F64,
            parallel_tasks=max(1, k),
            result_size=out.size,
            cost_scales=cost_scales,
            parallelism_scales=parallelism_scales,
        )
    )
    return out


def axpy(
    alpha: float,
    x: np.ndarray,
    y: np.ndarray,
    name: str = "axpy",
    cost_scales: bool = True,
    parallelism_scales: bool = True,
) -> np.ndarray:
    """Return ``alpha * x + y`` (new array) with cost recording."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    out = alpha * x + y
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.ELEMENTWISE,
            flops=2.0 * out.size,
            bytes_read=(x.size + y.size) * _F64,
            bytes_written=out.size * _F64,
            parallel_tasks=max(1, out.size),
            result_size=out.size,
            cost_scales=cost_scales,
            parallelism_scales=parallelism_scales,
        )
    )
    return out


def scale(
    alpha: float,
    x: np.ndarray,
    name: str = "scale",
    cost_scales: bool = True,
    parallelism_scales: bool = True,
) -> np.ndarray:
    """Return ``alpha * x`` with cost recording."""
    x = np.asarray(x, dtype=np.float64)
    out = alpha * x
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.ELEMENTWISE,
            flops=float(out.size),
            bytes_read=x.size * _F64,
            bytes_written=out.size * _F64,
            parallel_tasks=max(1, out.size),
            result_size=out.size,
            cost_scales=cost_scales,
            parallelism_scales=parallelism_scales,
        )
    )
    return out


def elementwise(
    fn,
    x: np.ndarray,
    name: str = "elementwise",
    flops_per_element: float = 4.0,
    cost_scales: bool = True,
    parallelism_scales: bool = True,
) -> np.ndarray:
    """Apply a vectorised unary *fn* with cost recording.

    ``flops_per_element`` approximates transcendental cost (a sigmoid is
    several flops, not one); the default of 4 matches common estimates
    for exp-based activations on SIMD hardware.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.asarray(fn(x), dtype=np.float64)
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.ELEMENTWISE,
            flops=flops_per_element * x.size,
            bytes_read=x.size * _F64,
            bytes_written=out.size * _F64,
            parallel_tasks=max(1, x.size),
            result_size=out.size,
            cost_scales=cost_scales,
            parallelism_scales=parallelism_scales,
        )
    )
    return out


def sigmoid(
    x: np.ndarray,
    name: str = "sigmoid",
    cost_scales: bool = True,
    parallelism_scales: bool = True,
) -> np.ndarray:
    """Numerically stable logistic function with cost recording."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.ELEMENTWISE,
            flops=6.0 * x.size,
            bytes_read=x.size * _F64,
            bytes_written=out.size * _F64,
            parallel_tasks=max(1, x.size),
            result_size=out.size,
            cost_scales=cost_scales,
            parallelism_scales=parallelism_scales,
        )
    )
    return out


def reduce_sum(
    x: np.ndarray,
    axis=None,
    name: str = "reduce_sum",
    cost_scales: bool = True,
    parallelism_scales: bool = True,
) -> np.ndarray:
    """Sum-reduction with cost recording."""
    x = np.asarray(x, dtype=np.float64)
    out = np.asarray(x.sum(axis=axis), dtype=np.float64)
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.REDUCTION,
            flops=float(x.size),
            bytes_read=x.size * _F64,
            bytes_written=max(1, out.size) * _F64,
            parallel_tasks=max(1, x.size),
            result_size=max(1, out.size),
            cost_scales=cost_scales,
            parallelism_scales=parallelism_scales,
        )
    )
    return out


def reduce_mean(
    x: np.ndarray,
    axis=None,
    name: str = "reduce_mean",
    cost_scales: bool = True,
    parallelism_scales: bool = True,
) -> np.ndarray:
    """Mean-reduction with cost recording."""
    x = np.asarray(x, dtype=np.float64)
    out = np.asarray(x.mean(axis=axis), dtype=np.float64)
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.REDUCTION,
            flops=float(x.size) + 1.0,
            bytes_read=x.size * _F64,
            bytes_written=max(1, out.size) * _F64,
            parallel_tasks=max(1, x.size),
            result_size=max(1, out.size),
            cost_scales=cost_scales,
            parallelism_scales=parallelism_scales,
        )
    )
    return out


def batch_sgd_deltas(
    Xb: np.ndarray,
    coef: np.ndarray,
    step: float,
    name: str = "batch_sgd_deltas",
    cost_scales: bool = True,
    parallelism_scales: bool = True,
) -> np.ndarray:
    """Per-example dense SGD deltas ``-step * coef[:, None] * Xb``.

    The batched gradient kernel of an incremental round: one broadcasted
    product replaces a Python loop of per-example row scalings.  Row *i*
    of the result is bit-identical to ``(-step * coef[i]) * Xb[i]``.
    """
    Xb = np.asarray(Xb, dtype=np.float64)
    coef = np.asarray(coef, dtype=np.float64)
    out = (-step * coef)[:, None] * Xb
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.ELEMENTWISE,
            flops=2.0 * out.size,
            bytes_read=(Xb.size + coef.size) * _F64,
            bytes_written=out.size * _F64,
            parallel_tasks=max(1, Xb.shape[0]),
            result_size=out.size,
            cost_scales=cost_scales,
            parallelism_scales=parallelism_scales,
        )
    )
    return out


def outer_update(
    W: np.ndarray,
    alpha: float,
    u: np.ndarray,
    v: np.ndarray,
    name: str = "outer_update",
    cost_scales: bool = True,
    parallelism_scales: bool = True,
) -> np.ndarray:
    """In-place rank-1 update ``W += alpha * outer(u, v)`` with recording.

    Used by per-example MLP weight updates; returns *W* for chaining.
    """
    W += alpha * np.outer(u, v)
    record_op(
        OpRecord(
            name=name,
            kind=OpKind.ELEMENTWISE,
            flops=2.0 * W.size,
            bytes_read=(u.size + v.size + W.size) * _F64,
            bytes_written=W.size * _F64,
            parallel_tasks=max(1, W.shape[0]),
            result_size=W.size,
            cost_scales=cost_scales,
            parallelism_scales=parallelism_scales,
        )
    )
    return W
