"""ViennaCL-style kernel parallelisation policy.

The paper traces an unexpected finding — only ~2x parallel-CPU speedup
for synchronous MLP — to a ViennaCL implementation detail:

    "ViennaCL parallelizes matrix product based on the size of the
    result matrix, which is at most 300x10 for our MLP architectures.
    Since ViennaCL requires a minimum size that is larger than 5000,
    there is no parallelism applied to matrix multiplication."
    (Section IV-B)

We encode that policy here so the CPU hardware model can honour it when
costing a trace, and Fig. 6 (speedup vs. MLP width) reproduces: once the
hidden layers grow, result matrices cross the threshold, GEMMs go
parallel, and the speedup climbs toward (but never reaches) the thread
count because the input-layer data load stays serial.
"""

from __future__ import annotations

from dataclasses import dataclass

from .trace import OpKind, OpRecord

__all__ = ["KernelPolicy", "VIENNACL_POLICY", "FULLY_PARALLEL_POLICY"]


@dataclass(frozen=True)
class KernelPolicy:
    """Decides how many threads a kernel may use on the CPU backend.

    Attributes
    ----------
    name:
        Identifier shown in reports.
    gemm_min_result_size:
        Matrix products whose ``result_size`` is **not strictly larger**
        than this run on a single thread (ViennaCL's documented
        behaviour).  Set to 0 to always parallelise.
    parallel_data_load:
        Whether streaming the input partition can be split across
        threads.  ViennaCL reads the operand serially per kernel; the
        paper notes "the input layer cannot be parallelized".
    """

    name: str
    gemm_min_result_size: int = 5000
    parallel_data_load: bool = False

    def max_threads(self, op: OpRecord, threads: int) -> int:
        """Threads the backend may devote to *op* under this policy."""
        if threads <= 1:
            return 1
        if op.kind is OpKind.GEMM and op.result_size <= self.gemm_min_result_size:
            return 1
        if op.kind is OpKind.DATA_LOAD and not self.parallel_data_load:
            return 1
        # Never more threads than independent work items.
        return max(1, min(threads, op.parallel_tasks))


#: The policy the paper's synchronous implementation inherits from
#: ViennaCL 1.7.1.
VIENNACL_POLICY = KernelPolicy(name="viennacl-1.7.1")

#: An idealised policy used by ablation benchmarks to show how much of
#: the paper's MLP result is explained by the GEMM threshold.
FULLY_PARALLEL_POLICY = KernelPolicy(
    name="fully-parallel", gemm_min_result_size=0, parallel_data_load=True
)
