"""Linear-algebra substrate: CSR matrices, instrumented primitives, traces.

This package plays the role ViennaCL plays in the paper: a single
primitive API covering dense and sparse operands, with the backend
(sequential CPU / parallel CPU / GPU) chosen when a recorded operation
trace is *costed* by :mod:`repro.hardware`, not when it is executed.
"""

from .csr import CSRMatrix
from .dense_ops import (
    axpy,
    elementwise,
    gemm,
    gemv,
    outer_update,
    reduce_mean,
    reduce_sum,
    rgemv,
    scale,
    sigmoid,
)
from .policy import FULLY_PARALLEL_POLICY, VIENNACL_POLICY, KernelPolicy
from .sparse_ops import csr_matmat, csr_matvec, csr_rmatvec, gather, scatter_add
from .trace import OpKind, OpRecord, Trace, record_op, recording, trace_paused

__all__ = [
    "CSRMatrix",
    "gemm",
    "gemv",
    "rgemv",
    "axpy",
    "scale",
    "elementwise",
    "sigmoid",
    "reduce_sum",
    "reduce_mean",
    "outer_update",
    "csr_matvec",
    "csr_rmatvec",
    "csr_matmat",
    "gather",
    "scatter_add",
    "OpKind",
    "OpRecord",
    "Trace",
    "record_op",
    "recording",
    "trace_paused",
    "KernelPolicy",
    "VIENNACL_POLICY",
    "FULLY_PARALLEL_POLICY",
]
