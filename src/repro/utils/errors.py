"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from numerical failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CellQuarantinedError",
    "ConfigurationError",
    "DataFormatError",
    "DivergenceError",
    "ServerDiedError",
    "SnapshotUnavailableError",
    "TraceError",
    "WorkerError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid combination of options or an out-of-range parameter."""


class DataFormatError(ReproError, ValueError):
    """Malformed input data (bad CSR structure, unparsable LIBSVM line, ...)."""


class DivergenceError(ReproError, ArithmeticError):
    """The optimisation produced non-finite losses and cannot continue.

    The paper reports such configurations as ``inf`` time-to-convergence
    (Table III); the SGD runners catch this error and record the run as
    non-convergent instead of crashing.

    The optional structured attributes identify *which* run diverged
    when the error crosses a process boundary (the experiment grid's
    divergence sentinel): the cell label, the step size that produced
    the non-finite loss, and the attempt number.
    """

    def __init__(
        self,
        message: str,
        *,
        cell: str | None = None,
        step_size: float | None = None,
        attempt: int | None = None,
    ) -> None:
        super().__init__(message)
        self.cell = cell
        self.step_size = step_size
        self.attempt = attempt

    def describe(self) -> dict:
        """Plain-dict form recorded into cell-failure exception chains."""
        return {
            "message": str(self),
            "cell": self.cell,
            "step_size": self.step_size,
            "attempt": self.attempt,
        }


class CellQuarantinedError(ReproError, RuntimeError):
    """The requested grid cell was quarantined by a keep-going grid run.

    Raised by :meth:`repro.experiments.ExperimentContext.run` instead of
    silently recomputing a cell the resilient executor already gave up
    on.  Drivers that can render a partial grid call
    :meth:`~repro.experiments.ExperimentContext.try_run`, which maps
    this condition to ``None`` (a gap marker) instead.
    """

    def __init__(self, message: str, *, failure=None) -> None:
        super().__init__(message)
        #: The :class:`repro.experiments.CellFailure` that quarantined
        #: the cell, when available.
        self.failure = failure


class SnapshotUnavailableError(ReproError, RuntimeError):
    """No consistent model snapshot can be served right now.

    The scoring service's structured *retriable* failure: raised on a
    cold start (the trainer has not published a snapshot yet), when a
    snapshot source has disappeared before ever publishing, or when a
    seqlock read exhausts its retry bound because the publisher wedged
    mid-publish.  Unlike a crash, the correct client reaction is to
    retry after a delay — :meth:`describe` carries that contract over
    the wire (``retriable: true``), following the same structured-error
    idiom as :class:`WorkerError` / :class:`DivergenceError`.
    """

    #: Machine-readable failure class sent to clients.
    ERROR_TYPE = "snapshot-unavailable"

    def __init__(
        self,
        message: str,
        *,
        reason: str | None = None,
        retriable: bool = True,
    ) -> None:
        super().__init__(message)
        #: Short cause tag: "cold-start", "no-descriptor", "no-segment",
        #: "retry-exhausted", "trainer-dead", ...
        self.reason = reason
        self.retriable = retriable

    def describe(self) -> dict:
        """Plain-dict form served to clients as a structured error."""
        return {
            "type": self.ERROR_TYPE,
            "message": str(self),
            "reason": self.reason,
            "retriable": self.retriable,
        }


class ServerDiedError(ReproError, RuntimeError):
    """The parameter-server process died or stopped answering probes.

    Raised by the parent's control-plane proxy when the shard server's
    process exits, its control socket drops, or a liveness probe times
    out (a wedged server counts as dead — crash-restart failover covers
    stalls and crashes with one mechanism).  The parent supervisor
    catches it and, budget permitting, respawns the server from the
    newest valid checkpoint; without a recovery policy it surfaces as a
    fatal :class:`WorkerError`.
    """

    def __init__(
        self,
        message: str,
        *,
        phase: str | None = None,
        epoch: int | None = None,
        exitcode: int | None = None,
    ) -> None:
        super().__init__(message)
        #: Control operation that observed the death ("probe",
        #: "release", "snapshot", "spawn", ...).
        self.phase = phase
        self.epoch = epoch
        self.exitcode = exitcode

    def describe(self) -> dict:
        """Plain-dict form recorded into recovery trajectories."""
        return {
            "message": str(self),
            "phase": self.phase,
            "epoch": self.epoch,
            "exitcode": self.exitcode,
        }


class TraceError(ReproError, RuntimeError):
    """Operation-trace recording was used outside an active recorder."""


class WorkerError(ReproError, RuntimeError):
    """A parallel worker process died or stopped responding mid-run.

    Raised by the shared-memory backend after it has torn down the
    remaining workers and released the shared parameter buffer, so the
    caller never leaks OS resources on a crashed run.

    The structured attributes identify the failure for recovery
    policies and post-mortems: which worker (``None`` for a barrier
    timeout with no identifiable corpse), at which optimisation epoch,
    in which phase (``"epoch-start"``, ``"epoch-end"``,
    ``"shutdown"``, ``"join"``), and the observed exit code, if any.
    """

    def __init__(
        self,
        message: str,
        *,
        worker_id: int | None = None,
        epoch: int | None = None,
        phase: str | None = None,
        exitcode: int | None = None,
    ) -> None:
        super().__init__(message)
        self.worker_id = worker_id
        self.epoch = epoch
        self.phase = phase
        self.exitcode = exitcode

    def describe(self) -> dict:
        """Plain-dict form recorded into recovery trajectories."""
        return {
            "message": str(self),
            "worker_id": self.worker_id,
            "epoch": self.epoch,
            "phase": self.phase,
            "exitcode": self.exitcode,
        }
