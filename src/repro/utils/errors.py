"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from numerical failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DataFormatError",
    "DivergenceError",
    "TraceError",
    "WorkerError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid combination of options or an out-of-range parameter."""


class DataFormatError(ReproError, ValueError):
    """Malformed input data (bad CSR structure, unparsable LIBSVM line, ...)."""


class DivergenceError(ReproError, ArithmeticError):
    """The optimisation produced non-finite losses and cannot continue.

    The paper reports such configurations as ``inf`` time-to-convergence
    (Table III); the SGD runners catch this error and record the run as
    non-convergent instead of crashing.
    """


class TraceError(ReproError, RuntimeError):
    """Operation-trace recording was used outside an active recorder."""


class WorkerError(ReproError, RuntimeError):
    """A parallel worker process died or stopped responding mid-run.

    Raised by the shared-memory backend after it has torn down the
    remaining workers and released the shared parameter buffer, so the
    caller never leaks OS resources on a crashed run.
    """
