"""Argument-validation helpers.

Centralised so every public entry point raises the same
:class:`~repro.utils.errors.ConfigurationError` with a consistent
message format, which the test suite asserts on.
"""

from __future__ import annotations

from typing import Iterable, TypeVar

import numpy as np

from .errors import ConfigurationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in",
    "check_probability",
    "check_array_2d",
    "check_labels",
]

T = TypeVar("T")


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it."""
    if not value >= 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it."""
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in(name: str, value: T, allowed: Iterable[T]) -> T:
    """Require *value* to be one of *allowed*; return it."""
    allowed = list(allowed)
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {allowed}, got {value!r}")
    return value


def check_array_2d(name: str, arr: np.ndarray) -> np.ndarray:
    """Require a 2-D float ndarray; return it as float64 C-contiguous.

    The dense kernels assume C order (row-major example layout); the
    hpc guide's cache-effects advice applies directly: row scans must be
    stride-1.
    """
    arr = np.asarray(arr, dtype=np.float64)
    if arr.ndim != 2:
        raise ConfigurationError(f"{name} must be 2-D, got ndim={arr.ndim}")
    return np.ascontiguousarray(arr)


def check_labels(name: str, y: np.ndarray, n: int) -> np.ndarray:
    """Require +/-1 labels of length *n*; return them as float64.

    All three tasks in the paper (LR, SVM, MLP heads) are trained on
    binary labels; the generators emit them in {-1, +1} convention.
    """
    y = np.asarray(y, dtype=np.float64).ravel()
    if y.shape[0] != n:
        raise ConfigurationError(f"{name} must have length {n}, got {y.shape[0]}")
    bad = ~np.isin(y, (-1.0, 1.0))
    if bad.any():
        raise ConfigurationError(
            f"{name} must contain only -1/+1 labels; "
            f"found {np.unique(y[bad])[:5]!r}"
        )
    return y
