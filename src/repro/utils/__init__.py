"""Shared utilities: RNG management, statistics, units, tables, validation."""

from .errors import (
    ConfigurationError,
    DataFormatError,
    DivergenceError,
    ReproError,
    TraceError,
)
from .rng import DEFAULT_SEED, derive_rng, make_rng, spawn_streams, stable_hash
from .stats import RunningStats, dispersion_ratio, geometric_mean, percentile_summary
from .tables import format_cell, render_bar_chart, render_line_chart, render_table
from .units import (
    CACHE_LINE_BYTES,
    FLOAT32_BYTES,
    FLOAT64_BYTES,
    GIGA,
    GiB,
    INT32_BYTES,
    KILO,
    KiB,
    MEGA,
    MiB,
    format_bytes,
    format_seconds,
)
from .validation import (
    check_array_2d,
    check_in,
    check_labels,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DataFormatError",
    "DivergenceError",
    "TraceError",
    "DEFAULT_SEED",
    "make_rng",
    "derive_rng",
    "spawn_streams",
    "stable_hash",
    "RunningStats",
    "geometric_mean",
    "dispersion_ratio",
    "percentile_summary",
    "render_table",
    "render_bar_chart",
    "render_line_chart",
    "format_cell",
    "KiB",
    "MiB",
    "GiB",
    "KILO",
    "MEGA",
    "GIGA",
    "CACHE_LINE_BYTES",
    "FLOAT64_BYTES",
    "FLOAT32_BYTES",
    "INT32_BYTES",
    "format_bytes",
    "format_seconds",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in",
    "check_array_2d",
    "check_labels",
]
