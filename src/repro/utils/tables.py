"""Plain-text table and figure rendering for the experiment harness.

The benchmark drivers print their results in the same row/column layout
as the paper's Tables I-III, and render its Figures 6-9 as ASCII charts
so a terminal-only run still produces a visual shape comparison.  No
plotting dependency is required (the environment is offline).
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["render_table", "render_bar_chart", "render_line_chart", "format_cell"]


def format_cell(value, precision: int = 2) -> str:
    """Format one table cell the way the paper does.

    Floats become fixed-point with *precision* digits; infinities render
    as ``inf`` (the paper's Table III uses the infinity symbol for
    non-convergent configurations); integers pass through; strings pass
    through unchanged.
    """
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    v = float(value)
    if math.isnan(v):
        return "nan"
    if math.isinf(v):
        return "inf"
    if v != 0 and abs(v) < 10 ** (-precision):
        return f"{v:.2e}"
    return f"{v:,.{precision}f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render rows as an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Sequence of rows; each row must have ``len(headers)`` entries.
    title:
        Optional caption printed above the table.
    precision:
        Decimal digits for float cells.
    """
    str_rows = [[format_cell(c, precision) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(f"row {i} has {len(row)} cells, expected {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str | None = None,
    width: int = 50,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (used for Figs. 8 and 9)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    finite = [v for v in values if math.isfinite(v)]
    vmax = max(finite) if finite else 1.0
    vmax = max(vmax, 1e-12)
    lw = max((len(s) for s in labels), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, v in zip(labels, values):
        if not math.isfinite(v):
            bar, shown = "", "inf"
        else:
            n = int(round(width * max(v, 0.0) / vmax))
            bar, shown = "#" * n, f"{v:.2f}{unit}"
        lines.append(f"{label.ljust(lw)} |{bar} {shown}")
    return "\n".join(lines)


def render_line_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    title: str | None = None,
    width: int = 64,
    height: int = 16,
    logx: bool = False,
) -> str:
    """Render multiple (x, y) series on one ASCII grid (Fig. 7 panels).

    Each series gets a distinct marker character; overlapping points show
    the marker of the later series.  ``logx`` plots a log10 time axis,
    matching how convergence curves are usually inspected.
    """
    markers = "o*x+#@%&"
    xs_all: list[float] = []
    ys_all: list[float] = []
    for xs, ys in series.values():
        for x, y in zip(xs, ys):
            if math.isfinite(x) and math.isfinite(y) and (not logx or x > 0):
                xs_all.append(math.log10(x) if logx else x)
                ys_all.append(y)
    if not xs_all:
        return (title or "") + "\n(no finite points)"
    xmin, xmax = min(xs_all), max(xs_all)
    ymin, ymax = min(ys_all), max(ys_all)
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, (xs, ys)) in enumerate(series.items()):
        mk = markers[si % len(markers)]
        for x, y in zip(xs, ys):
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            if logx:
                if x <= 0:
                    continue
                x = math.log10(x)
            col = int((x - xmin) / (xmax - xmin) * (width - 1))
            row = int((y - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = mk
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{ymin:.4g}, {ymax:.4g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    xlabel = "log10(x)" if logx else "x"
    lines.append(f"{xlabel}: [{xmin:.4g}, {xmax:.4g}]")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)
