"""Deterministic random-number management.

All stochastic components of the library (dataset generators, example
shuffles, model initialisation, staleness schedules) draw from
:class:`numpy.random.Generator` objects produced here.  Reproducibility
is a hard requirement for this project: the paper's methodology fixes
the model initialisation across configurations so that loss curves are
comparable ("All configurations/systems are initialized with the same
model which gives the same initial loss", Section IV-A) and our test
suite asserts bit-identical reruns.

The helpers implement *named sub-streams*: a root seed plus a string
label map to an independent generator, so adding a new consumer never
perturbs the draws of existing ones.
"""

from __future__ import annotations

import zlib
from typing import Iterator

import numpy as np

__all__ = ["DEFAULT_SEED", "make_rng", "derive_rng", "spawn_streams", "stable_hash"]

#: Seed used across the library when the caller does not supply one.
DEFAULT_SEED = 20190522  # IPDPS 2019 conference start date.


def stable_hash(label: str) -> int:
    """Return a platform-stable 32-bit hash of *label*.

    Python's builtin :func:`hash` is salted per process, which would
    destroy reproducibility across runs; CRC32 is stable and fast.
    """
    return zlib.crc32(label.encode("utf-8")) & 0xFFFFFFFF


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a root generator from an integer seed.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` selects :data:`DEFAULT_SEED` (the library is
        deterministic by default; pass a different value to resample).
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(np.random.SeedSequence(seed))


def derive_rng(seed: int | None, label: str) -> np.random.Generator:
    """Create an independent generator for the sub-stream named *label*.

    The pair ``(seed, label)`` fully determines the stream.  Distinct
    labels yield statistically independent streams via
    :class:`numpy.random.SeedSequence` spawning semantics.
    """
    if seed is None:
        seed = DEFAULT_SEED
    ss = np.random.SeedSequence(entropy=seed, spawn_key=(stable_hash(label),))
    return np.random.default_rng(ss)


def spawn_streams(seed: int | None, label: str, n: int) -> Iterator[np.random.Generator]:
    """Yield *n* independent generators for indexed consumers.

    Used by the asynchronous-execution simulator to give each logical
    thread its own shuffle stream, mirroring how each OpenMP thread in
    the paper's Hogwild implementation walks its own data partition.
    """
    for i in range(n):
        yield derive_rng(seed, f"{label}/{i}")
