"""Unit helpers: byte/size constants and human-readable formatting.

Hardware capacities throughout :mod:`repro.hardware` are expressed in
bytes and seconds; these helpers keep the specification tables readable
(``35 * MiB`` instead of ``36700160``) and render quantities back into
the units the paper's tables use (msec per iteration, MB/GB dataset
sizes).
"""

from __future__ import annotations

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "KILO",
    "MEGA",
    "GIGA",
    "CACHE_LINE_BYTES",
    "FLOAT64_BYTES",
    "FLOAT32_BYTES",
    "INT32_BYTES",
    "format_bytes",
    "format_seconds",
]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000

#: x86 and NVIDIA GPUs both use 64-byte lines / 32-byte sectors; the
#: coherence and coalescing models quantise addresses to this grain.
CACHE_LINE_BYTES = 64

FLOAT64_BYTES = 8
FLOAT32_BYTES = 4
INT32_BYTES = 4


def format_bytes(n: float) -> str:
    """Render a byte count like the paper's Table I ('4.4MB', '1.2GB')."""
    n = float(n)
    for unit, div in (("GB", GiB), ("MB", MiB), ("KB", KiB)):
        if n >= div:
            return f"{n / div:.1f}{unit}"
    return f"{n:.0f}B"


def format_seconds(t: float) -> str:
    """Render seconds adaptively (the tables mix sec and msec columns)."""
    if t != t:  # NaN
        return "nan"
    if t == float("inf"):
        return "inf"
    if t >= 1.0:
        return f"{t:.2f}s"
    if t >= 1e-3:
        return f"{t * 1e3:.2f}ms"
    return f"{t * 1e6:.1f}us"
