"""Small statistics helpers used throughout the library.

The paper reports every measurement as the average of at least ten runs
(Section IV-A, Methodology).  :class:`RunningStats` provides the
numerically stable Welford accumulator the experiment harness uses for
that averaging, and the module-level helpers compute the summary
quantities that appear in Table I (nnz-per-example min/avg/max) and in
the hardware models (distribution dispersion used by the warp-divergence
model).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RunningStats", "geometric_mean", "dispersion_ratio", "percentile_summary"]


@dataclass
class RunningStats:
    """Welford online mean/variance accumulator.

    Numerically stable for long accumulation chains; supports merging
    two accumulators (parallel reduction) via :meth:`merge`.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)
    min: float = math.inf
    max: float = -math.inf

    def push(self, x: float) -> None:
        """Add one observation."""
        x = float(x)
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def push_many(self, xs: np.ndarray) -> None:
        """Add a batch of observations."""
        for x in np.asarray(xs, dtype=float).ravel():
            self.push(float(x))

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0 for fewer than two observations."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to pushing both streams."""
        if self.count == 0:
            out = RunningStats(other.count, other.mean, other._m2, other.min, other.max)
            return out
        if other.count == 0:
            return RunningStats(self.count, self.mean, self._m2, self.min, self.max)
        n = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / n
        m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / n
        return RunningStats(n, mean, m2, min(self.min, other.min), max(self.max, other.max))


def geometric_mean(values) -> float:
    """Geometric mean of positive values; used for speedup aggregation.

    Speedups are ratios, and the paper's prose statements ("the gap is
    2-5X on average") correspond to geometric rather than arithmetic
    averaging of ratios.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def dispersion_ratio(values: np.ndarray) -> float:
    """``max / mean`` of a non-negative sample (1.0 for empty/constant).

    The GPU model uses this on per-example nnz counts: a warp cannot
    retire until its longest lane finishes, so the slowdown of a
    row-parallel sparse kernel is governed by how far the maximum row
    length sits above the mean (Section IV-B, asynchronous GPU
    discussion).
    """
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        return 1.0
    m = float(arr.mean())
    if m <= 0:
        return 1.0
    return max(1.0, float(arr.max()) / m)


def percentile_summary(values: np.ndarray) -> dict[str, float]:
    """Return min/p25/median/p75/max/mean of a sample as a dict."""
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        return {k: float("nan") for k in ("min", "p25", "median", "p75", "max", "mean")}
    return {
        "min": float(arr.min()),
        "p25": float(np.percentile(arr, 25)),
        "median": float(np.percentile(arr, 50)),
        "p75": float(np.percentile(arr, 75)),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
    }
