"""Framework baselines: TensorFlow- and BIDMach-like reference executors."""

from .executor import FrameworkExecutor, FrameworkTiming
from .profiles import BIDMACH_LIKE, OURS, TENSORFLOW_LIKE, FrameworkProfile

__all__ = [
    "FrameworkProfile",
    "FrameworkExecutor",
    "FrameworkTiming",
    "OURS",
    "TENSORFLOW_LIKE",
    "BIDMACH_LIKE",
]
