"""Framework kernel-disposition profiles (TensorFlow / BIDMach stand-ins).

The paper compares its GPU-over-parallel-CPU hardware-efficiency
speedups against TensorFlow 0.12 (MLP, Fig. 9) and BIDMach 2.0.1
(LR/SVM, Fig. 8) "to validate that our parallel implementations are
efficient".  The frameworks are used purely as reference points for the
*speedup ratio*; what differentiates them is how their kernels are
dispatched:

* **TensorFlow**: Eigen-based CPU kernels parallelise every matrix
  product (no ViennaCL-style result-size threshold), and graph
  execution adds per-op dispatch overhead on both devices.  A faster
  parallel CPU means a *smaller* GPU/CPU speedup — which is exactly
  why the paper's implementation shows a superior GPU speedup ratio
  (Fig. 9) while both systems run the same mathematics.
* **BIDMach**: kernels "optimized for dense data" (Section IV-B); on
  sparse inputs its GPU kernels pay a much larger non-coalescing
  penalty than ViennaCL's sparse-specialised ones, deflating the GPU
  side of the ratio on the sparse datasets — the paper's Fig. 8
  finding that "the ViennaCL GPU kernels for sparse data are superior
  to those in BIDMach".

Each profile materialises CPU/GPU models with those dispositions; the
executors in :mod:`repro.frameworks.executor` cost the *same* epoch
traces the main implementation produces, so the comparison isolates
kernel quality exactly as the paper's does.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..hardware.gpu import GpuModel
from ..hardware.cpu import CpuModel
from ..hardware.spec import TESLA_K80, XEON_E5_2660V4_DUAL, CpuSpec, GpuSpec
from ..linalg.policy import FULLY_PARALLEL_POLICY, VIENNACL_POLICY, KernelPolicy

__all__ = ["FrameworkProfile", "TENSORFLOW_LIKE", "BIDMACH_LIKE", "OURS"]


@dataclass(frozen=True)
class FrameworkProfile:
    """Kernel disposition of one framework."""

    name: str
    #: CPU kernel parallelisation policy.
    cpu_policy: KernelPolicy
    #: Irregular-access (sparse) bandwidth penalty on the CPU backend.
    cpu_irregular_penalty: float
    #: Irregular-access penalty on the GPU backend (coalescing quality).
    gpu_irregular_penalty: float
    #: Multiplier on the GPU kernel-launch overhead (graph/session
    #: dispatch cost on top of the raw CUDA launch).
    gpu_launch_multiplier: float = 1.0
    #: Multiplier on the CPU per-kernel fork/join overhead.
    cpu_overhead_multiplier: float = 1.0

    def cpu_model(self, spec: CpuSpec = XEON_E5_2660V4_DUAL) -> CpuModel:
        """Instantiate the CPU cost model with this disposition."""
        if self.cpu_overhead_multiplier != 1.0:
            spec = replace(
                spec,
                parallel_overhead=spec.parallel_overhead
                * self.cpu_overhead_multiplier,
            )
        return CpuModel(
            spec=spec,
            policy=self.cpu_policy,
            irregular_penalty=self.cpu_irregular_penalty,
        )

    def gpu_model(self, spec: GpuSpec = TESLA_K80) -> GpuModel:
        """Instantiate the GPU cost model with this disposition."""
        if self.gpu_launch_multiplier != 1.0:
            spec = replace(
                spec,
                kernel_launch_overhead=spec.kernel_launch_overhead
                * self.gpu_launch_multiplier,
            )
        return GpuModel(spec=spec, irregular_penalty=self.gpu_irregular_penalty)


#: The paper's own implementation (ViennaCL dispositions) — the
#: reference the frameworks are compared against.
OURS = FrameworkProfile(
    name="ours",
    cpu_policy=VIENNACL_POLICY,
    cpu_irregular_penalty=3.0,
    gpu_irregular_penalty=1.4,
)

#: TensorFlow 0.12-like: fully-parallel Eigen CPU kernels, dense-only
#: data handling, graph-dispatch overhead on every kernel.
TENSORFLOW_LIKE = FrameworkProfile(
    name="tensorflow",
    cpu_policy=FULLY_PARALLEL_POLICY,
    cpu_irregular_penalty=3.0,
    gpu_irregular_penalty=1.6,
    gpu_launch_multiplier=3.0,
    cpu_overhead_multiplier=3.0,
)

#: BIDMach 2.0.1-like: excellent dense kernels on both devices, but the
#: GPU sparse kernels are dense-oriented and coalesce poorly.
BIDMACH_LIKE = FrameworkProfile(
    name="bidmach",
    cpu_policy=VIENNACL_POLICY,
    cpu_irregular_penalty=2.5,
    gpu_irregular_penalty=4.5,
)
