"""Framework executors: cost a synchronous epoch under a framework profile.

The paper's Figs. 8 and 9 plot, per dataset, the *speedup in hardware
efficiency of GPU over parallel CPU* for each system.  The executor
reproduces that measurement: it takes the epoch trace of a task (the
same trace for every system — all of them compute the same gradients)
and prices it with the framework's CPU and GPU dispositions.

TensorFlow receives **densified** inputs for the MLP comparison ("We
use a dense format to represent all the transformed sparse datasets
when executing MLP in TensorFlow", Section IV-A) — the MLP traces are
already dense post-grouping, so this is the natural trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..linalg.trace import Trace
from .profiles import FrameworkProfile

__all__ = ["FrameworkExecutor", "FrameworkTiming"]


@dataclass(frozen=True)
class FrameworkTiming:
    """Per-epoch times of one framework on one workload."""

    framework: str
    cpu_parallel: float
    cpu_sequential: float
    gpu: float

    @property
    def gpu_speedup_over_cpu(self) -> float:
        """The quantity Figs. 8/9 plot: parallel-CPU time / GPU time."""
        return self.cpu_parallel / self.gpu

    @property
    def cpu_parallel_speedup(self) -> float:
        """Sequential / parallel CPU time."""
        return self.cpu_sequential / self.cpu_parallel


class FrameworkExecutor:
    """Costs epoch traces under one framework's kernel disposition."""

    def __init__(self, profile: FrameworkProfile, threads: int | None = None) -> None:
        self.profile = profile
        self._cpu = profile.cpu_model()
        self._gpu = profile.gpu_model()
        self.threads = threads or self._cpu.spec.max_threads

    def timing(self, trace: Trace, working_set_bytes: float) -> FrameworkTiming:
        """Price one synchronous epoch on all three backends."""
        return FrameworkTiming(
            framework=self.profile.name,
            cpu_parallel=self._cpu.sync_epoch_time(trace, self.threads, working_set_bytes),
            cpu_sequential=self._cpu.sync_epoch_time(trace, 1, working_set_bytes),
            gpu=self._gpu.sync_epoch_time(trace),
        )
