"""The scoring service: a JSON-lines socket front end over the engine.

``python -m repro serve`` binds a local TCP socket (127.0.0.1, ephemeral
port by default) and speaks a newline-delimited JSON protocol — the
simplest framing that lets many concurrent clients drive the
micro-batcher hard from plain ``socket`` code, with no HTTP dependency.

Request (one line)::

    {"op": "score", "examples": [[...dense...], {"indices": [...], "values": [...]}]}
    {"op": "stats"}
    {"op": "ping"}
    {"op": "shutdown"}

Response (one line)::

    {"ok": true, "results": [{"margin": ..., "label": ..., "prob": ...}],
     "model_version": 3, "model_source": "shm", "model_epoch": 7,
     "latency_ms": 1.2}
    {"ok": false, "error": {"type": "snapshot-unavailable", "message": ...,
     "reason": "cold-start", "retriable": true}}

Every error is structured via the :class:`~repro.utils.errors.ReproError`
``describe()`` idiom; ``retriable: true`` marks conditions a client
may retry — after a backoff (cold start, trainer not yet published) or
against a healthy connection (internal server faults) — while
``false`` marks client bugs (malformed examples), where retrying the
same bytes cannot succeed.  A request line longer than the server's
``max_line_bytes`` cap is answered with a ``line-too-long`` error
(``retriable: false``) and the connection is closed: the overflow
bytes still in the socket cannot be re-framed, so parsing them as
further requests — the pre-fix behaviour — would corrupt the stream.
Connections are handled by a thread per client; scoring itself funnels
through the engine's micro-batcher, so concurrent clients coalesce
into shared kernel calls.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from dataclasses import dataclass
from typing import Any

from ..utils.errors import (
    ConfigurationError,
    DataFormatError,
    ReproError,
    SnapshotUnavailableError,
)
from .engine import ScoringEngine

__all__ = ["ServerConfig", "ScoringServer", "request_once"]

#: Cap on one request line; a guard against unframed garbage, not a
#: real batch limit (64k examples of 16 features fit comfortably).
MAX_LINE_BYTES = 32 * 1024 * 1024


@dataclass(frozen=True)
class ServerConfig:
    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; read it back from ``server.port``.
    port: int = 0
    #: Per-request timeout handed to the engine's batched path.
    request_timeout: float = 30.0
    #: Cap on one request line.  A longer request is answered with a
    #: ``line-too-long`` error and the connection is closed (the
    #: overflow bytes cannot be re-framed).
    max_line_bytes: int = MAX_LINE_BYTES


def _error_payload(err: Exception) -> dict[str, Any]:
    if isinstance(err, ReproError):
        desc = (
            err.describe()
            if hasattr(err, "describe")
            else {"type": "internal", "message": str(err)}
        )
        if "retriable" not in desc:
            # Validation errors are client bugs; retrying the same
            # bytes cannot succeed.
            desc["retriable"] = isinstance(err, SnapshotUnavailableError)
    else:
        # An internal server fault, not a property of the request: the
        # same bytes may well succeed against a healthy server, so the
        # client is invited to retry.
        desc = {"type": "internal", "message": str(err), "retriable": True}
    return {"ok": False, "error": desc}


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # one client connection, many lines
        front: "ScoringServer" = self.server.front  # type: ignore[attr-defined]
        cap = front.config.max_line_bytes
        while True:
            try:
                line = self.rfile.readline(cap)
            except (ConnectionError, OSError):
                return
            if not line:
                return
            if len(line) >= cap and not line.endswith(b"\n"):
                # The request overflowed the cap: readline returned a
                # *partial* line.  Treating it as complete — and the
                # remainder as subsequent requests — corrupts the
                # framing, so reply with a structured error and close.
                reply = {
                    "ok": False,
                    "error": {
                        "type": "line-too-long",
                        "message": (
                            f"request line exceeds the server's "
                            f"{cap}-byte cap"
                        ),
                        "limit_bytes": cap,
                        "retriable": False,
                    },
                }
                try:
                    self.wfile.write(json.dumps(reply).encode("utf-8") + b"\n")
                    self.wfile.flush()
                except (ConnectionError, OSError):
                    pass
                return
            line = line.strip()
            if not line:
                continue
            reply, stop = front.dispatch(line)
            try:
                self.wfile.write(json.dumps(reply).encode("utf-8") + b"\n")
                self.wfile.flush()
            except (ConnectionError, OSError):
                return
            if stop:
                front.request_shutdown()
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True


class ScoringServer:
    """Bind, serve, and shut down the scoring socket over an engine.

    The server owns the listener thread only; the engine (and its
    batcher/refresher threads) is managed by the caller — typically via
    ``with engine, ScoringServer(engine, config) as server: ...``.
    """

    def __init__(self, engine: ScoringEngine, config: ServerConfig | None = None) -> None:
        self.engine = engine
        self.config = config or ServerConfig()
        self._tcp = _TCPServer(
            (self.config.host, self.config.port), _Handler, bind_and_activate=True
        )
        self._tcp.front = self  # type: ignore[attr-defined] - handler hook
        self._thread: threading.Thread | None = None
        self._shutdown = threading.Event()

    @property
    def host(self) -> str:
        return self._tcp.server_address[0]

    @property
    def port(self) -> int:
        return self._tcp.server_address[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- request dispatch --------------------------------------------------

    def dispatch(self, raw: bytes) -> tuple[dict[str, Any], bool]:
        """Answer one request line; returns ``(reply, shutdown?)``."""
        try:
            try:
                msg = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise DataFormatError(f"request is not valid JSON: {exc}") from None
            if not isinstance(msg, dict) or "op" not in msg:
                raise DataFormatError('request must be an object with an "op" key')
            op = msg["op"]
            if op == "ping":
                return {"ok": True, "op": "ping"}, False
            if op == "stats":
                return {"ok": True, "stats": self.engine.stats().to_dict()}, False
            if op == "shutdown":
                return {"ok": True, "op": "shutdown"}, True
            if op == "score":
                response = self.engine.request(
                    msg.get("examples"), timeout=self.config.request_timeout
                )
                return response.to_dict(), False
            raise DataFormatError(f"unknown op {op!r}")
        except SnapshotUnavailableError as err:
            return _error_payload(err), False
        except (DataFormatError, ConfigurationError) as err:
            self.engine.note_client_error()
            return _error_payload(err), False
        except Exception as err:  # noqa: BLE001 - protocol boundary
            self.engine.note_client_error()
            return _error_payload(err), False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ScoringServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serve-listener",
            daemon=True,
        )
        self._thread.start()
        return self

    def request_shutdown(self) -> None:
        """Signal shutdown from a handler thread (the ``shutdown`` op)."""
        self._shutdown.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until a client requests shutdown (the serve-CLI's loop)."""
        return self._shutdown.wait(timeout)

    def stop(self) -> None:
        if self._thread is None:
            return
        # A caller-initiated stop must also release anyone blocked in
        # wait(): before this, only the shutdown *op* set the event and
        # a stop() from another thread left waiters hanging forever.
        self._shutdown.set()
        self._tcp.shutdown()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._tcp.server_close()

    def __enter__(self) -> "ScoringServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def request_once(
    host: str, port: int, message: dict[str, Any], timeout: float = 30.0
) -> dict[str, Any]:
    """One request/response round-trip — the canonical tiny client.

    Raises
    ------
    ConnectionError
        When the server closes the connection before a complete reply
        arrives — either without sending anything, or mid-reply (bytes
        but no trailing newline).  Structured, instead of the opaque
        ``JSONDecodeError`` a partial reply used to surface as.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(json.dumps(message).encode("utf-8") + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
    if not buf:
        raise ConnectionError("server closed the connection without replying")
    if not buf.endswith(b"\n"):
        raise ConnectionError(
            f"server closed the connection mid-reply "
            f"({len(buf)} bytes received, no trailing newline)"
        )
    return json.loads(buf)
