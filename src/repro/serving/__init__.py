"""Train-and-serve subsystem: consistent snapshots + micro-batched scoring.

Three layers, bottom up:

* :mod:`repro.serving.snapshot` — a seqlock-versioned shared-memory
  parameter snapshot: :class:`SnapshotPublisher` (trainer side, wired
  into ``train_shm``'s epoch loop) and :class:`ShmTrainHandle` (reader
  side, torn-read-free ``snapshot()`` while workers keep training);
* :mod:`repro.serving.engine` — :class:`ScoringEngine`, which coalesces
  score requests into micro-batches through the vectorised margin
  kernels and hot-swaps model versions atomically via
  :class:`SnapshotRefresher` without dropping in-flight requests;
* :mod:`repro.serving.service` — ``python -m repro serve``: the
  JSON-lines socket front end over the engine.

See ``docs/SERVING.md`` for the protocol and consistency guarantees.
"""

from .engine import (
    SERVABLE_TASKS,
    ArtifactSource,
    EngineStats,
    ExampleScore,
    ScoreResponse,
    ScoringEngine,
    ServedModel,
    SnapshotRefresher,
    SnapshotSource,
)
from .loadgen import LoadGenerator, LoadReport
from .service import ScoringServer, ServerConfig, request_once
from .snapshot import ModelSnapshot, ShmTrainHandle, SnapshotPublisher

__all__ = [
    "SERVABLE_TASKS",
    "ArtifactSource",
    "EngineStats",
    "ExampleScore",
    "LoadGenerator",
    "LoadReport",
    "ModelSnapshot",
    "ScoreResponse",
    "ScoringEngine",
    "ScoringServer",
    "ServedModel",
    "ServerConfig",
    "ShmTrainHandle",
    "SnapshotPublisher",
    "SnapshotRefresher",
    "SnapshotSource",
    "request_once",
]
