"""A seeded load generator for the scoring service.

Drives a :class:`~repro.serving.engine.ScoringEngine` (in-process, the
bench path) or a live socket server with concurrent request threads and
reports throughput and latency percentiles.  Everything is seeded —
per-thread RNGs derive from one base seed via the repo's
:func:`~repro.utils.rng.derive_rng` labelling scheme — so BENCH runs
replay the same request mix.

Two modes matter for the paper trail:

* ``mode="batched"`` goes through :meth:`ScoringEngine.request`, so
  concurrent threads coalesce into micro-batches — the serving
  configuration;
* ``mode="direct"`` calls :meth:`ScoringEngine.score` one request at a
  time per thread — the unbatched baseline the bench throughput gate
  compares against (a same-host ratio, immune to machine speed).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..utils.errors import ConfigurationError, SnapshotUnavailableError
from ..utils.rng import derive_rng
from .engine import ScoringEngine

__all__ = ["LoadGenerator", "LoadReport"]


@dataclass(frozen=True)
class LoadReport:
    """What a load run observed (the bench's serving section rows)."""

    mode: str
    concurrency: int
    requests: int
    examples: int
    errors: int
    retriable_errors: int
    duration_s: float
    requests_per_second: float
    examples_per_second: float
    latency_p50_ms: float
    latency_p99_ms: float
    #: Distinct model versions answers arrived under — >1 proves a
    #: hot-swap happened mid-load without dropping requests.
    model_versions_seen: tuple[int, ...] = field(default=())

    def to_dict(self) -> dict[str, Any]:
        from dataclasses import asdict

        out = asdict(self)
        out["model_versions_seen"] = list(self.model_versions_seen)
        return out


class LoadGenerator:
    """Replayable concurrent load against a scoring engine.

    *examples* is the request pool — typically dataset rows as the
    engine's sparse ``{"indices", "values"}`` dicts or dense vectors.
    Each request draws 1..``max_request_examples`` of them (with
    replacement) from a per-thread seeded RNG.
    """

    def __init__(
        self,
        engine: ScoringEngine,
        examples: Sequence[Any],
        seed: int = 0,
        concurrency: int = 4,
        max_request_examples: int = 4,
    ) -> None:
        if not examples:
            raise ConfigurationError("load generator needs a non-empty example pool")
        if concurrency < 1:
            raise ConfigurationError(f"concurrency must be >= 1, got {concurrency}")
        if max_request_examples < 1:
            raise ConfigurationError(
                f"max_request_examples must be >= 1, got {max_request_examples}"
            )
        self.engine = engine
        self.examples = list(examples)
        self.seed = seed
        self.concurrency = int(concurrency)
        self.max_request_examples = int(max_request_examples)

    def _worker(
        self,
        index: int,
        n_requests: int,
        mode: str,
        out: dict[str, Any],
        barrier: threading.Barrier,
    ) -> None:
        rng = derive_rng(self.seed, f"loadgen/{mode}/{index}")
        latencies: list[float] = []
        versions: set[int] = set()
        examples_done = 0
        errors = 0
        retriable = 0
        pool = self.examples
        barrier.wait()  # start all threads together for a clean window
        for _ in range(n_requests):
            k = int(rng.integers(1, self.max_request_examples + 1))
            picks = [pool[int(i)] for i in rng.integers(0, len(pool), size=k)]
            t0 = time.perf_counter()
            try:
                if mode == "batched":
                    resp = self.engine.request(picks)
                else:
                    resp = self.engine.score(picks)
            except SnapshotUnavailableError:
                retriable += 1
                time.sleep(0.005)  # back off as a polite client would
                continue
            except Exception:  # noqa: BLE001 - the report counts, run goes on
                errors += 1
                continue
            latencies.append((time.perf_counter() - t0) * 1e3)
            versions.add(resp.model_version)
            examples_done += k
        out[index] = {
            "latencies": latencies,
            "versions": versions,
            "examples": examples_done,
            "errors": errors,
            "retriable": retriable,
        }

    def run(self, n_requests: int, mode: str = "batched") -> LoadReport:
        """Fire ``n_requests`` total (split across threads); report."""
        if mode not in ("batched", "direct"):
            raise ConfigurationError(f"mode must be 'batched' or 'direct', got {mode!r}")
        per_thread = max(1, n_requests // self.concurrency)
        results: dict[int, dict[str, Any]] = {}
        barrier = threading.Barrier(self.concurrency + 1)
        threads = [
            threading.Thread(
                target=self._worker,
                args=(i, per_thread, mode, results, barrier),
                name=f"loadgen-{i}",
                daemon=True,
            )
            for i in range(self.concurrency)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t_start = time.perf_counter()
        for t in threads:
            t.join()
        duration = max(time.perf_counter() - t_start, 1e-9)
        lat = np.asarray(
            [v for r in results.values() for v in r["latencies"]], dtype=np.float64
        )
        versions: set[int] = set()
        for r in results.values():
            versions |= r["versions"]
        total_ok = int(lat.size)
        examples = sum(r["examples"] for r in results.values())
        errors = sum(r["errors"] for r in results.values())
        retriable = sum(r["retriable"] for r in results.values())
        return LoadReport(
            mode=mode,
            concurrency=self.concurrency,
            requests=total_ok,
            examples=examples,
            errors=errors,
            retriable_errors=retriable,
            duration_s=duration,
            requests_per_second=total_ok / duration,
            examples_per_second=examples / duration,
            latency_p50_ms=float(np.percentile(lat, 50)) if lat.size else 0.0,
            latency_p99_ms=float(np.percentile(lat, 99)) if lat.size else 0.0,
            model_versions_seen=tuple(sorted(versions)),
        )
