"""Micro-batched scoring over a hot-swappable model snapshot.

The inference half of the train-and-serve system: requests carrying one
or more examples are coalesced into micro-batches and pushed through the
same vectorised margin kernels training uses
(:func:`repro.linalg.sparse_ops.csr_submatvec` for sparse rows,
:func:`repro.linalg.dense_ops.gemv` for dense), so serving cost scales
the way the paper's Section II kernel analysis says it should — one
gather + segment-reduce per batch, not one Python-level pass per
request.

Model management is a **versioned double buffer**: the active
:class:`ServedModel` is swapped by plain attribute assignment (atomic
under CPython), every batch pins the model it started with, and a
background :class:`SnapshotRefresher` installs newer versions from
either a live shared-memory training run (:class:`ShmTrainHandle`, the
seqlock protocol of :mod:`repro.serving.snapshot`) or a model artifact
file that changed on disk.  In-flight requests are therefore never
dropped or blocked by a hot-swap — they finish on the version they
started with, and the next batch picks up the new one.

Cold starts and dead trainers degrade gracefully: scoring raises (and
the socket layer serves) the structured, *retriable*
:class:`~repro.utils.errors.SnapshotUnavailableError` instead of
crashing, while the refresher keeps polling for a model.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from ..linalg import dense_ops, sparse_ops
from ..linalg.csr import CSRMatrix
from ..models.linear import LinearSVM, LogisticRegression
from ..telemetry import keys
from ..telemetry.session import AnyTelemetry, ensure_telemetry
from ..utils.errors import (
    ConfigurationError,
    DataFormatError,
    SnapshotUnavailableError,
)
from .snapshot import ModelSnapshot, ShmTrainHandle

__all__ = [
    "SERVABLE_TASKS",
    "ServedModel",
    "ExampleScore",
    "ScoreResponse",
    "EngineStats",
    "ScoringEngine",
    "SnapshotRefresher",
    "ArtifactSource",
    "SnapshotSource",
]

#: Tasks the scoring engine can serve: the margin-based linear models.
#: (The MLP trains through the simulator only and has no serving path.)
SERVABLE_TASKS: tuple[str, ...] = ("lr", "svm")

#: Latency samples kept for percentile estimation (ring buffer).
_LATENCY_HISTORY = 4096


def _sigmoid(margins: np.ndarray) -> np.ndarray:
    out = np.empty_like(margins)
    pos = margins >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-margins[pos]))
    e = np.exp(margins[~pos])
    out[~pos] = e / (1.0 + e)
    return out


@dataclass(frozen=True)
class ServedModel:
    """One immutable, installable model version (double-buffer slot)."""

    params: np.ndarray = field(repr=False)
    #: Monotonic version within one source; install() rejects stale ones.
    version: int
    #: "shm" (live training snapshot) or "artifact" (model file).
    source: str
    #: Training epoch the parameters came from (None for artifacts).
    epoch: int | None = None
    #: Training loss at that point, when known.
    loss: float | None = None
    #: Publish time at the source (snapshot publish / file mtime).
    published_unix: float | None = None

    @classmethod
    def from_snapshot(cls, snap: ModelSnapshot) -> "ServedModel":
        return cls(
            params=snap.params,
            version=snap.version,
            source="shm",
            epoch=snap.epoch,
            loss=snap.loss,
            published_unix=snap.published_unix,
        )

    @property
    def age_seconds(self) -> float:
        if self.published_unix is None:
            return 0.0
        return max(0.0, time.time() - self.published_unix)


@dataclass(frozen=True)
class ExampleScore:
    """Scores for one example under one model version."""

    margin: float
    #: Predicted class in the paper's ±1 label convention.
    label: int
    #: P(y=+1) for logistic regression; ``None`` for the SVM.
    prob: float | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"margin": self.margin, "label": self.label}
        if self.prob is not None:
            out["prob"] = self.prob
        return out


@dataclass(frozen=True)
class ScoreResponse:
    """One answered request: per-example scores plus model provenance."""

    results: tuple[ExampleScore, ...]
    model_version: int
    model_source: str
    model_epoch: int | None
    #: Submit-to-answer latency; filled by the micro-batching path,
    #: ``0.0`` for direct synchronous scoring.
    latency_ms: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": True,
            "results": [r.to_dict() for r in self.results],
            "model_version": self.model_version,
            "model_source": self.model_source,
            "model_epoch": self.model_epoch,
            "latency_ms": self.latency_ms,
        }


@dataclass(frozen=True)
class EngineStats:
    """Point-in-time serving statistics (manifest / ``stats`` op)."""

    requests: int
    examples: int
    batches: int
    errors: int
    retriable_errors: int
    hot_swaps: int
    source_errors: int
    requests_per_second: float
    latency_p50_ms: float
    latency_p99_ms: float
    queue_depth_peak: int
    batch_size_mean: float
    batch_size_histogram: dict[str, int]
    model_version: int | None
    model_source: str | None
    model_epoch: int | None
    snapshot_age_seconds: float | None

    def to_dict(self) -> dict[str, Any]:
        from dataclasses import asdict

        return asdict(self)


class _PendingRequest:
    """One queued request: parsed examples plus its completion event."""

    __slots__ = ("rows", "event", "response", "error", "t_submit")

    def __init__(self, rows: list[tuple[np.ndarray, np.ndarray]]) -> None:
        self.rows = rows
        self.event = threading.Event()
        self.response: ScoreResponse | None = None
        self.error: Exception | None = None
        self.t_submit = time.perf_counter()


class ScoringEngine:
    """Score examples against the active model, coalescing micro-batches.

    Two entry points:

    * :meth:`score` — synchronous, one vectorised kernel call for the
      given examples (the load generator's "unbatched" baseline and the
      building block the batcher uses);
    * :meth:`request` — enqueue and wait: a background batcher thread
      coalesces examples from concurrent requests into micro-batches of
      up to ``max_batch`` rows (waiting at most ``max_delay`` seconds
      for stragglers) and answers every request with the model version
      the batch was scored under.

    ``start()``/``stop()`` manage the batcher and the optional
    :class:`SnapshotRefresher`; the engine is also a context manager.
    """

    def __init__(
        self,
        task: str,
        n_features: int,
        telemetry: AnyTelemetry | None = None,
        max_batch: int = 64,
        max_delay: float = 0.002,
        refresher: "SnapshotRefresher | None" = None,
    ) -> None:
        if task not in SERVABLE_TASKS:
            raise ConfigurationError(
                f"task {task!r} is not servable; the scoring engine drives "
                f"the margin-based linear models {SERVABLE_TASKS}"
            )
        if n_features < 1:
            raise ConfigurationError(f"n_features must be >= 1, got {n_features}")
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ConfigurationError(f"max_delay must be >= 0, got {max_delay}")
        self.task = task
        self.n_features = int(n_features)
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self._model = (
            LogisticRegression(self.n_features)
            if task == "lr"
            else LinearSVM(self.n_features)
        )
        self._tel = ensure_telemetry(telemetry)
        self._active: ServedModel | None = None
        self._install_lock = threading.Lock()
        self.refresher = refresher
        if refresher is not None:
            refresher.bind(self)

        self._queue: deque[_PendingRequest] = deque()
        self._cv = threading.Condition()
        self._batcher: threading.Thread | None = None
        self._running = False

        self._stats_lock = threading.Lock()
        self._latencies_ms: deque[float] = deque(maxlen=_LATENCY_HISTORY)
        self._batch_sizes: deque[int] = deque(maxlen=_LATENCY_HISTORY)
        self._batch_histogram: dict[str, int] = {}
        self._requests = 0
        self._examples = 0
        self._batches = 0
        self._errors = 0
        self._retriable_errors = 0
        self._hot_swaps = 0
        self._source_errors = 0
        self._queue_peak = 0
        self._t_first: float | None = None
        self._t_last: float | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_artifact(
        cls,
        path: str | Path,
        telemetry: AnyTelemetry | None = None,
        max_batch: int = 64,
        max_delay: float = 0.002,
        watch: bool = True,
        refresh_interval: float = 0.25,
    ) -> "ScoringEngine":
        """Serve a model artifact written by :func:`repro.sgd.save_results`.

        With ``watch=True`` (the default) a refresher re-loads the file
        whenever it changes on disk — rewriting the artifact hot-swaps
        the served model.
        """
        source = ArtifactSource(path)
        model = source.poll()
        assert model is not None  # first poll always loads
        engine = cls(
            source.task,
            model.params.shape[0],
            telemetry=telemetry,
            max_batch=max_batch,
            max_delay=max_delay,
            refresher=(
                SnapshotRefresher(source, interval=refresh_interval)
                if watch
                else None
            ),
        )
        engine.install(model)
        return engine

    @classmethod
    def from_snapshot(
        cls,
        source: str | Path | ShmTrainHandle,
        telemetry: AnyTelemetry | None = None,
        max_batch: int = 64,
        max_delay: float = 0.002,
        refresh_interval: float = 0.05,
    ) -> "ScoringEngine":
        """Serve a (possibly live) shm training run's snapshots.

        *source* is a snapshot descriptor path, a segment name, or an
        already-attached :class:`ShmTrainHandle`.  The engine may start
        cold (no snapshot published yet): requests then receive the
        structured retriable error until the refresher installs the
        first version.
        """
        tel = ensure_telemetry(telemetry)
        handle = (
            source
            if isinstance(source, ShmTrainHandle)
            else ShmTrainHandle.attach(source, telemetry=tel)
        )
        task = handle.meta.get("task")
        if task is None:
            raise ConfigurationError(
                "snapshot source carries no task metadata; publish with "
                "meta={'task': ..., 'n_features': ...}"
            )
        n_features = int(handle.meta.get("n_features", handle._n_params))
        engine = cls(
            task,
            n_features,
            telemetry=tel,
            max_batch=max_batch,
            max_delay=max_delay,
            refresher=SnapshotRefresher(
                SnapshotSource(handle), interval=refresh_interval
            ),
        )
        try:
            engine.install(ServedModel.from_snapshot(handle.snapshot()))
        except SnapshotUnavailableError:
            pass  # cold start: the refresher will install version 1
        return engine

    # -- model management --------------------------------------------------

    @property
    def active(self) -> ServedModel | None:
        """The model new batches will be scored under (may be ``None``)."""
        return self._active

    def install(self, model: ServedModel) -> bool:
        """Atomically make *model* the active version (hot-swap).

        Stale or duplicate versions from the same source are ignored.
        Returns ``True`` when the active model changed.  In-flight
        batches keep the version they pinned at batch start — a swap
        never drops or blocks them.
        """
        if model.params.shape != (self.n_features,):
            raise ConfigurationError(
                f"model has {model.params.shape[0]} parameters, engine "
                f"serves {self.n_features} features"
            )
        with self._install_lock:
            current = self._active
            if (
                current is not None
                and model.source == current.source
                and model.version <= current.version
            ):
                return False
            swap = current is not None
            self._active = model
        if swap:
            with self._stats_lock:
                self._hot_swaps += 1
            self._tel.count(keys.SERVE_HOT_SWAPS)
        return True

    def require_model(self) -> ServedModel:
        """The active model, or the structured retriable cold-start error."""
        model = self._active
        if model is None:
            hint = ""
            if self.refresher is not None and self.refresher.last_error is not None:
                hint = f" (source: {self.refresher.last_error})"
            raise SnapshotUnavailableError(
                "no model installed yet — the trainer has not published a "
                "snapshot" + hint,
                reason="cold-start",
            )
        return model

    def note_source_error(self) -> None:
        """Refresher callback: a snapshot source failed (trainer dead?)."""
        with self._stats_lock:
            self._source_errors += 1
        self._tel.count(keys.SERVE_SOURCE_ERRORS)

    # -- example parsing ---------------------------------------------------

    def parse_example(self, example: Any) -> tuple[np.ndarray, np.ndarray]:
        """Normalise one wire/API example to a sparse ``(indices, values)`` row.

        Accepted forms: a dense sequence of ``n_features`` floats, a
        ``{"indices": [...], "values": [...]}`` mapping, or an
        ``(indices, values)`` pair.  Raises
        :class:`~repro.utils.errors.DataFormatError` (non-retriable,
        structured) for anything malformed.
        """
        if isinstance(example, dict):
            if "indices" not in example or "values" not in example:
                raise DataFormatError(
                    "sparse example must carry 'indices' and 'values'"
                )
            pair = (example["indices"], example["values"])
        elif (
            isinstance(example, (tuple, list))
            and len(example) == 2
            and not np.isscalar(example[0])
            and not _is_number_list(example)
        ):
            pair = (example[0], example[1])
        else:
            try:
                dense = np.asarray(example, dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise DataFormatError(f"unparsable dense example: {exc}") from None
            if dense.ndim != 1 or dense.shape[0] != self.n_features:
                raise DataFormatError(
                    f"dense example must be a flat vector of {self.n_features} "
                    f"features, got shape {dense.shape}"
                )
            idx = np.nonzero(dense)[0]
            return idx.astype(np.int32), dense[idx]
        try:
            idx = np.asarray(pair[0], dtype=np.int64)
            val = np.asarray(pair[1], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise DataFormatError(f"unparsable sparse example: {exc}") from None
        if idx.ndim != 1 or idx.shape != val.shape:
            raise DataFormatError(
                f"indices/values must be flat and equal-length, got "
                f"{idx.shape} vs {val.shape}"
            )
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_features):
            raise DataFormatError(
                f"feature index out of range [0, {self.n_features}): "
                f"{int(idx.min())}..{int(idx.max())}"
            )
        order = np.argsort(idx, kind="stable")
        idx, val = idx[order], val[order]
        if idx.size > 1 and (np.diff(idx) == 0).any():
            raise DataFormatError("duplicate feature indices in sparse example")
        return idx.astype(np.int32), val

    def _parse_examples(
        self, examples: Sequence[Any]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        if not isinstance(examples, (list, tuple)) or not examples:
            raise DataFormatError("a score request carries a non-empty example list")
        return [self.parse_example(e) for e in examples]

    # -- scoring -----------------------------------------------------------

    def _margins(
        self, rows: list[tuple[np.ndarray, np.ndarray]], params: np.ndarray
    ) -> np.ndarray:
        """One vectorised margin kernel over the coalesced batch."""
        X = CSRMatrix.from_rows(rows, self.n_features)
        if X.nnz and X.density > 0.5:
            # A mostly-dense batch pays for the GEMV layout; small or
            # sparse batches stream only the touched coordinates.
            return dense_ops.gemv(X.to_dense(), params, name="serve_margins")
        return sparse_ops.csr_submatvec(
            X, np.arange(X.n_rows, dtype=np.int64), params, name="serve_margins"
        )

    def _score_rows(
        self, rows: list[tuple[np.ndarray, np.ndarray]], model: ServedModel
    ) -> list[ExampleScore]:
        margins = self._margins(rows, model.params)
        labels = np.where(margins >= 0.0, 1, -1)
        probs = _sigmoid(margins) if self.task == "lr" else None
        return [
            ExampleScore(
                margin=float(margins[i]),
                label=int(labels[i]),
                prob=None if probs is None else float(probs[i]),
            )
            for i in range(len(rows))
        ]

    def score(self, examples: Sequence[Any]) -> ScoreResponse:
        """Score *examples* synchronously (one kernel call, no queue)."""
        rows = self._parse_examples(examples)
        model = self.require_model()
        results = self._score_rows(rows, model)
        self._note_batch([len(rows)], len(rows), 1)
        self._note_request(latency_ms=0.0)
        return ScoreResponse(
            results=tuple(results),
            model_version=model.version,
            model_source=model.source,
            model_epoch=model.epoch,
        )

    # -- micro-batched path ------------------------------------------------

    def submit(self, examples: Sequence[Any]) -> _PendingRequest:
        """Validate and enqueue a request for the batcher (non-blocking)."""
        rows = self._parse_examples(examples)  # malformed input fails fast
        if not self._running:
            raise ConfigurationError(
                "micro-batched scoring needs a started engine; call start() "
                "or use the engine as a context manager"
            )
        pending = _PendingRequest(rows)
        with self._cv:
            self._queue.append(pending)
            depth = len(self._queue)
            self._cv.notify()
        with self._stats_lock:
            self._queue_peak = max(self._queue_peak, depth)
        return pending

    def request(self, examples: Sequence[Any], timeout: float = 30.0) -> ScoreResponse:
        """Micro-batched scoring: enqueue, wait, return the response.

        Raises the structured error the batch was answered with
        (:class:`SnapshotUnavailableError` on a cold start), or
        :class:`ConfigurationError` on timeout.
        """
        pending = self.submit(examples)
        if not pending.event.wait(timeout):
            raise ConfigurationError(f"score request timed out after {timeout}s")
        if pending.error is not None:
            raise pending.error
        assert pending.response is not None
        return pending.response

    def _drain(self) -> list[_PendingRequest]:
        """Collect the next micro-batch's worth of pending requests."""
        with self._cv:
            while self._running and not self._queue:
                self._cv.wait(0.1)
            if not self._queue:
                return []
            batch = [self._queue.popleft()]
        # Brief coalescing window: let concurrent requests pile on, up
        # to the batch cap.  The window closes early once the queue has
        # gone quiet — clients in a closed loop are all waiting on this
        # very batch, so holding the full delay would only add latency.
        # Zero delay still drains whatever is queued.
        if self.max_delay > 0.0:
            deadline = time.perf_counter() + self.max_delay
            quiet = 0
            while time.perf_counter() < deadline and quiet < 2:
                if sum(len(p.rows) for p in batch) >= self.max_batch:
                    break
                with self._cv:
                    if self._queue:
                        batch.append(self._queue.popleft())
                        quiet = 0
                        continue
                quiet += 1
                time.sleep(self.max_delay / 10.0)
        with self._cv:
            while (
                self._queue
                and sum(len(p.rows) for p in batch) < self.max_batch
            ):
                batch.append(self._queue.popleft())
        return batch

    def _answer_batch(self, batch: list[_PendingRequest]) -> None:
        n_examples = sum(len(p.rows) for p in batch)
        try:
            model = self.require_model()
        except SnapshotUnavailableError as err:
            for p in batch:
                p.error = err
                p.event.set()
            self._note_retriable(len(batch))
            return
        rows: list[tuple[np.ndarray, np.ndarray]] = []
        for p in batch:
            rows.extend(p.rows)
        try:
            scores = self._score_rows(rows, model)
        except Exception as err:  # defensive: a bad batch must not kill
            for p in batch:  # the batcher thread
                p.error = err
                p.event.set()
            with self._stats_lock:
                self._errors += len(batch)
            self._tel.count(keys.SERVE_ERRORS, len(batch))
            return
        self._note_batch([n_examples], n_examples, 1)
        t_done = time.perf_counter()
        offset = 0
        for p in batch:
            take = scores[offset : offset + len(p.rows)]
            offset += len(p.rows)
            latency_ms = (t_done - p.t_submit) * 1e3
            p.response = ScoreResponse(
                results=tuple(take),
                model_version=model.version,
                model_source=model.source,
                model_epoch=model.epoch,
                latency_ms=latency_ms,
            )
            self._note_request(latency_ms=latency_ms)
            p.event.set()

    def _batcher_loop(self) -> None:
        while self._running:
            batch = self._drain()
            if batch:
                self._answer_batch(batch)
        # Shutdown: fail whatever is still queued, retriably — the
        # client may reconnect to a restarted server.
        with self._cv:
            leftovers = list(self._queue)
            self._queue.clear()
        for p in leftovers:
            p.error = SnapshotUnavailableError(
                "scoring engine stopped", reason="shutdown"
            )
            p.event.set()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ScoringEngine":
        """Start the batcher thread (and the refresher, when present)."""
        if self._running:
            return self
        self._running = True
        self._batcher = threading.Thread(
            target=self._batcher_loop, name="serve-batcher", daemon=True
        )
        self._batcher.start()
        if self.refresher is not None:
            self.refresher.start()
        return self

    def stop(self) -> None:
        """Stop the batcher and refresher; queued requests fail retriably."""
        if self.refresher is not None:
            self.refresher.stop()
        if not self._running:
            return
        self._running = False
        with self._cv:
            self._cv.notify_all()
        if self._batcher is not None:
            self._batcher.join(timeout=5.0)
            self._batcher = None

    def __enter__(self) -> "ScoringEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- accounting --------------------------------------------------------

    def _note_batch(self, sizes: list[int], examples: int, batches: int) -> None:
        with self._stats_lock:
            self._examples += examples
            self._batches += batches
            for size in sizes:
                self._batch_sizes.append(size)
                bucket = keys.serve_batch_bucket(size)
                self._batch_histogram[bucket] = (
                    self._batch_histogram.get(bucket, 0) + 1
                )
        self._tel.count(keys.SERVE_EXAMPLES, examples)
        self._tel.count(keys.SERVE_BATCHES, batches)
        for size in sizes:
            self._tel.count(keys.serve_batch_bucket(size))

    def _note_request(self, latency_ms: float) -> None:
        now = time.perf_counter()
        with self._stats_lock:
            self._requests += 1
            self._latencies_ms.append(latency_ms)
            if self._t_first is None:
                self._t_first = now
            self._t_last = now
        self._tel.count(keys.SERVE_REQUESTS)

    def _note_retriable(self, n: int) -> None:
        with self._stats_lock:
            self._retriable_errors += n
            self._requests += n
        self._tel.count(keys.SERVE_REQUESTS, n)
        self._tel.count(keys.SERVE_RETRIABLE_ERRORS, n)

    def note_client_error(self) -> None:
        """Service callback: a request failed client-side (malformed)."""
        with self._stats_lock:
            self._errors += 1
            self._requests += 1
        self._tel.count(keys.SERVE_REQUESTS)
        self._tel.count(keys.SERVE_ERRORS)

    def stats(self) -> EngineStats:
        """Point-in-time statistics; also refreshes the ``serve.*`` gauges."""
        model = self._active
        with self._stats_lock:
            lat = np.asarray(self._latencies_ms, dtype=np.float64)
            sizes = np.asarray(self._batch_sizes, dtype=np.float64)
            span = (
                (self._t_last - self._t_first)
                if self._t_first is not None
                and self._t_last is not None
                and self._t_last > self._t_first
                else 0.0
            )
            rps = (self._requests / span) if span > 0 else 0.0
            snapshot = EngineStats(
                requests=self._requests,
                examples=self._examples,
                batches=self._batches,
                errors=self._errors,
                retriable_errors=self._retriable_errors,
                hot_swaps=self._hot_swaps,
                source_errors=self._source_errors,
                requests_per_second=rps,
                latency_p50_ms=float(np.percentile(lat, 50)) if lat.size else 0.0,
                latency_p99_ms=float(np.percentile(lat, 99)) if lat.size else 0.0,
                queue_depth_peak=self._queue_peak,
                batch_size_mean=float(sizes.mean()) if sizes.size else 0.0,
                batch_size_histogram=dict(self._batch_histogram),
                model_version=model.version if model is not None else None,
                model_source=model.source if model is not None else None,
                model_epoch=model.epoch if model is not None else None,
                snapshot_age_seconds=(
                    model.age_seconds if model is not None else None
                ),
            )
        self._tel.set_gauge(keys.SERVE_REQUESTS_PER_SECOND, snapshot.requests_per_second)
        self._tel.set_gauge(keys.SERVE_LATENCY_P50_MS, snapshot.latency_p50_ms)
        self._tel.set_gauge(keys.SERVE_LATENCY_P99_MS, snapshot.latency_p99_ms)
        self._tel.set_gauge(keys.SERVE_QUEUE_DEPTH_PEAK, float(snapshot.queue_depth_peak))
        self._tel.set_gauge(keys.SERVE_BATCH_SIZE_MEAN, snapshot.batch_size_mean)
        if snapshot.model_version is not None:
            self._tel.set_gauge(
                keys.SERVE_SNAPSHOT_VERSION, float(snapshot.model_version)
            )
        if snapshot.snapshot_age_seconds is not None:
            self._tel.set_gauge(
                keys.SERVE_SNAPSHOT_AGE_SECONDS, snapshot.snapshot_age_seconds
            )
        return snapshot


def _is_number_list(obj: Any) -> bool:
    """True for a 2-element list/tuple of plain numbers (a dense pair)."""
    return (
        isinstance(obj, (list, tuple))
        and len(obj) == 2
        and all(isinstance(v, (int, float)) for v in obj)
    )


# ---------------------------------------------------------------------------
# snapshot sources + the hot-swap refresher


class SnapshotSource:
    """Refresher source over a live shm run's :class:`ShmTrainHandle`."""

    def __init__(self, handle: ShmTrainHandle) -> None:
        self.handle = handle
        self._last_version = 0

    @property
    def task(self) -> str | None:
        return self.handle.meta.get("task")

    def poll(self) -> ServedModel | None:
        """The newest snapshot, or ``None`` when nothing newer exists.

        Raises :class:`SnapshotUnavailableError` on a cold start — the
        refresher treats that as "not yet", not as a failure.
        """
        if self.handle.version == self._last_version:
            return None  # cheap pre-check: no new publish since last poll
        snap = self.handle.snapshot()
        if snap.version == self._last_version:
            return None
        self._last_version = snap.version
        return ServedModel.from_snapshot(snap)

    def close(self) -> None:
        self.handle.close()


class ArtifactSource:
    """Refresher source over a model-artifact JSON file on disk.

    Reloads whenever the file's mtime changes; each reload installs as
    the next version, so rewriting the artifact (e.g. after a fresh
    training run) hot-swaps the served model.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._mtime_ns: int | None = None
        self._version = 0
        self.task: str | None = None

    def poll(self) -> ServedModel | None:
        try:
            stat = self.path.stat()
        except FileNotFoundError:
            raise SnapshotUnavailableError(
                f"model artifact {self.path} does not exist",
                reason="no-artifact",
            ) from None
        if self._mtime_ns is not None and stat.st_mtime_ns == self._mtime_ns:
            return None
        # Import here: serialize -> runner -> (lazily) serving.
        from ..sgd.serialize import load_results

        results = load_results(self.path)
        if not results:
            raise ConfigurationError(f"{self.path} holds no results")
        result = results[0]
        if result.params is None:
            raise ConfigurationError(
                f"{self.path} was serialised without parameters; re-export "
                "with result_to_dict(include_params=True) / --model-out"
            )
        if result.task not in SERVABLE_TASKS:
            raise ConfigurationError(
                f"artifact task {result.task!r} is not servable "
                f"(supported: {SERVABLE_TASKS})"
            )
        self._mtime_ns = stat.st_mtime_ns
        self._version += 1
        self.task = result.task
        return ServedModel(
            params=np.asarray(result.params, dtype=np.float64),
            version=self._version,
            source="artifact",
            epoch=None,
            loss=result.curve.final_loss,
            published_unix=stat.st_mtime_ns / 1e9,
        )

    def close(self) -> None:
        pass


class SnapshotRefresher:
    """Background hot-swapper: polls a source, installs newer versions.

    Source failures never crash serving: a cold start is silently
    retried, and a harder failure (segment vanished because the trainer
    died, unreadable artifact) is counted as ``serve.source_errors``
    while the engine keeps answering from the last installed model —
    the graceful-degradation half of the hot-swap contract.
    """

    def __init__(self, source: Any, interval: float = 0.05) -> None:
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        self.source = source
        self.interval = float(interval)
        self.last_error: Exception | None = None
        self._engine: ScoringEngine | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Successful hot-swap installs performed by this refresher.
        self.installs = 0

    def bind(self, engine: ScoringEngine) -> None:
        self._engine = engine

    def poll_once(self) -> bool:
        """One poll + install attempt; returns True when a swap happened."""
        assert self._engine is not None, "refresher used before bind()"
        try:
            model = self.source.poll()
        except SnapshotUnavailableError as err:
            # Cold start ("nothing published yet") is expected; losing a
            # previously working source is a degradation worth counting.
            self.last_error = err
            if self._engine.active is not None or err.reason not in (
                "cold-start",
                None,
            ):
                self._engine.note_source_error()
            return False
        except Exception as err:  # noqa: BLE001 - keep serving, count it
            self.last_error = err
            self._engine.note_source_error()
            return False
        if model is None:
            return False
        if self._engine.install(model):
            self.last_error = None
            self.installs += 1
            return True
        return False

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.poll_once()

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="serve-refresher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        close = getattr(self.source, "close", None)
        if close is not None:
            close()
