"""Consistent model snapshots over shared memory: a seqlock protocol.

The shared-memory backend's whole point is that workers write the model
**lock-free** — so a naive concurrent reader sees a torn vector: some
coordinates from before an update, some from after, possibly from
different epochs.  Training tolerates that (Hogwild's premise); a
*scoring service* must not.  This module gives readers a consistent
copy-on-read view without pausing the workers.

Protocol
--------
The publisher (the ``train_shm`` parent) owns a second, small shared
segment: an int64/float64 header followed by a float64 parameter body.
The header leads with a **sequence word** driven seqlock-style:

* *publish* — the writer bumps the sequence to **odd**, copies the
  parameters and metadata into the segment, then bumps it to the next
  **even** value;
* *read* — the reader spins until the sequence is even, copies the body,
  re-reads the sequence, and **retries** whenever the two reads differ
  (a publish overlapped the copy) or the duplicated version check —
  written *after* the body — disagrees with the version written before
  it.

Readers never block the writer and the writer never blocks readers; the
cost of consistency is a bounded number of retries, which the reader
counts (``serve.snapshot.retries``) so the telemetry proves the
protocol actually exercised its retry path under contention.  Publishes
happen at epoch boundaries, while the shm workers idle at a barrier —
so the *parameters themselves* are race-free at publish time and the
seqlock only has to defend the publisher-vs-reader copy, not the
Hogwild scatter traffic.

The protocol is the classic seqlock and additionally verifies the
duplicated trailing version word, so even on a host whose store
ordering is weaker than the assumptions (CPython's GIL plus x86 TSO in
practice) a torn copy cannot pass both checks.

Discovery crosses processes through a small JSON **descriptor** file
(segment name, parameter count, task/dataset metadata):
:meth:`SnapshotPublisher.create` writes it, :meth:`ShmTrainHandle.attach`
reads it.  A reader that attaches keeps its mapping even after the
publisher unlinks the segment (trainer finished or died), so the last
published model stays servable — the handle only loses the ability to
see *new* versions.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any

import numpy as np

from ..telemetry import keys
from ..telemetry.session import AnyTelemetry, ensure_telemetry
from ..utils.errors import ConfigurationError, SnapshotUnavailableError

__all__ = [
    "DESCRIPTOR_SCHEMA",
    "ModelSnapshot",
    "SnapshotPublisher",
    "ShmTrainHandle",
]

DESCRIPTOR_SCHEMA = "repro.serving/snapshot-descriptor/v1"

# int64 header slots.
_I_SEQ = 0  # seqlock sequence word: odd = publish in progress
_I_VERSION = 1  # monotonically increasing snapshot version (0 = none yet)
_I_EPOCH = 2  # training epoch the snapshot was taken at
_I_NPARAMS = 3  # body length, sanity-checked on attach
_I_CLOSED = 4  # publisher closed cleanly (trainer finished)
_I_VCHECK = 5  # duplicate of _I_VERSION written *after* the body
_N_INTS = 8  # spare slots keep the layout stable across versions

# float64 header slots (after the int block).
_F_PUBLISHED = 0  # time.time() of the publish
_F_LOSS = 1  # training loss at the snapshot, NaN when unknown
_N_FLOATS = 4

_HEADER_BYTES = (_N_INTS + _N_FLOATS) * 8


def _views(buf) -> tuple[np.ndarray, np.ndarray]:
    ints = np.ndarray((_N_INTS,), dtype=np.int64, buffer=buf)
    floats = np.ndarray((_N_FLOATS,), dtype=np.float64, buffer=buf, offset=_N_INTS * 8)
    return ints, floats


def _body(buf, n_params: int) -> np.ndarray:
    return np.ndarray(
        (n_params,), dtype=np.float64, buffer=buf, offset=_HEADER_BYTES
    )


@dataclass(frozen=True)
class ModelSnapshot:
    """One consistent copy-on-read view of the shared model."""

    #: Private copy of the parameter vector (safe to keep indefinitely).
    params: np.ndarray = field(repr=False)
    #: Monotonically increasing publish counter (1 = first snapshot).
    version: int
    #: Training epoch the snapshot was taken at (0 = initial model).
    epoch: int
    #: Training loss recorded at publish time (may be ``nan``).
    loss: float
    #: ``time.time()`` at publish.
    published_unix: float
    #: Seqlock retries this read needed (0 = clean first pass).
    retries: int = 0
    #: Publisher metadata: task, dataset, n_features, ... (descriptor).
    meta: dict[str, Any] = field(default_factory=dict, repr=False)

    @property
    def age_seconds(self) -> float:
        """Seconds since this snapshot was published."""
        return max(0.0, time.time() - self.published_unix)


class SnapshotPublisher:
    """Writer side of the snapshot protocol (one per training run).

    Create with :meth:`create`, hand to ``train_shm`` (duck-typed: the
    backend only calls :meth:`publish`), and :meth:`close` when the run
    ends.  ``close(unlink=True)`` removes the segment; already-attached
    readers keep their mapping and the last published model.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        n_params: int,
        meta: dict[str, Any],
        descriptor_path: Path | None,
        owns_segment: bool,
    ) -> None:
        self._shm = shm
        self._n_params = int(n_params)
        self.meta = dict(meta)
        self.descriptor_path = descriptor_path
        self._owns = owns_segment
        self._closed = False
        self._ints, self._floats = _views(shm.buf)
        self._body = _body(shm.buf, self._n_params)

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        n_params: int,
        descriptor: str | Path | None = None,
        meta: dict[str, Any] | None = None,
        name: str | None = None,
    ) -> "SnapshotPublisher":
        """Allocate the snapshot segment and (optionally) its descriptor.

        Parameters
        ----------
        n_params:
            Parameter-vector length the segment must hold.
        descriptor:
            Path for the JSON descriptor file other processes attach
            through (``None``: in-process readers attach by
            ``segment_name``).
        meta:
            Free-form metadata recorded into the descriptor and echoed
            on every snapshot — the serving layer stores the task name
            and feature count here.
        """
        if n_params < 1:
            raise ConfigurationError(f"n_params must be >= 1, got {n_params}")
        shm = shared_memory.SharedMemory(
            create=True, size=_HEADER_BYTES + n_params * 8, name=name
        )
        ints, floats = _views(shm.buf)
        ints[:] = 0
        floats[:] = 0.0
        ints[_I_NPARAMS] = n_params
        publisher = cls(shm, n_params, meta or {}, None, owns_segment=True)
        if descriptor is not None:
            path = Path(descriptor)
            doc = {
                "schema": DESCRIPTOR_SCHEMA,
                "segment": shm.name,
                "n_params": int(n_params),
                "created_unix": time.time(),
                "pid": os.getpid(),
                "meta": dict(meta or {}),
            }
            path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
            publisher.descriptor_path = path
        return publisher

    # -- protocol ----------------------------------------------------------

    @property
    def segment_name(self) -> str:
        """OS name of the shared segment (attach key for readers)."""
        return self._shm.name

    @property
    def version(self) -> int:
        """Version of the last published snapshot (0 = none yet)."""
        return int(self._ints[_I_VERSION])

    def publish(
        self, params: np.ndarray, epoch: int = 0, loss: float = float("nan")
    ) -> int:
        """Install *params* as the next snapshot version; returns it.

        Seqlock write side: sequence to odd, body + metadata, duplicate
        version check, sequence to even.  Readers overlapping any part
        of this retry.
        """
        if self._closed:
            raise ConfigurationError("publish() on a closed SnapshotPublisher")
        params = np.asarray(params, dtype=np.float64)
        if params.shape != (self._n_params,):
            raise ConfigurationError(
                f"snapshot expects shape ({self._n_params},), got {params.shape}"
            )
        seq = int(self._ints[_I_SEQ])
        version = int(self._ints[_I_VERSION]) + 1
        self._ints[_I_SEQ] = seq + 1  # odd: publish in progress
        self._ints[_I_VERSION] = version
        self._ints[_I_EPOCH] = int(epoch)
        self._floats[_F_PUBLISHED] = time.time()
        self._floats[_F_LOSS] = float(loss)
        np.copyto(self._body, params)
        self._ints[_I_VCHECK] = version  # written after the body
        self._ints[_I_SEQ] = seq + 2  # even: consistent again
        return version

    def close(self, unlink: bool = True) -> None:
        """Mark the publisher finished and release the segment.

        ``unlink=True`` (the default for the owner) removes the OS
        object; attached readers keep their mapping and the final
        snapshot, but new attaches will fail.
        """
        if self._closed:
            return
        self._ints[_I_CLOSED] = 1
        self._closed = True
        # Drop numpy views before closing the mapping.
        self._ints = self._floats = self._body = None  # type: ignore[assignment]
        self._shm.close()
        if unlink and self._owns:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SnapshotPublisher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShmTrainHandle:
    """Reader side: a handle onto a (possibly live) shm training run.

    ``snapshot()`` returns a consistent :class:`ModelSnapshot` no matter
    how the publisher's writes interleave with the copy; the handle
    counts reads and seqlock retries into telemetry
    (``serve.snapshot.reads`` / ``serve.snapshot.retries``).
    """

    #: Retry bound before a read gives up — generous: a retry window is
    #: one memcpy of the body, so double-digit collisions in a row mean
    #: the publisher is wedged mid-publish (e.g. died at an odd seq).
    MAX_RETRIES = 256

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        n_params: int,
        meta: dict[str, Any] | None = None,
        telemetry: AnyTelemetry | None = None,
    ) -> None:
        self._shm = shm
        self._n_params = int(n_params)
        self.meta = dict(meta or {})
        self._tel = ensure_telemetry(telemetry)
        self._ints, self._floats = _views(shm.buf)
        self._body = _body(shm.buf, self._n_params)
        self._closed = False
        #: Total snapshot() calls that returned a snapshot.
        self.reads = 0
        #: Total seqlock retries across all reads.
        self.retries = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def attach(
        cls,
        source: str | Path | SnapshotPublisher,
        telemetry: AnyTelemetry | None = None,
    ) -> "ShmTrainHandle":
        """Attach to a run by descriptor path, segment name or publisher.

        Raises
        ------
        SnapshotUnavailableError
            The descriptor or segment does not exist (trainer not up
            yet, or already gone) — retriable: a server answering
            queries may simply try again.
        """
        meta: dict[str, Any] = {}
        if isinstance(source, SnapshotPublisher):
            segment, n_params, meta = (
                source.segment_name,
                source._n_params,
                dict(source.meta),
            )
        else:
            text = str(source)
            if text.endswith(".json") or os.sep in text or os.path.exists(text):
                try:
                    doc = json.loads(Path(text).read_text(encoding="utf-8"))
                except FileNotFoundError:
                    raise SnapshotUnavailableError(
                        f"snapshot descriptor {text!r} does not exist (is the "
                        "trainer running with --snapshot-out?)",
                        reason="no-descriptor",
                    ) from None
                if doc.get("schema") != DESCRIPTOR_SCHEMA:
                    raise ConfigurationError(
                        f"{text!r} is not a snapshot descriptor "
                        f"(schema {doc.get('schema')!r})"
                    )
                segment, n_params = doc["segment"], int(doc["n_params"])
                meta = dict(doc.get("meta", {}))
            else:
                segment, n_params = text, -1
        try:
            shm = shared_memory.SharedMemory(name=segment)
        except FileNotFoundError:
            raise SnapshotUnavailableError(
                f"snapshot segment {segment!r} does not exist (trainer "
                "finished or not started)",
                reason="no-segment",
            ) from None
        ints, _ = _views(shm.buf)
        advertised = int(ints[_I_NPARAMS])
        if n_params < 0:
            n_params = advertised
        if advertised != n_params:
            shm.close()
            raise ConfigurationError(
                f"snapshot segment {segment!r} advertises {advertised} "
                f"parameters, descriptor says {n_params}"
            )
        return cls(shm, n_params, meta, telemetry)

    # -- protocol ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Latest published version (0 = nothing published yet)."""
        return int(self._ints[_I_VERSION])

    @property
    def trainer_finished(self) -> bool:
        """True once the publisher closed cleanly."""
        return bool(self._ints[_I_CLOSED])

    def _copy_body(self) -> np.ndarray:
        """One unguarded copy of the parameter body (seqlock inner step).

        Split out so tests can interleave a publish mid-copy and prove
        the retry path deterministically.
        """
        return self._body.copy()

    def snapshot(self) -> ModelSnapshot:
        """Take one consistent copy-on-read snapshot.

        Raises
        ------
        SnapshotUnavailableError
            Nothing has been published yet (cold start) — retriable —
            or the retry bound was exhausted (publisher wedged at an
            odd sequence, e.g. killed mid-publish).
        """
        if self._closed:
            raise ConfigurationError("snapshot() on a closed ShmTrainHandle")
        retries = 0
        while retries <= self.MAX_RETRIES:
            s1 = int(self._ints[_I_SEQ])
            if s1 & 1:  # publish in progress: wait it out
                retries += 1
                time.sleep(0.0001)
                continue
            version = int(self._ints[_I_VERSION])
            if version == 0:
                raise SnapshotUnavailableError(
                    "no snapshot published yet (training has not completed "
                    "an epoch)",
                    reason="cold-start",
                )
            params = self._copy_body()
            epoch = int(self._ints[_I_EPOCH])
            loss = float(self._floats[_F_LOSS])
            published = float(self._floats[_F_PUBLISHED])
            vcheck = int(self._ints[_I_VCHECK])
            s2 = int(self._ints[_I_SEQ])
            if s1 == s2 and version == vcheck:
                self.reads += 1
                self.retries += retries
                self._tel.count(keys.SERVE_SNAPSHOT_READS)
                if retries:
                    self._tel.count(keys.SERVE_SNAPSHOT_RETRIES, retries)
                return ModelSnapshot(
                    params=params,
                    version=version,
                    epoch=epoch,
                    loss=loss,
                    published_unix=published,
                    retries=retries,
                    meta=dict(self.meta),
                )
            retries += 1  # a publish overlapped the copy: go again
        raise SnapshotUnavailableError(
            f"snapshot read exhausted {self.MAX_RETRIES} seqlock retries "
            "(publisher wedged mid-publish?)",
            reason="retry-exhausted",
        )

    def close(self) -> None:
        """Detach from the segment (never unlinks: readers don't own it)."""
        if self._closed:
            return
        self._closed = True
        self._ints = self._floats = self._body = None  # type: ignore[assignment]
        self._shm.close()

    def __enter__(self) -> "ShmTrainHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
